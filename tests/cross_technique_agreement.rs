//! Integration: all five techniques must return identical distances and
//! optimal, edge-valid paths on the same networks — the property the
//! whole comparative evaluation rests on (the paper built all methods on
//! "common subroutines" to guarantee comparability, §4.1).

use spq_core::{Index, Technique};
use spq_dijkstra::Dijkstra;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_synth::SynthParams;

fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(17);
            let s = ((state >> 33) % n as u64) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(17);
            let t = ((state >> 33) % n as u64) as NodeId;
            (s, t)
        })
        .collect()
}

fn check(net: &RoadNetwork, pairs: &[(NodeId, NodeId)]) {
    let mut reference = Dijkstra::new(net.num_nodes());
    let indexes: Vec<_> = Technique::ALL
        .iter()
        .map(|&t| Index::build(t, net).0)
        .collect();
    let mut queries: Vec<_> = indexes.iter().map(|i| i.query(net)).collect();
    for &(s, t) in pairs {
        reference.run_to_target(net, s, t);
        let expect = reference.distance(t);
        for q in &mut queries {
            let d = q.distance(s, t);
            assert_eq!(d, expect, "distance disagreement on ({s},{t})");
            let (pd, path) = q.shortest_path(s, t).expect("path exists");
            assert_eq!(Some(pd), expect, "path length disagreement on ({s},{t})");
            assert_eq!(path.first().copied(), Some(s));
            assert_eq!(path.last().copied(), Some(t));
            assert_eq!(
                net.path_length(&path),
                expect,
                "invalid path on ({s},{t}): {path:?}"
            );
        }
    }
}

#[test]
fn agreement_on_default_synthetic_network() {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(900),
        101,
    ));
    let pairs = random_pairs(net.num_nodes(), 50, 1);
    check(&net, &pairs);
}

#[test]
fn agreement_without_highways() {
    // No importance hierarchy: CH/TNR orderings degrade but must stay
    // exact.
    let net = spq_synth::generate(&SynthParams {
        highway_period: 0,
        ..SynthParams::with_target_vertices(spq_synth::test_vertices(700), 102)
    });
    let pairs = random_pairs(net.num_nodes(), 40, 2);
    check(&net, &pairs);
}

#[test]
fn agreement_on_dense_diagonal_network() {
    // Many diagonals create shell-jumping edges — the Appendix B hazard
    // that the corrected TNR must absorb.
    let net = spq_synth::generate(&SynthParams {
        diagonal_prob: 0.25,
        drop_edge_prob: 0.15,
        ..SynthParams::with_target_vertices(spq_synth::test_vertices(700), 103)
    });
    let pairs = random_pairs(net.num_nodes(), 40, 3);
    check(&net, &pairs);
}

#[test]
fn agreement_on_smoke_registry_datasets() {
    // The two smallest Table-1 datasets at smoke scale.
    for name in ["DE", "NH"] {
        let d = spq_synth::Dataset::by_name(name).unwrap();
        let net = d.build(spq_synth::Scale::Smoke);
        let pairs = random_pairs(net.num_nodes(), 30, 4);
        check(&net, &pairs);
    }
}
