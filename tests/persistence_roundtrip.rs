//! Persistence round-trip property tests covering every
//! `write_binary`/`read_binary` pair in the workspace: CH, HL, TNR,
//! SILC, ALT, and arc flags.
//!
//! Two properties per format, on arbitrary connected networks:
//!
//! 1. **Stability** — write → read → write reproduces the original
//!    bytes exactly (no drift, no nondeterminism in serialisation).
//! 2. **Fidelity** — the reloaded index answers every (s, t) distance
//!    query identically to the index it was written from.

use proptest::prelude::*;
use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::ContractionHierarchy;
use spq_graph::arbitrary::{connected_network, NetworkStrategyParams};
use spq_graph::{NodeId, RoadNetwork};
use spq_hl::Hl;
use spq_silc::Silc;
use spq_tnr::{Tnr, TnrParams};

fn small_network() -> impl Strategy<Value = RoadNetwork> {
    connected_network(NetworkStrategyParams {
        min_nodes: 2,
        max_nodes: 24,
        ..NetworkStrategyParams::default()
    })
}

/// All (s, t) distances from an index's query object, as one flat
/// vector (small networks make exhaustive comparison affordable).
fn all_distances<Q>(net: &RoadNetwork, mut distance: Q) -> Vec<Option<u64>>
where
    Q: FnMut(NodeId, NodeId) -> Option<u64>,
{
    let n = net.num_nodes() as NodeId;
    let mut out = Vec::with_capacity((n as usize) * (n as usize));
    for s in 0..n {
        for t in 0..n {
            out.push(distance(s, t));
        }
    }
    out
}

fn write_to_vec(write: impl FnOnce(&mut Vec<u8>) -> std::io::Result<()>) -> Vec<u8> {
    let mut buf = Vec::new();
    write(&mut buf).expect("in-memory write cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ch_roundtrip(net in small_network()) {
        let ch = ContractionHierarchy::build(&net);
        let bytes = write_to_vec(|b| ch.write_binary(b));
        let reloaded = ContractionHierarchy::read_binary(&mut &bytes[..]).expect("read back");
        let rewritten = write_to_vec(|b| reloaded.write_binary(b));
        prop_assert_eq!(&bytes, &rewritten, "CH bytes drift across a round-trip");

        // The version-3 container carries the flattened search graph;
        // the reloaded copy must be identical to the built one, and the
        // reloaded index must unpack identical paths.
        prop_assert_eq!(reloaded.search_graph(), ch.search_graph());
        let mut q1 = spq_ch::ChQuery::new(&ch);
        let mut q2 = spq_ch::ChQuery::new(&reloaded);
        for s in 0..net.num_nodes() as NodeId {
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(q1.shortest_path(s, t), q2.shortest_path(s, t));
            }
        }
        prop_assert_eq!(
            all_distances(&net, |s, t| q1.distance(s, t)),
            all_distances(&net, |s, t| q2.distance(s, t))
        );
    }

    #[test]
    fn hl_roundtrip(net in small_network()) {
        let hl = Hl::build(&net);
        let bytes = write_to_vec(|b| hl.write_binary(b));
        let reloaded = Hl::read_binary(&mut &bytes[..]).expect("read back");
        let rewritten = write_to_vec(|b| reloaded.write_binary(b));
        prop_assert_eq!(&bytes, &rewritten, "HL bytes drift across a round-trip");

        prop_assert_eq!(reloaded.labels(), hl.labels());
        prop_assert_eq!(
            all_distances(&net, |s, t| hl.labels().distance(s, t)),
            all_distances(&net, |s, t| reloaded.labels().distance(s, t))
        );
    }

    #[test]
    fn tnr_roundtrip(net in small_network()) {
        let tnr = Tnr::build(&net, &TnrParams::default());
        let bytes = write_to_vec(|b| tnr.write_binary(b));
        let reloaded = Tnr::read_binary(&net, &mut &bytes[..]).expect("read back");
        let rewritten = write_to_vec(|b| reloaded.write_binary(b));
        prop_assert_eq!(&bytes, &rewritten, "TNR bytes drift across a round-trip");

        let mut q1 = tnr.query().with_network(&net);
        let mut q2 = reloaded.query().with_network(&net);
        prop_assert_eq!(
            all_distances(&net, |s, t| q1.distance(s, t)),
            all_distances(&net, |s, t| q2.distance(s, t))
        );
    }

    #[test]
    fn silc_roundtrip(net in small_network()) {
        let silc = Silc::build(&net);
        let bytes = write_to_vec(|b| silc.write_binary(b));
        let reloaded = Silc::read_binary(&mut &bytes[..]).expect("read back");
        let rewritten = write_to_vec(|b| reloaded.write_binary(b));
        prop_assert_eq!(&bytes, &rewritten, "SILC bytes drift across a round-trip");

        let mut q1 = silc.query(&net);
        let mut q2 = reloaded.query(&net);
        prop_assert_eq!(
            all_distances(&net, |s, t| q1.distance(s, t)),
            all_distances(&net, |s, t| q2.distance(s, t))
        );
    }

    #[test]
    fn alt_roundtrip(net in small_network()) {
        let alt = Alt::build(&net, &AltParams {
            num_landmarks: 4.min(net.num_nodes()),
            ..AltParams::default()
        });
        let bytes = write_to_vec(|b| alt.write_binary(b));
        let reloaded = Alt::read_binary(&mut &bytes[..]).expect("read back");
        let rewritten = write_to_vec(|b| reloaded.write_binary(b));
        prop_assert_eq!(&bytes, &rewritten, "ALT bytes drift across a round-trip");

        let mut q1 = alt.query(&net);
        let mut q2 = reloaded.query(&net);
        prop_assert_eq!(
            all_distances(&net, |s, t| q1.distance(s, t)),
            all_distances(&net, |s, t| q2.distance(s, t))
        );
    }

    #[test]
    fn arcflags_roundtrip(net in small_network()) {
        let af = ArcFlags::build(&net, &ArcFlagsParams::default());
        let bytes = write_to_vec(|b| af.write_binary(b));
        let reloaded = ArcFlags::read_binary(&net, &mut &bytes[..]).expect("read back");
        let rewritten = write_to_vec(|b| reloaded.write_binary(b));
        prop_assert_eq!(&bytes, &rewritten, "arc-flag bytes drift across a round-trip");

        let mut q1 = af.query(&net);
        let mut q2 = reloaded.query(&net);
        prop_assert_eq!(
            all_distances(&net, |s, t| q1.distance(s, t)),
            all_distances(&net, |s, t| q2.distance(s, t))
        );
    }
}
