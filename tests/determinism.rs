//! Parallel preprocessing must be bit-for-bit deterministic.
//!
//! Every index whose build loops fan out over the worker pool
//! (`spq_graph::par`) promises that a parallel build is byte-identical
//! to a sequential one. This test holds each of them to that promise on
//! a synthetic Table-1 proxy network: build with 1 thread and with 4
//! threads, serialise both, and compare the bytes.

use spq_alt::{Alt, AltParams, LandmarkSelection};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::ContractionHierarchy;
use spq_graph::par;
use spq_graph::RoadNetwork;
use spq_hl::Hl;
use spq_silc::Silc;
use spq_synth::SynthParams;
use spq_tnr::{Tnr, TnrParams};

fn network() -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(600),
        0xdead_beef,
    ))
}

/// Builds + serialises at the given thread count.
fn bytes_at<F: Fn() -> Vec<u8>>(threads: usize, build: F) -> Vec<u8> {
    par::with_threads(threads, build)
}

fn assert_thread_invariant(name: &str, build: impl Fn() -> Vec<u8>) {
    let sequential = bytes_at(1, &build);
    assert!(!sequential.is_empty(), "{name}: empty serialisation");
    for threads in [2, 4] {
        let parallel = bytes_at(threads, &build);
        assert_eq!(
            parallel, sequential,
            "{name}: {threads}-thread build differs from sequential"
        );
    }
}

#[test]
fn ch_build_is_thread_invariant() {
    let net = network();
    assert_thread_invariant("CH", || {
        let mut buf = Vec::new();
        ContractionHierarchy::build(&net)
            .write_binary(&mut buf)
            .unwrap();
        buf
    });
}

#[test]
fn hl_build_is_thread_invariant() {
    let net = network();
    assert_thread_invariant("HL", || {
        let mut buf = Vec::new();
        Hl::build(&net).write_binary(&mut buf).unwrap();
        buf
    });
}

#[test]
fn tnr_build_is_thread_invariant() {
    let net = network();
    assert_thread_invariant("TNR", || {
        let mut buf = Vec::new();
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 8,
                ..TnrParams::default()
            },
        );
        tnr.write_binary(&mut buf).unwrap();
        buf
    });
}

#[test]
fn alt_build_is_thread_invariant() {
    let net = network();
    for selection in [LandmarkSelection::Farthest, LandmarkSelection::Random] {
        let params = AltParams {
            num_landmarks: 6,
            selection,
            ..AltParams::default()
        };
        assert_thread_invariant("ALT", || {
            let mut buf = Vec::new();
            Alt::build(&net, &params).write_binary(&mut buf).unwrap();
            buf
        });
    }
}

#[test]
fn silc_build_is_thread_invariant() {
    let net = network();
    assert_thread_invariant("SILC", || {
        let mut buf = Vec::new();
        Silc::build(&net).write_binary(&mut buf).unwrap();
        buf
    });
}

#[test]
fn arcflags_build_is_thread_invariant() {
    let net = network();
    assert_thread_invariant("ArcFlags", || {
        let mut buf = Vec::new();
        ArcFlags::build(&net, &ArcFlagsParams::default())
            .write_binary(&mut buf)
            .unwrap();
        buf
    });
}
