//! Integration: the full experiment pipeline — dataset registry →
//! query-set generation → per-technique measurement — holds together the
//! way the harness binaries assume.

use spq_core::{Index, Technique};
use spq_queries::{linf_query_sets, network_query_sets, QueryGenParams};
use spq_synth::{Dataset, Scale};

#[test]
fn q_sets_drive_all_techniques_on_smoke_de() {
    let net = Dataset::by_name("DE").unwrap().build(Scale::Smoke);
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 20,
            ..QueryGenParams::default()
        },
    );
    assert_eq!(sets.len(), 10);
    let (index, _) = Index::build(Technique::Ch, &net);
    let mut q = index.query(&net);
    let mut answered = 0;
    for set in &sets {
        for &(s, t) in &set.pairs {
            assert!(q.distance(s, t).is_some());
            answered += 1;
        }
    }
    assert!(answered > 0, "at least the far bands must be populated");
}

#[test]
fn r_sets_are_generated_and_answerable() {
    let net = Dataset::by_name("DE").unwrap().build(Scale::Smoke);
    let sets = network_query_sets(
        &net,
        &QueryGenParams {
            per_set: 15,
            ..QueryGenParams::default()
        },
    );
    assert_eq!(sets.len(), 10);
    let (index, _) = Index::build(Technique::Tnr, &net);
    let mut q = index.query(&net);
    for set in &sets {
        for &(s, t) in set.pairs.iter().take(5) {
            assert!(q.distance(s, t).is_some(), "{}", set.label);
        }
    }
}

#[test]
fn registry_scales_consistently() {
    let d = Dataset::by_name("CO").unwrap();
    // Target vertex counts shrink with the divisor.
    assert!(d.target_vertices(Scale::Smoke) < d.target_vertices(Scale::Paper));
    assert_eq!(
        d.target_vertices(Scale::Divisor(40.0)),
        d.target_vertices(Scale::Paper)
    );
}

#[test]
fn preprocessing_times_are_reported() {
    let net = Dataset::by_name("DE").unwrap().build(Scale::Smoke);
    let (_, t_ch) = Index::build(Technique::Ch, &net);
    let (_, t_silc) = Index::build(Technique::Silc, &net);
    // Both timers ran; SILC's all-pairs preprocessing must not be free.
    assert!(t_ch.as_nanos() > 0);
    assert!(t_silc.as_nanos() > 0);
}
