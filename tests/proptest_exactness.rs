//! Property tests: on arbitrary connected degree-bounded graphs, every
//! technique's answers equal Dijkstra's, and every returned path is
//! edge-valid with optimal length.

use proptest::prelude::*;
use spq_core::{Index, Technique};
use spq_dijkstra::Dijkstra;
use spq_graph::geo::Point;
use spq_graph::{GraphBuilder, NodeId, RoadNetwork};

/// A connected graph with random planar-ish coordinates: a random spine
/// guarantees connectivity, extra edges add alternative routes.
fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (3usize..28).prop_flat_map(|n| {
        let coords = proptest::collection::vec((-500i32..500, -500i32..500), n);
        let spine = proptest::collection::vec((0u32..u32::MAX, 1u32..500), n - 1);
        let extra = proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u32..500), 0..n);
        (coords, spine, extra).prop_map(move |(coords, spine, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y));
            }
            for (i, (r, w)) in spine.iter().enumerate() {
                let child = (i + 1) as u32;
                b.add_edge(r % child, child, *w);
            }
            for (u, v, w) in extra {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build().expect("spine guarantees connectivity")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_techniques_exact_on_arbitrary_graphs(net in arb_network()) {
        let mut reference = Dijkstra::new(net.num_nodes());
        let indexes: Vec<_> = Technique::ALL
            .iter()
            .map(|&t| Index::build(t, &net).0)
            .collect();
        let n = net.num_nodes() as NodeId;
        for s in 0..n {
            reference.run(&net, s);
            for t in 0..n {
                let expect = reference.distance(t);
                for index in &indexes {
                    let mut q = index.query(&net);
                    prop_assert_eq!(
                        q.distance(s, t), expect,
                        "{} disagrees on ({},{})", index.technique().name(), s, t
                    );
                    let (d, path) = q.shortest_path(s, t).expect("connected");
                    prop_assert_eq!(Some(d), expect);
                    prop_assert_eq!(path.first().copied(), Some(s));
                    prop_assert_eq!(path.last().copied(), Some(t));
                    prop_assert_eq!(net.path_length(&path), expect);
                }
            }
        }
    }

    #[test]
    fn index_sizes_are_reported(net in arb_network()) {
        for technique in Technique::ALL {
            let (index, _) = Index::build(technique, &net);
            if technique == Technique::BiDijkstra {
                prop_assert_eq!(index.size_bytes(), 0);
            } else {
                prop_assert!(index.size_bytes() > 0);
            }
        }
    }

    /// PHAST one-to-many equals |T| independent Dijkstra distances,
    /// from every source, over the full vertex set as targets.
    #[test]
    fn phast_one_to_many_matches_dijkstra(net in arb_network()) {
        let ch = spq_ch::ContractionHierarchy::build(&net);
        let mut o2m = spq_many::OneToMany::new(&ch);
        let mut reference = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as NodeId;
        let targets: Vec<NodeId> = (0..n).collect();
        let mut out = Vec::new();
        for s in 0..n {
            prop_assert!(o2m.run(s));
            reference.run(&net, s);
            o2m.distances_into(&targets, &mut out);
            for (&t, &got) in targets.iter().zip(out.iter()) {
                prop_assert_eq!(got, reference.distance(t), "o2m({}, {})", s, t);
            }
        }
    }

    /// Bucket-CH kNN equals brute force over the POI set: same
    /// neighbours, same distances, same (distance, vertex) order.
    #[test]
    fn bucket_knn_matches_brute_force(
        net in arb_network(),
        picks in proptest::collection::vec(0u32..u32::MAX, 1..8),
        k in 0usize..10,
    ) {
        let n = net.num_nodes() as NodeId;
        let mut nodes: Vec<NodeId> = picks.iter().map(|&p| p % n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let set = spq_many::PoiSet::new("p", net.num_nodes(), nodes).unwrap();
        let ch = spq_ch::ContractionHierarchy::build(&net);
        let index = spq_many::PoiIndex::build(&ch, &set).unwrap();
        let mut ws = spq_many::KnnWorkspace::new();
        let mut reference = Dijkstra::new(net.num_nodes());
        let mut got = Vec::new();
        for s in 0..n {
            reference.run(&net, s);
            let mut expect: Vec<(u64, NodeId)> = set
                .nodes()
                .iter()
                .filter_map(|&p| reference.distance(p).map(|d| (d, p)))
                .collect();
            expect.sort_unstable();
            expect.truncate(k);
            prop_assert!(index.knn(ch.search_graph(), &mut ws, s, k, &mut got));
            let got_kv: Vec<(u64, NodeId)> = got.iter().map(|&(v, d)| (d, v)).collect();
            prop_assert_eq!(&got_kv, &expect, "knn({}, k={})", s, k);
        }
    }

    /// Range equals a truncated Dijkstra: exactly the vertices within
    /// the limit, ascending by vertex id, with exact distances. Limits
    /// are drawn around real eccentricities so both empty-ish and
    /// all-inclusive ranges occur.
    #[test]
    fn range_matches_truncated_dijkstra(net in arb_network(), frac in 0u32..120) {
        let ch = spq_ch::ContractionHierarchy::build(&net);
        let mut o2m = spq_many::OneToMany::new(&ch);
        let mut reference = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as NodeId;
        let mut out = Vec::new();
        for s in 0..n {
            reference.run(&net, s);
            let ecc = (0..n).filter_map(|v| reference.distance(v)).max().unwrap_or(0);
            let limit = ecc * u64::from(frac) / 100;
            let expect: Vec<(NodeId, u64)> = (0..n)
                .filter_map(|v| {
                    reference
                        .distance(v)
                        .filter(|&d| d <= limit)
                        .map(|d| (v, d))
                })
                .collect();
            prop_assert!(o2m.range(s, limit, &mut out));
            prop_assert_eq!(&out, &expect, "range({}, {})", s, limit);
        }
    }
}
