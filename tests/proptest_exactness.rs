//! Property tests: on arbitrary connected degree-bounded graphs, every
//! technique's answers equal Dijkstra's, and every returned path is
//! edge-valid with optimal length.

use proptest::prelude::*;
use spq_core::{Index, Technique};
use spq_dijkstra::Dijkstra;
use spq_graph::geo::Point;
use spq_graph::{GraphBuilder, NodeId, RoadNetwork};

/// A connected graph with random planar-ish coordinates: a random spine
/// guarantees connectivity, extra edges add alternative routes.
fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (3usize..28).prop_flat_map(|n| {
        let coords = proptest::collection::vec((-500i32..500, -500i32..500), n);
        let spine = proptest::collection::vec((0u32..u32::MAX, 1u32..500), n - 1);
        let extra = proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u32..500), 0..n);
        (coords, spine, extra).prop_map(move |(coords, spine, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y));
            }
            for (i, (r, w)) in spine.iter().enumerate() {
                let child = (i + 1) as u32;
                b.add_edge(r % child, child, *w);
            }
            for (u, v, w) in extra {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build().expect("spine guarantees connectivity")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_techniques_exact_on_arbitrary_graphs(net in arb_network()) {
        let mut reference = Dijkstra::new(net.num_nodes());
        let indexes: Vec<_> = Technique::ALL
            .iter()
            .map(|&t| Index::build(t, &net).0)
            .collect();
        let n = net.num_nodes() as NodeId;
        for s in 0..n {
            reference.run(&net, s);
            for t in 0..n {
                let expect = reference.distance(t);
                for index in &indexes {
                    let mut q = index.query(&net);
                    prop_assert_eq!(
                        q.distance(s, t), expect,
                        "{} disagrees on ({},{})", index.technique().name(), s, t
                    );
                    let (d, path) = q.shortest_path(s, t).expect("connected");
                    prop_assert_eq!(Some(d), expect);
                    prop_assert_eq!(path.first().copied(), Some(s));
                    prop_assert_eq!(path.last().copied(), Some(t));
                    prop_assert_eq!(net.path_length(&path), expect);
                }
            }
        }
    }

    #[test]
    fn index_sizes_are_reported(net in arb_network()) {
        for technique in Technique::ALL {
            let (index, _) = Index::build(technique, &net);
            if technique == Technique::BiDijkstra {
                prop_assert_eq!(index.size_bytes(), 0);
            } else {
                prop_assert!(index.size_bytes() > 0);
            }
        }
    }
}
