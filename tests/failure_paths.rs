//! Integration: degenerate inputs and failure paths across the stack.

use spq_core::{Index, Technique};
use spq_graph::geo::Point;
use spq_graph::{GraphBuilder, GraphError};

#[test]
fn builder_rejects_malformed_graphs() {
    assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);

    let mut b = GraphBuilder::new();
    b.add_node(Point::new(0, 0));
    b.add_node(Point::new(1, 1));
    // No edges: two components.
    assert!(matches!(
        b.build().unwrap_err(),
        GraphError::Disconnected { components: 2 }
    ));
}

#[test]
fn single_vertex_network_works_everywhere() {
    let mut b = GraphBuilder::new();
    b.add_node(Point::new(0, 0));
    let net = b.build().unwrap();
    for technique in Technique::ALL {
        let (index, _) = Index::build(technique, &net);
        let mut q = index.query(&net);
        assert_eq!(q.distance(0, 0), Some(0), "{}", technique.name());
        let (d, path) = q.shortest_path(0, 0).unwrap();
        assert_eq!(d, 0);
        assert_eq!(path, vec![0]);
    }
}

#[test]
fn single_edge_network_works_everywhere() {
    let mut b = GraphBuilder::new();
    b.add_node(Point::new(0, 0));
    b.add_node(Point::new(10, 0));
    b.add_edge(0, 1, 7);
    let net = b.build().unwrap();
    for technique in Technique::ALL {
        let (index, _) = Index::build(technique, &net);
        let mut q = index.query(&net);
        assert_eq!(q.distance(0, 1), Some(7), "{}", technique.name());
        let (d, path) = q.shortest_path(1, 0).unwrap();
        assert_eq!(d, 7);
        assert_eq!(path, vec![1, 0]);
    }
}

#[test]
fn duplicate_coordinates_stay_exact() {
    // Several vertices share coordinates: SILC's quadtree and PCPD's
    // block pairs cannot separate them spatially and must fall back to
    // their exception structures.
    let mut b = GraphBuilder::new();
    for i in 0..6 {
        b.add_node(Point::new((i / 2) * 10, 0)); // pairs share coordinates
    }
    for i in 0..5u32 {
        b.add_edge(i, i + 1, i + 1);
    }
    b.add_edge(0, 5, 100);
    let net = b.build().unwrap();
    let mut reference = spq_dijkstra::Dijkstra::new(net.num_nodes());
    for technique in Technique::ALL {
        let (index, _) = Index::build(technique, &net);
        let mut q = index.query(&net);
        for s in 0..6u32 {
            reference.run(&net, s);
            for t in 0..6u32 {
                assert_eq!(
                    q.distance(s, t),
                    reference.distance(t),
                    "{} on ({s},{t})",
                    technique.name()
                );
            }
        }
    }
}

#[test]
fn zero_like_weights_are_clamped_by_generator_but_allowed_by_builder() {
    // The builder permits weight 0 (the paper's definition has no
    // positivity constraint); Dijkstra still terminates.
    let mut b = GraphBuilder::new();
    b.add_node(Point::new(0, 0));
    b.add_node(Point::new(1, 0));
    b.add_node(Point::new(2, 0));
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 5);
    let net = b.build().unwrap();
    let mut d = spq_dijkstra::Dijkstra::new(3);
    d.run(&net, 0);
    assert_eq!(d.distance(1), Some(0));
    assert_eq!(d.distance(2), Some(5));
}
