//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the external dependencies are vendored as minimal local
//! implementations. This one provides the subset of proptest the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map` and `prop_flat_map`,
//! * integer range strategies, tuple strategies, [`collection::vec`],
//!   and [`any`] for `bool`/`u32`/`u64`,
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed per test case, and there is **no shrinking** — a
//! failing case panics with the case number so it can be replayed (the
//! generated value is a pure function of the case number). Case counts
//! honour two environment knobs:
//!
//! * `PROPTEST_CASES` — explicit global case count override,
//! * `SPQ_TEST_FAST=1` — the workspace's fast CI tier; divides each
//!   test's configured case count by 8 (minimum 4 cases).

pub mod strategy;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange};
}

pub use strategy::{any, Just, Strategy, TestRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` and
    /// `SPQ_TEST_FAST` environment knobs.
    pub fn effective_cases(&self) -> u32 {
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.parse::<u32>() {
                return n.max(1);
            }
        }
        if std::env::var("SPQ_TEST_FAST").as_deref() == Ok("1") {
            return (self.cases / 8).max(4);
        }
        self.cases
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
    /// Re-export so `proptest::prelude::prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `#[test] fn name(binder in strategy, ..)`
/// becomes a `#[test]` that draws `cases` random inputs and runs the body
/// on each.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            // A fixed per-test seed keeps runs reproducible; the case
            // number is folded in so each case sees a fresh stream.
            let test_seed = $crate::strategy::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases as u64 {
                let mut rng = $crate::TestRng::new(test_seed ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                let run = || -> () { $body };
                run();
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5i32..=9), n in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_flat_map(xs in (1usize..8).prop_flat_map(|n| collection::vec(0u32..100, n))) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn mapped_values(x in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 100);
        }

        #[test]
        fn any_bool_and_u32(b in any::<bool>(), x in any::<u32>()) {
            let _ = (b, x); // generation itself is the property under test
        }
    }

    #[test]
    fn effective_cases_defaults_to_configured() {
        // (Environment knobs are exercised by the workspace CI tier.)
        if std::env::var("PROPTEST_CASES").is_err() && std::env::var("SPQ_TEST_FAST").is_err() {
            assert_eq!(crate::ProptestConfig::with_cases(40).effective_cases(), 40);
        }
    }
}
