//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators the workspace's tests use.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// FNV-1a over a string — used to derive a stable per-test seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    #[inline]
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % n
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types supported by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Element counts accepted by [`vec`]: an exact count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u128) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values from `element`, with `size` elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
