//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the external dependencies are vendored as minimal local
//! implementations. This one provides the harness surface the workspace's
//! benches use (`criterion_group!` / `criterion_main!`, benchmark groups,
//! [`BenchmarkId`], `Bencher::iter`) and reports the median of
//! `sample_size` timed samples — no warm-up modelling, outlier analysis,
//! or HTML reports. Numbers are indicative, not statistically rigorous.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier, which the real crate
/// also provides at this path.
pub use std::hint::black_box;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut group = BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        };
        group.run(&id.to_string(), &mut f);
    }
}

/// A named benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and an input parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), &mut f);
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (printing is per-bench; nothing to flush).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        samples.sort_unstable();
        match samples.get(samples.len() / 2) {
            Some(median) => println!("  {id}: median {median:?} ({} samples)", samples.len()),
            None => println!("  {id}: no samples"),
        }
    }
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("id", 7), &21u32, |b, &x| {
            b.iter(|| assert_eq!(x, 21))
        });
    }
}
