//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the external dependencies are vendored as minimal local
//! implementations of exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable PRNG,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`] for `u64`, `u32`, `f64`, and `bool`,
//! * [`Rng::random_range`] over half-open and inclusive integer ranges.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014) — not the ChaCha12 stream
//! of the real `StdRng`, so seeded sequences differ from upstream `rand`.
//! Every consumer in this workspace only requires a *deterministic,
//! well-mixed* stream, not a specific one; determinism per seed is
//! preserved.

pub mod rngs {
    /// A deterministic seedable PRNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe core: one 64-bit draw.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on empty ranges.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, u32, u64, usize, isize);

/// The user-facing generator interface, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// A uniformly distributed value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A value uniformly distributed over `range`.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
            let v = rng.random_range(-2i32..=2);
            assert!((-2..=2).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
