//! Work-parallel execution for preprocessing loops.
//!
//! Every index in this workspace spends its preprocessing time in loops
//! that are embarrassingly parallel at the per-vertex / per-source /
//! per-cell level (one shortest-path tree or witness search per item,
//! over a read-only graph). This module provides the one shared
//! primitive they need — a chunked, deterministic [`par_map`] — built on
//! [`std::thread::scope`] so it adds no dependencies.
//!
//! # Determinism
//!
//! `par_map` returns results in *item order* no matter how chunks are
//! scheduled across threads, and gives each worker its own workspace, so
//! a parallel build is byte-identical to a sequential one as long as the
//! per-item closure itself is a pure function of `(workspace, index,
//! item)`. All users in this workspace uphold that contract, and
//! `tests/determinism.rs` verifies the resulting indexes byte-for-byte.
//!
//! # Thread-count selection
//!
//! [`num_threads`] resolves, in order: the calling thread's
//! [`with_threads`] override, the `SPQ_THREADS` environment variable,
//! and finally [`std::thread::available_parallelism`]. A resolved count
//! of 1 runs inline with zero thread overhead.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Per-thread override installed by [`with_threads`] (0 = none).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with the thread count fixed to `n` for every `par_map`
/// reached from the current thread. Used by tests and benches to compare
/// sequential and parallel builds inside one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.max(1);
    let prev = THREAD_OVERRIDE.with(|t| t.replace(n));
    let result = f();
    THREAD_OVERRIDE.with(|t| t.set(prev));
    result
}

/// The number of worker threads preprocessing will use.
pub fn num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(|t| t.get());
    if overridden > 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("SPQ_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n`, in parallel, returning results
/// in index order. `make_ws` builds one scratch workspace per worker
/// thread (a Dijkstra instance, a witness search, …), so workspaces are
/// reused across the items a worker processes but never shared.
///
/// Items are claimed in contiguous chunks off an atomic counter, which
/// load-balances uneven items (witness searches, cell sizes) without
/// giving up the deterministic output order.
pub fn par_map_index<R, W, FW, F>(n: usize, make_ws: FW, f: F) -> Vec<R>
where
    R: Send,
    FW: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        let mut ws = make_ws();
        return (0..n).map(|i| f(&mut ws, i)).collect();
    }

    // Small chunks (several per thread) balance load; the floor keeps
    // per-chunk bookkeeping negligible for cheap items.
    let chunk = (n / (threads * 8)).max(16).min(n);
    let next = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = make_ws();
                    let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        mine.push((start, (start..end).map(|i| f(&mut ws, i)).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("preprocessing worker panicked"))
            .collect()
    });

    // Reassemble in item order: chunk starts are unique, so sorting by
    // start restores the sequential order exactly.
    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut piece) in pieces {
        out.append(&mut piece);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// [`par_map_index`] over a slice: applies `f` to every item of `items`,
/// returning results in item order.
pub fn par_map<T, R, W, FW, F>(items: &[T], make_ws: FW, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FW: Fn() -> W + Sync,
    F: Fn(&mut W, &T) -> R + Sync,
{
    par_map_index(items.len(), make_ws, |ws, i| f(ws, &items[i]))
}

/// Splits `0..n` into one contiguous span per worker thread and maps
/// each span through `f` (receiving the span's range), returning the
/// per-span results in span order. Used when the natural parallel unit
/// produces a large accumulator (e.g. one flag array per worker) that
/// the caller then merges with an order-insensitive reduction.
pub fn par_map_spans<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        return vec![f(0..n)];
    }
    let per = n.div_ceil(threads);
    let spans: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * per).min(n)..((t + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| scope.spawn(|| f(span)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("preprocessing worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let got = with_threads(threads, || par_map(&items, || (), |(), &x| x * x));
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn index_variant_preserves_order() {
        let got = with_threads(4, || par_map_index(517, || (), |(), i| i));
        assert_eq!(got, (0..517).collect::<Vec<_>>());
    }

    #[test]
    fn workspaces_are_per_thread() {
        // Each worker's workspace counts the items it handled; the total
        // must equal n regardless of how work was distributed.
        use std::sync::Mutex;
        let totals = Mutex::new(Vec::new());
        with_threads(3, || {
            par_map_index(
                200,
                || 0usize,
                |count, _| {
                    *count += 1;
                    *count
                },
            )
        })
        .iter()
        .for_each(|&c| totals.lock().unwrap().push(c));
        // Per-item results are each workspace's running count; the number
        // of items seeing count == 1 equals the number of workspaces
        // created, which is at most the thread count.
        let firsts = totals.lock().unwrap().iter().filter(|&&c| c == 1).count();
        assert!((1..=3).contains(&firsts), "{firsts} workspaces");
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(2, || {
            assert_eq!(num_threads(), 2);
            with_threads(5, || assert_eq!(num_threads(), 5));
            assert_eq!(num_threads(), 2);
        });
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(with_threads(4, || par_map_index(0, || (), |(), i| i)).is_empty());
        assert_eq!(
            with_threads(4, || par_map_index(1, || (), |(), i| i)),
            vec![0]
        );
    }

    #[test]
    fn spans_cover_everything_once() {
        for threads in [1, 3, 8] {
            let spans = with_threads(threads, || par_map_spans(100, |r| r));
            let mut seen = [false; 100];
            for r in &spans {
                for i in r.clone() {
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "threads = {threads}");
        }
    }
}
