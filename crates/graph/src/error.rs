//! Error types for graph construction and IO.

use std::fmt;

use crate::types::NodeId;

/// Errors raised while constructing or loading a [`crate::RoadNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id that was never added.
    UnknownNode(NodeId),
    /// A self-loop {v, v} was supplied; road networks are simple graphs.
    SelfLoop(NodeId),
    /// The graph is not connected; the paper's problem definition (§2)
    /// requires a connected road network.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// The graph has no vertices.
    Empty,
    /// More than `u32::MAX / 2` nodes or edges were supplied.
    TooLarge,
    /// A DIMACS file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Underlying IO failure, stringified (keeps the error `Clone + Eq`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "edge references unknown node {v}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
            GraphError::Empty => write!(f, "graph has no vertices"),
            GraphError::TooLarge => write!(f, "graph exceeds 32-bit index capacity"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::Disconnected { components: 3 };
        assert!(e.to_string().contains("3 components"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad arc".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
