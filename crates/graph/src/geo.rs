//! Planar geometry primitives.
//!
//! The paper treats vertex coordinates as points in the plane: query sets
//! are stratified by L∞ distance over a 1024×1024 grid (§4.2), TNR imposes
//! a uniform grid with square "shells" (§3.3), and SILC/PCPD compress
//! shortest-path structure with quadtree squares addressed along a Z-order
//! curve (§3.4–3.5, Appendix D). Everything those techniques need lives
//! here.

/// A point in the plane. Coordinates are arbitrary integer units
/// (DIMACS coordinate files use micro-degrees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i32,
    /// Vertical coordinate.
    pub y: i32,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// L∞ (Chebyshev) distance to `other`: `max(|dx|, |dy|)`.
    ///
    /// This is the metric the paper's query generator stratifies by.
    #[inline]
    pub fn linf(&self, other: &Point) -> u32 {
        let dx = (self.x as i64 - other.x as i64).unsigned_abs();
        let dy = (self.y as i64 - other.y as i64).unsigned_abs();
        dx.max(dy) as u32
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt; used by the
    /// synthetic generator when deriving travel-time weights).
    #[inline]
    pub fn dist2(&self, other: &Point) -> u64 {
        let dx = self.x as i64 - other.x as i64;
        let dy = self.y as i64 - other.y as i64;
        (dx * dx + dy * dy) as u64
    }
}

/// An axis-aligned rectangle with *inclusive* bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Smallest contained x.
    pub min_x: i32,
    /// Smallest contained y.
    pub min_y: i32,
    /// Largest contained x.
    pub max_x: i32,
    /// Largest contained y.
    pub max_y: i32,
}

impl Rect {
    /// Rectangle spanning the two corner points (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// The degenerate rectangle containing exactly `p`.
    pub fn point(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// Smallest rectangle containing every point of `pts`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding(pts: impl IntoIterator<Item = Point>) -> Option<Self> {
        let mut it = pts.into_iter();
        let first = it.next()?;
        let mut r = Rect::point(first);
        for p in it {
            r.min_x = r.min_x.min(p.x);
            r.min_y = r.min_y.min(p.y);
            r.max_x = r.max_x.max(p.x);
            r.max_y = r.max_y.max(p.y);
        }
        Some(r)
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether this rectangle and `other` share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Width along x (inclusive extent), as u64 to avoid overflow.
    #[inline]
    pub fn width(&self) -> u64 {
        (self.max_x as i64 - self.min_x as i64) as u64 + 1
    }

    /// Height along y (inclusive extent).
    #[inline]
    pub fn height(&self) -> u64 {
        (self.max_y as i64 - self.min_y as i64) as u64 + 1
    }
}

/// Morton (Z-order) codes over 32-bit cell coordinates.
///
/// SILC stores each vertex's first-hop colouring as intervals of the
/// Z-curve (Appendix D); quadtree blocks are exactly aligned Z-intervals,
/// so a block is identified by a code prefix.
pub mod morton {
    /// Spreads the low 32 bits of `v` so bit i moves to bit 2i.
    #[inline]
    fn spread(v: u32) -> u64 {
        let mut x = v as u64;
        x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }

    /// Inverse of [`spread`].
    #[inline]
    fn unspread(v: u64) -> u32 {
        let mut x = v & 0x5555_5555_5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
        x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
        x as u32
    }

    /// Interleaves `(x, y)` into a 64-bit Morton code (x in even bits).
    #[inline]
    pub fn encode(x: u32, y: u32) -> u64 {
        spread(x) | (spread(y) << 1)
    }

    /// Recovers `(x, y)` from a Morton code.
    #[inline]
    pub fn decode(code: u64) -> (u32, u32) {
        (unspread(code), unspread(code >> 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linf_is_chebyshev() {
        let a = Point::new(0, 0);
        assert_eq!(a.linf(&Point::new(3, -4)), 4);
        assert_eq!(a.linf(&Point::new(-7, 2)), 7);
        assert_eq!(a.linf(&a), 0);
    }

    #[test]
    fn linf_handles_extreme_coordinates() {
        let a = Point::new(i32::MIN, 0);
        let b = Point::new(i32::MAX, 0);
        assert_eq!(a.linf(&b), u32::MAX);
    }

    #[test]
    fn rect_bounding_and_contains() {
        let r = Rect::bounding([Point::new(0, 5), Point::new(10, -3), Point::new(4, 4)]).unwrap();
        assert_eq!(
            r,
            Rect {
                min_x: 0,
                min_y: -3,
                max_x: 10,
                max_y: 5
            }
        );
        assert!(r.contains(Point::new(0, -3)));
        assert!(r.contains(Point::new(10, 5)));
        assert!(!r.contains(Point::new(11, 0)));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn rect_intersects_touching_edges() {
        let a = Rect::new(Point::new(0, 0), Point::new(5, 5));
        let b = Rect::new(Point::new(5, 5), Point::new(9, 9));
        let c = Rect::new(Point::new(6, 6), Point::new(9, 9));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn morton_roundtrip() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (123, 456),
            (u32::MAX, 0),
            (u32::MAX, u32::MAX),
        ] {
            let code = morton::encode(x, y);
            assert_eq!(morton::decode(code), (x, y), "({x},{y})");
        }
    }

    #[test]
    fn morton_orders_quadrants() {
        // Within a 2x2 block the Z order is (0,0) (1,0) (0,1) (1,1).
        let codes = [
            morton::encode(0, 0),
            morton::encode(1, 0),
            morton::encode(0, 1),
            morton::encode(1, 1),
        ];
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn morton_prefix_property() {
        // Points sharing their high bits share a Z-block: quadrant of
        // (x, y) at depth 1 is given by the top interleaved bits.
        let a = morton::encode(2, 3); // both in [2,3] quadrant of 4x4
        let b = morton::encode(3, 2);
        assert_eq!(a >> 2, b >> 2);
    }
}
