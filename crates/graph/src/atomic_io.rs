//! Crash-safe container writes and cold-start recovery.
//!
//! Every persisted artifact in the workspace (network, CH, HL, POI
//! containers, bench baselines, workload files) is written through
//! [`write_atomic`]: serialise the body, write it to a temp file *in the
//! target directory*, `fsync` the file, atomically rename it over the
//! destination, then `fsync` the directory so the rename itself is
//! durable. A crash at any point leaves either the old file, the new
//! file, or an orphaned `*.tmp` — never a half-written file under the
//! final name. This is the torn-write discipline of LSM stores.
//!
//! The other half is [`recover_dir`]: a typed recovery scan run at
//! server startup and reload that sweeps a directory for the debris a
//! crash *can* leave — orphaned `*.tmp` files and checksummed `SPQ*`
//! containers that fail validation (torn by a non-atomic writer, bit
//! rot, forged length) — and moves them into a sidecar
//! `spq.quarantine/` directory with an appended reason manifest instead
//! of aborting. Quarantined index files then surface as load failures
//! that feed the serving engine's existing degradation chain.
//!
//! For the torture harness, [`write_atomic`] honours a crash hook: set
//! `SPQ_CRASH_WRITE=<stage>:<nth>` and the `nth` atomic write in the
//! process aborts (SIGABRT, no unwinding, no destructors — as close to
//! `kill -9` as a process can do to itself) at `stage`, one of
//! `mid-write`, `before-sync`, `before-rename`, `after-rename`. Every
//! stage must leave a state the recovery scan handles.
//!
//! A second, softer hook models a *full disk*: set
//! `SPQ_FAULT_ENOSPC=<from_nth>` and every guarded disk write from the
//! `from_nth`-th onward fails with a genuine `ENOSPC` error instead of
//! touching the filesystem (the counter is separate from the crash
//! hook's, so `SPQ_CRASH_WRITE` ordinals stay stable). Any `ENOSPC` —
//! injected or real — latches the process-wide sticky
//! [`disk_degraded`] flag, which the serving stats surface as a gauge:
//! once the disk has been full, answers keep flowing but persistence
//! is suspect until an operator intervenes, so the flag never clears
//! itself.

use std::cell::Cell;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::binio::{read_u64, xxhash64, IndexLoadError};

/// Where in the atomic-write sequence a crash hook fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStage {
    /// After roughly half the body bytes hit the temp file.
    MidWrite,
    /// Body fully written, before the file `fsync`.
    BeforeSync,
    /// File synced, before the rename.
    BeforeRename,
    /// Renamed into place, before the directory `fsync`.
    AfterRename,
}

impl CrashStage {
    /// Parses the stage half of `SPQ_CRASH_WRITE`.
    pub fn parse(s: &str) -> Option<CrashStage> {
        match s {
            "mid-write" => Some(CrashStage::MidWrite),
            "before-sync" => Some(CrashStage::BeforeSync),
            "before-rename" => Some(CrashStage::BeforeRename),
            "after-rename" => Some(CrashStage::AfterRename),
            _ => None,
        }
    }

    /// The string form accepted by [`CrashStage::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            CrashStage::MidWrite => "mid-write",
            CrashStage::BeforeSync => "before-sync",
            CrashStage::BeforeRename => "before-rename",
            CrashStage::AfterRename => "after-rename",
        }
    }

    /// All stages, in write order — the torture scheduler samples these.
    pub const ALL: [CrashStage; 4] = [
        CrashStage::MidWrite,
        CrashStage::BeforeSync,
        CrashStage::BeforeRename,
        CrashStage::AfterRename,
    ];
}

/// Process-wide count of atomic writes, so `SPQ_CRASH_WRITE=<stage>:<nth>`
/// can target "the nth container this process persists" deterministically.
static WRITE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Environment variable consulted by [`write_atomic`]; value is
/// `<stage>:<nth>` (1-based). Used by `spq torture` to make child
/// processes tear their own writes at a chosen point.
pub const CRASH_ENV: &str = "SPQ_CRASH_WRITE";

fn armed_crash(nth: u64) -> Option<CrashStage> {
    let spec = std::env::var(CRASH_ENV).ok()?;
    let (stage, n) = spec.split_once(':')?;
    let n: u64 = n.parse().ok()?;
    if n == nth {
        CrashStage::parse(stage)
    } else {
        None
    }
}

/// Environment variable consulted before every guarded disk write;
/// value is `<from_nth>` (1-based). From that ordinal onward the writes
/// fail with an injected `ENOSPC` — the disk is "full" and stays full,
/// which is how real disks fail. Counted separately from
/// [`CRASH_ENV`]'s ordinal so arming one hook never shifts the other's.
pub const ENOSPC_ENV: &str = "SPQ_FAULT_ENOSPC";

/// Ordinals for [`ENOSPC_ENV`] (guarded disk writes, not atomic writes).
static ENOSPC_WRITES: AtomicU64 = AtomicU64::new(0);

/// Sticky process-wide "the disk has been full" flag. Latched by any
/// `ENOSPC` seen on a guarded write (injected or real); never cleared —
/// serving continues, but an operator must judge what persisted.
static DISK_DEGRADED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Test hook: `Some(n)` lets the next `n` guarded writes on this
    /// thread succeed, then fails every later one. Thread-local so
    /// parallel unit tests cannot contaminate each other.
    static ENOSPC_COUNTDOWN: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Test hook: after `allowed` more guarded disk writes on this thread,
/// every further one fails with an injected `ENOSPC` until
/// [`clear_enospc_injection`] runs.
pub fn inject_enospc_after(allowed: u64) {
    ENOSPC_COUNTDOWN.with(|c| c.set(Some(allowed)));
}

/// Disarms [`inject_enospc_after`] on this thread.
pub fn clear_enospc_injection() {
    ENOSPC_COUNTDOWN.with(|c| c.set(None));
}

/// Whether any guarded disk write has hit `ENOSPC` since the process
/// started. Sticky by design: a disk that filled once may have eaten a
/// write even if space later frees up, so only an operator (restart)
/// resets the gauge.
pub fn disk_degraded() -> bool {
    DISK_DEGRADED.load(Ordering::Relaxed)
}

/// Latches [`disk_degraded`] when `e` is `ENOSPC`.
pub fn note_disk_error(e: &io::Error) {
    // ENOSPC is errno 28 on every unix the workspace targets.
    if e.raw_os_error() == Some(28) {
        DISK_DEGRADED.store(true, Ordering::Relaxed);
    }
}

fn enospc_error() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// The injection gate every guarded disk write passes through: the
/// thread-local test countdown first, then the process-wide
/// [`ENOSPC_ENV`] ordinal hook.
fn injected_enospc() -> Option<io::Error> {
    let tripped = ENOSPC_COUNTDOWN.with(|c| match c.get() {
        Some(0) => true,
        Some(n) => {
            c.set(Some(n - 1));
            false
        }
        None => false,
    });
    if tripped {
        return Some(enospc_error());
    }
    let spec = std::env::var(ENOSPC_ENV).ok()?;
    let from: u64 = spec.parse().ok()?;
    let nth = ENOSPC_WRITES.fetch_add(1, Ordering::Relaxed) + 1;
    if nth >= from {
        Some(enospc_error())
    } else {
        None
    }
}

enum CrashMode {
    /// Real crash hook: abort the process at the stage.
    Abort(CrashStage),
    /// Test hook: stop at the stage, leaving the torn on-disk state,
    /// and return normally so the same process can run the recovery scan.
    Simulate(CrashStage),
}

/// Writes `path` atomically: the closure serialises the body into a
/// buffer, which is then written to a unique temp file in the target
/// directory, fsynced, renamed over `path`, and the directory fsynced.
///
/// Honours the [`CRASH_ENV`] hook (aborting the process mid-sequence)
/// when armed for this write's ordinal.
pub fn write_atomic(
    path: impl AsRef<Path>,
    write_body: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<()> {
    let mut body = Vec::new();
    write_body(&mut body)?;
    let nth = WRITE_COUNTER.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(e) = injected_enospc() {
        note_disk_error(&e);
        return Err(e);
    }
    let crash = armed_crash(nth).map(CrashMode::Abort);
    match write_atomic_inner(path.as_ref(), &body, crash) {
        Ok(_) => Ok(()),
        Err(e) => {
            note_disk_error(&e);
            Err(e)
        }
    }
}

/// Test-only variant of [`write_atomic`] that *simulates* a crash at
/// `stage`: the on-disk state is exactly what the abort hook leaves,
/// but the process survives to run [`recover_dir`] over it. Returns
/// `Ok(false)` when the simulated crash cut the sequence short (the
/// write did not complete).
pub fn write_atomic_torn(
    path: impl AsRef<Path>,
    stage: CrashStage,
    write_body: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<bool> {
    let mut body = Vec::new();
    write_body(&mut body)?;
    WRITE_COUNTER.fetch_add(1, Ordering::Relaxed);
    write_atomic_inner(path.as_ref(), &body, Some(CrashMode::Simulate(stage)))
}

fn crash_point(mode: &Option<CrashMode>, here: CrashStage) -> bool {
    match mode {
        Some(CrashMode::Abort(s)) if *s == here => {
            // Flush the reason to stderr first: the torture harness greps
            // child logs to confirm the hook (not a genuine bug) fired.
            eprintln!("[atomic_io] crash hook firing at {}", here.as_str());
            std::process::abort();
        }
        Some(CrashMode::Simulate(s)) if *s == here => true,
        _ => false,
    }
}

fn write_atomic_inner(path: &Path, body: &[u8], crash: Option<CrashMode>) -> io::Result<bool> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        "{name}.{}.{}.tmp",
        std::process::id(),
        WRITE_COUNTER.load(Ordering::Relaxed)
    ));

    let mut f = File::create(&tmp)?;
    let half = body.len() / 2;
    f.write_all(&body[..half])?;
    if crash_point(&crash, CrashStage::MidWrite) {
        return Ok(false);
    }
    f.write_all(&body[half..])?;
    if crash_point(&crash, CrashStage::BeforeSync) {
        return Ok(false);
    }
    f.sync_all()?;
    drop(f);
    if crash_point(&crash, CrashStage::BeforeRename) {
        return Ok(false);
    }
    fs::rename(&tmp, path)?;
    let survived = !crash_point(&crash, CrashStage::AfterRename);
    // Sync the directory so the rename is durable across power loss.
    // Some filesystems refuse to open a directory for writing; opening
    // read-only still permits fsync on unix.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(survived)
}

// ---------------------------------------------------------------------------
// Recovery scan.

/// Name of the sidecar directory a recovery scan moves debris into.
pub const QUARANTINE_DIR: &str = "spq.quarantine";

/// Name of the append-only reason manifest inside [`QUARANTINE_DIR`].
pub const MANIFEST: &str = "MANIFEST";

/// One file the recovery scan moved aside.
#[derive(Debug)]
pub struct QuarantineEntry {
    /// Where the file was found.
    pub original: PathBuf,
    /// Where it now lives (inside the sidecar quarantine dir).
    pub quarantined_to: PathBuf,
    /// Human-readable reason, also appended to the manifest.
    pub reason: String,
}

/// Result of scanning one directory.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Regular files examined.
    pub scanned: usize,
    /// Checksummed `SPQ*` containers that validated end to end.
    pub verified: usize,
    /// Files moved into quarantine, with reasons.
    pub quarantined: Vec<QuarantineEntry>,
}

impl RecoveryReport {
    /// Folds another directory's report into this one.
    pub fn merge(&mut self, other: RecoveryReport) {
        self.scanned += other.scanned;
        self.verified += other.verified;
        self.quarantined.extend(other.quarantined);
    }

    /// Looks up the quarantine entry for an exact original path, letting
    /// a loader attach the precise reason to its degradation record.
    pub fn reason_for(&self, path: &Path) -> Option<&QuarantineEntry> {
        self.quarantined.iter().find(|q| q.original == path)
    }
}

/// Validates a checksummed `SPQ*` container without knowing which index
/// format it is: magic(4) + version(4) + body_len(8) + xxh64(8) + body,
/// checksum seeded with the version, exactly as
/// [`crate::binio::write_checksummed`] lays it down.
fn validate_container(path: &Path) -> Result<(), IndexLoadError> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    let mut v = [0u8; 4];
    f.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    // Version-1 CH files predate the checksummed container entirely
    // (plain header, no body_len/checksum fields); classify them before
    // touching fields they do not have, or a short legacy file reads as
    // an i/o error and gets quarantined instead of left for the loader's
    // migration advice. Every other SPQ* magic is checksummed from v1.
    if &magic == b"SPQC" && version < 2 {
        return Err(IndexLoadError::LegacyVersion {
            found: version,
            supported: 2,
        });
    }
    let body_len = read_u64(&mut f)?;
    // Same plausibility cap as binio::MAX_BODY_LEN.
    if body_len > (1 << 37) {
        return Err(IndexLoadError::Corrupt(format!(
            "implausible body length {body_len}"
        )));
    }
    let stored = read_u64(&mut f)?;
    let mut body = Vec::new();
    f.read_to_end(&mut body)?;
    if (body.len() as u64) < body_len {
        return Err(IndexLoadError::Truncated {
            expected: body_len,
            got: body.len() as u64,
        });
    }
    body.truncate(body_len as usize);
    let computed = xxhash64(&body, version as u64);
    if computed != stored {
        return Err(IndexLoadError::ChecksumMismatch {
            expected: stored,
            got: computed,
        });
    }
    Ok(())
}

/// Decides whether one regular file is debris, and why.
fn debris_reason(path: &Path) -> io::Result<Option<String>> {
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
    let name = name.unwrap_or_default();
    if name.ends_with(".tmp") {
        return Ok(Some(
            "orphaned temp file from an interrupted atomic write".to_string(),
        ));
    }
    // Only checksummed SPQ containers can be validated magic-agnostically.
    // SPQN (network) files use a plain header without a checksum, and
    // non-SPQ files are none of our business: both are left in place.
    let mut f = File::open(path)?;
    let mut magic = [0u8; 4];
    match f.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if !magic.starts_with(b"SPQ") || &magic == b"SPQN" {
        return Ok(None);
    }
    drop(f);
    match validate_container(path) {
        Ok(()) => Ok(None),
        // A version-1 file predates the checksummed container; it is
        // refused at load time with a typed error but is not *torn*, so
        // the scan leaves it for the operator.
        Err(IndexLoadError::LegacyVersion { .. }) => Ok(None),
        Err(e) => Ok(Some(format!(
            "container {} failed validation: {e}",
            String::from_utf8_lossy(&magic)
        ))),
    }
}

/// Moves `path` into `dir/spq.quarantine/`, appending a manifest line.
///
/// The manifest append is best-effort: on a full disk the *move* still
/// isolates the debris (a rename consumes no data blocks), and failing
/// the whole recovery scan over a missing log line would turn a
/// degraded disk into an outage. An append failure latches
/// [`disk_degraded`] and is logged instead.
fn quarantine(dir: &Path, path: &Path, reason: &str) -> io::Result<QuarantineEntry> {
    let qdir = dir.join(QUARANTINE_DIR);
    fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let mut dest = qdir.join(&name);
    let mut n = 1;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{n}"));
        n += 1;
    }
    fs::rename(path, &dest)?;
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let appended = (|| -> io::Result<()> {
        if let Some(e) = injected_enospc() {
            return Err(e);
        }
        let mut manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(qdir.join(MANIFEST))?;
        writeln!(
            manifest,
            "ts={ts} file={} quarantined_as={} reason={reason}",
            path.display(),
            dest.file_name().unwrap_or_default().to_string_lossy()
        )?;
        manifest.sync_all()
    })();
    if let Err(e) = appended {
        note_disk_error(&e);
        eprintln!(
            "[atomic_io] quarantine manifest append failed ({e}); \
             {} moved to {} without a manifest line",
            path.display(),
            dest.display()
        );
    }
    Ok(QuarantineEntry {
        original: path.to_path_buf(),
        quarantined_to: dest,
        reason: reason.to_string(),
    })
}

/// Scans one directory (non-recursive) for crash debris: orphaned
/// `*.tmp` files and checksummed `SPQ*` containers that fail
/// validation. Each is moved into the sidecar [`QUARANTINE_DIR`] with a
/// manifest line; nothing is deleted. Files the scan cannot judge
/// (non-SPQ, unchecksummed `SPQN`, legacy versions) are left alone.
///
/// A missing directory yields an empty report — a fresh deployment has
/// nothing to recover.
pub fn recover_dir(dir: impl AsRef<Path>) -> io::Result<RecoveryReport> {
    let dir = dir.as_ref();
    let mut report = RecoveryReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if !entry.file_type()?.is_file() {
            continue;
        }
        report.scanned += 1;
        match debris_reason(&path) {
            Ok(Some(reason)) => {
                report.quarantined.push(quarantine(dir, &path, &reason)?);
            }
            Ok(None) => report.verified += 1,
            // A file that vanished mid-scan (concurrent writer) is not
            // debris; skip it rather than fail the whole scan.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}

/// Scans the parent directories of a set of files (deduplicated), for
/// callers that know which artifact paths they are about to load rather
/// than which directories hold them.
pub fn recover_dirs_of<'a>(
    paths: impl IntoIterator<Item = &'a Path>,
) -> io::Result<RecoveryReport> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    for p in paths {
        let d = match p.parent() {
            Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
            _ => PathBuf::from("."),
        };
        if !dirs.contains(&d) {
            dirs.push(d);
        }
    }
    let mut report = RecoveryReport::default();
    for d in &dirs {
        report.merge(recover_dir(d)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binio::write_checksummed;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "spq_atomic_io_{tag}_{}_{}",
            std::process::id(),
            WRITE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn container_bytes(version: u32, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_checksummed(&mut buf, b"SPQC", version, body).unwrap();
        buf
    }

    #[test]
    fn write_atomic_roundtrip_and_no_temp_left() {
        let d = tmpdir("roundtrip");
        let path = d.join("index.ch");
        write_atomic(&path, |w| w.write_all(&container_bytes(2, b"hello"))).unwrap();
        assert_eq!(fs::read(&path).unwrap(), container_bytes(2, b"hello"));
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(leftovers.is_empty(), "temp file must be renamed away");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_atomic_replaces_existing_file_atomically() {
        let d = tmpdir("replace");
        let path = d.join("index.ch");
        write_atomic(&path, |w| w.write_all(b"old")).unwrap();
        write_atomic(&path, |w| w.write_all(b"new content")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new content");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_write_never_damages_the_destination() {
        // Crash at every pre-rename stage: the old file survives intact.
        for stage in [
            CrashStage::MidWrite,
            CrashStage::BeforeSync,
            CrashStage::BeforeRename,
        ] {
            let d = tmpdir("torn");
            let path = d.join("index.ch");
            let old = container_bytes(2, b"previous generation");
            write_atomic(&path, |w| w.write_all(&old)).unwrap();
            let completed =
                write_atomic_torn(&path, stage, |w| w.write_all(&container_bytes(2, b"next")))
                    .unwrap();
            assert!(!completed, "{stage:?} must cut the write short");
            assert_eq!(
                fs::read(&path).unwrap(),
                old,
                "{stage:?}: destination must still hold the old bytes"
            );
            fs::remove_dir_all(&d).unwrap();
        }
        // Crash after the rename: the new file is already in place.
        let d = tmpdir("torn_after");
        let path = d.join("index.ch");
        let new = container_bytes(2, b"next");
        write_atomic_torn(&path, CrashStage::AfterRename, |w| w.write_all(&new)).unwrap();
        assert_eq!(fs::read(&path).unwrap(), new);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn recovery_scan_quarantines_orphan_tmp_and_keeps_good_files() {
        let d = tmpdir("scan_orphan");
        let good = d.join("good.ch");
        write_atomic(&good, |w| w.write_all(&container_bytes(2, b"good body"))).unwrap();
        // A torn mid-write leaves an orphan temp.
        write_atomic_torn(d.join("other.ch"), CrashStage::MidWrite, |w| {
            w.write_all(&container_bytes(2, b"never finished"))
        })
        .unwrap();
        let report = recover_dir(&d).unwrap();
        assert_eq!(report.quarantined.len(), 1, "exactly the orphan temp");
        assert!(report.quarantined[0].reason.contains("orphaned temp"));
        assert!(good.exists(), "validated container stays in place");
        assert!(report.quarantined[0].quarantined_to.exists());
        let manifest = fs::read_to_string(d.join(QUARANTINE_DIR).join(MANIFEST)).unwrap();
        assert!(manifest.contains("orphaned temp"), "manifest: {manifest}");
        // Scan is idempotent: a second pass finds nothing new.
        let again = recover_dir(&d).unwrap();
        assert!(again.quarantined.is_empty());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn recovery_scan_quarantines_corrupt_containers() {
        let d = tmpdir("scan_corrupt");
        // Truncated container (torn by a non-atomic writer).
        let mut torn = container_bytes(2, b"a body of respectable length here");
        torn.truncate(torn.len() - 5);
        fs::write(d.join("torn.ch"), &torn).unwrap();
        // Bit-flipped container.
        let mut flipped = container_bytes(2, b"a body of respectable length here");
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        fs::write(d.join("flipped.hl"), &flipped).unwrap();
        // Non-SPQ file: left alone.
        fs::write(d.join("notes.txt"), b"operator notes").unwrap();
        let report = recover_dir(&d).unwrap();
        assert_eq!(report.quarantined.len(), 2);
        assert!(d.join("notes.txt").exists());
        assert!(!d.join("torn.ch").exists());
        assert!(!d.join("flipped.hl").exists());
        let reasons: Vec<&str> = report
            .quarantined
            .iter()
            .map(|q| q.reason.as_str())
            .collect();
        assert!(
            reasons.iter().any(|r| r.contains("truncated")),
            "{reasons:?}"
        );
        assert!(
            reasons.iter().any(|r| r.contains("checksum mismatch")),
            "{reasons:?}"
        );
        fs::remove_dir_all(&d).unwrap();
    }

    /// A pre-checksum CH file (version 1: plain header, no
    /// body_len/checksum fields) is not debris — the loader refuses it
    /// with migration advice, so the scan must leave it in place even
    /// though it is too short to parse as a checksummed container.
    #[test]
    fn recovery_scan_leaves_legacy_ch_files_for_the_loader() {
        let d = tmpdir("scan_legacy");
        let legacy = d.join("old.ch");
        let mut bytes = Vec::new();
        crate::binio::write_header(&mut bytes, b"SPQC", 1).unwrap();
        crate::binio::write_u64(&mut bytes, 0).unwrap();
        fs::write(&legacy, &bytes).unwrap();
        let report = recover_dir(&d).unwrap();
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        assert!(legacy.exists(), "legacy file must stay in place");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn recovery_scan_reports_reason_for_exact_path() {
        let d = tmpdir("scan_reason");
        let bad = d.join("bad.ch");
        let mut bytes = container_bytes(2, b"soon to be damaged");
        bytes[20] ^= 0xFF;
        fs::write(&bad, &bytes).unwrap();
        let report = recover_dirs_of([bad.as_path()]).unwrap();
        let entry = report.reason_for(&bad).expect("entry for the exact path");
        assert!(entry.reason.contains("checksum mismatch"));
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_report() {
        let report = recover_dir("/definitely/not/a/real/dir/spq").unwrap();
        assert_eq!(report.scanned, 0);
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn injected_enospc_fails_the_write_and_latches_degraded() {
        let d = tmpdir("enospc_write");
        let path = d.join("index.ch");
        write_atomic(&path, |w| w.write_all(b"fits")).unwrap();
        inject_enospc_after(0);
        let err = write_atomic(&path, |w| w.write_all(b"disk is full")).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "must be a real ENOSPC");
        assert!(disk_degraded(), "ENOSPC must latch the sticky gauge");
        assert_eq!(
            fs::read(&path).unwrap(),
            b"fits",
            "the destination must keep its old bytes"
        );
        clear_enospc_injection();
        write_atomic(&path, |w| w.write_all(b"space again")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"space again");
        assert!(disk_degraded(), "the gauge stays latched after recovery");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn manifest_enospc_never_fails_the_recovery_scan() {
        let d = tmpdir("enospc_manifest");
        // A torn mid-write leaves an orphan temp for the scan to move.
        write_atomic_torn(d.join("victim.ch"), CrashStage::MidWrite, |w| {
            w.write_all(b"never finished at respectable length")
        })
        .unwrap();
        // The very next guarded write — the manifest append — hits the
        // full disk. The scan must still succeed and still isolate the
        // debris; only the log line is lost.
        inject_enospc_after(0);
        let report = recover_dir(&d).unwrap();
        clear_enospc_injection();
        assert_eq!(report.quarantined.len(), 1, "{:?}", report.quarantined);
        assert!(report.quarantined[0].quarantined_to.exists());
        assert!(disk_degraded(), "manifest ENOSPC must latch the gauge");
        // No orphan remains outside quarantine.
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn crash_env_parses_stages() {
        assert_eq!(CrashStage::parse("mid-write"), Some(CrashStage::MidWrite));
        assert_eq!(
            CrashStage::parse("after-rename"),
            Some(CrashStage::AfterRename)
        );
        assert_eq!(CrashStage::parse("nonsense"), None);
    }
}
