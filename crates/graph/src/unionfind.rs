//! Disjoint-set forest with path halving and union by size.
//!
//! Used by the builder's connectivity check and by the synthetic generator
//! when stitching a network together.

/// A union-find structure over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// parent[i] == i for roots; for roots, `size[i]` is the component size.
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton components.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize);
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Representative of `x`'s component (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the components of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` share a component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of components remaining.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s component.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert!(!uf.union(0, 3)); // already merged
        assert_eq!(uf.num_components(), 2);
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.component_size(4), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let uf = UnionFind::new(0);
        assert_eq!(uf.num_components(), 0);
        let mut uf = UnionFind::new(1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn chain_compresses() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        for i in 0..100 {
            assert!(uf.connected(0, i));
        }
    }
}
