//! Seeded source/target pair sampling shared by every differential
//! check in the workspace.
//!
//! The startup self-check, the offline `verify_all` sweep, and the
//! serving layer's continuous auditor all compare a backend against the
//! Dijkstra oracle on "random" pairs. Drawing those pairs from one
//! shared, explicitly-seeded generator makes audit coverage *replayable*:
//! a logged `(seed, count)` fully determines which pairs were checked,
//! so a reported mismatch can be reproduced bit-for-bit offline.
//!
//! The generator is the workspace's standard LCG (the same multiplier /
//! increment as `rand_pcg`'s underlying state transition) with the top
//! bits taken, so consecutive outputs are decorrelated enough to spread
//! over the vertex range without any external dependency.

use crate::types::NodeId;

/// The seed pre-whitening constant: distinct user seeds that differ in
/// few bits still start far apart in state space.
const SEED_WHITENER: u64 = 0x5eed_5e1f_c4ec_ba5e;

/// An infinite, deterministic stream of `(source, target)` vertex
/// pairs over a network of `n` vertices.
#[derive(Debug, Clone)]
pub struct PairSampler {
    state: u64,
    n: u64,
}

impl PairSampler {
    /// A sampler over vertices `0..num_nodes` driven by `seed`.
    ///
    /// # Panics
    /// Panics if `num_nodes` is 0 — there is no pair to sample.
    pub fn new(num_nodes: usize, seed: u64) -> PairSampler {
        assert!(num_nodes > 0, "cannot sample pairs from an empty network");
        PairSampler {
            state: seed ^ SEED_WHITENER,
            n: num_nodes as u64,
        }
    }

    fn next_vertex(&mut self) -> NodeId {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.state >> 33) % self.n) as NodeId
    }

    /// Draws the next pair. Source and target may coincide.
    pub fn next_pair(&mut self) -> (NodeId, NodeId) {
        let s = self.next_vertex();
        let t = self.next_vertex();
        (s, t)
    }

    /// Collects the first `count` pairs (convenience for tests and the
    /// offline verifiers).
    pub fn pairs(num_nodes: usize, seed: u64, count: usize) -> Vec<(NodeId, NodeId)> {
        let mut sampler = PairSampler::new(num_nodes, seed);
        (0..count).map(|_| sampler.next_pair()).collect()
    }
}

impl Iterator for PairSampler {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        Some(self.next_pair())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<_> = PairSampler::new(1000, 7).take(64).collect();
        let b = PairSampler::pairs(1000, 7, 64);
        assert_eq!(a, b);
        let c = PairSampler::pairs(1000, 8, 64);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn pairs_stay_in_range_and_spread() {
        let n = 37;
        let pairs = PairSampler::pairs(n, 0xabc, 500);
        let mut seen = vec![false; n];
        for (s, t) in pairs {
            assert!((s as usize) < n && (t as usize) < n);
            seen[s as usize] = true;
            seen[t as usize] = true;
        }
        let covered = seen.iter().filter(|&&v| v).count();
        assert!(covered > n / 2, "only {covered}/{n} vertices sampled");
    }

    #[test]
    fn single_vertex_network_samples_the_only_pair() {
        assert_eq!(PairSampler::pairs(1, 9, 3), vec![(0, 0); 3]);
    }
}
