//! The compressed-sparse-row road network shared by all techniques.

use crate::geo::{Point, Rect};
use crate::size::IndexSize;
use crate::types::{Dist, EdgeId, NodeId, Weight};

/// An undirected, connected, degree-bounded road network (paper §2).
///
/// The adjacency structure mirrors the representation the paper's
/// implementations share (Appendix D): each undirected edge {u, v} is
/// stored twice, once in `u`'s block and once in `v`'s, so that iterating
/// a vertex's neighbours is a contiguous scan.
///
/// Construct via [`crate::GraphBuilder`], which validates connectivity and
/// rejects self-loops, or via [`crate::dimacs`].
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    /// `first_out[v] .. first_out[v + 1]` indexes v's adjacency block.
    first_out: Box<[u32]>,
    /// Head vertex of each directed edge slot.
    head: Box<[NodeId]>,
    /// Weight of each directed edge slot.
    weight: Box<[Weight]>,
    /// Planar coordinate of each vertex.
    coords: Box<[Point]>,
}

impl RoadNetwork {
    pub(crate) fn from_parts(
        first_out: Box<[u32]>,
        head: Box<[NodeId]>,
        weight: Box<[Weight]>,
        coords: Box<[Point]>,
    ) -> Self {
        debug_assert_eq!(first_out.len(), coords.len() + 1);
        debug_assert_eq!(head.len(), weight.len());
        debug_assert_eq!(*first_out.last().unwrap() as usize, head.len());
        RoadNetwork {
            first_out,
            head,
            weight,
            coords,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edge slots (twice the undirected edge count).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.head.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.head.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.first_out[v as usize + 1] - self.first_out[v as usize]) as usize
    }

    /// Maximum degree over all vertices (the paper assumes degree-bounded
    /// graphs; road networks have small constant maxima).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates `v`'s incident edges as `(edge_slot, head, weight)`.
    #[inline]
    pub fn edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId, Weight)> + '_ {
        let lo = self.first_out[v as usize] as usize;
        let hi = self.first_out[v as usize + 1] as usize;
        (lo..hi).map(move |e| (e as EdgeId, self.head[e], self.weight[e]))
    }

    /// Iterates `v`'s neighbours with the connecting weight.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.first_out[v as usize] as usize;
        let hi = self.first_out[v as usize + 1] as usize;
        self.head[lo..hi]
            .iter()
            .copied()
            .zip(self.weight[lo..hi].iter().copied())
    }

    /// Head vertex of edge slot `e`.
    #[inline]
    pub fn edge_head(&self, e: EdgeId) -> NodeId {
        self.head[e as usize]
    }

    /// Weight of edge slot `e`.
    #[inline]
    pub fn edge_weight_of(&self, e: EdgeId) -> Weight {
        self.weight[e as usize]
    }

    /// Weight of the lightest edge {u, v}, if one exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.neighbors(u)
            .filter(|&(h, _)| h == v)
            .map(|(_, w)| w)
            .min()
    }

    /// Whether {u, v} is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Coordinate of `v`.
    #[inline]
    pub fn coord(&self, v: NodeId) -> Point {
        self.coords[v as usize]
    }

    /// All coordinates, indexed by vertex id.
    #[inline]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// Bounding rectangle of all vertices.
    pub fn bounding_rect(&self) -> Rect {
        Rect::bounding(self.coords.iter().copied()).expect("graphs are non-empty by construction")
    }

    /// Checks that a vertex sequence is a path in the graph and returns its
    /// length. Used by tests and by the distance-query implementations of
    /// SILC/PCPD, which per the paper answer distance queries by summing a
    /// computed path (§3.4–3.5).
    pub fn path_length(&self, path: &[NodeId]) -> Option<Dist> {
        if path.is_empty() {
            return None;
        }
        let mut total: Dist = 0;
        for w in path.windows(2) {
            total += self.edge_weight(w[0], w[1])? as Dist;
        }
        Some(total)
    }
}

impl IndexSize for RoadNetwork {
    fn index_size_bytes(&self) -> usize {
        self.first_out.len() * std::mem::size_of::<u32>()
            + self.head.len() * std::mem::size_of::<NodeId>()
            + self.weight.len() * std::mem::size_of::<Weight>()
            + self.coords.len() * std::mem::size_of::<Point>()
    }
}

#[cfg(test)]
mod tests {
    use crate::size::IndexSize;
    use crate::toy::figure1;

    #[test]
    fn figure1_shape() {
        let g = figure1();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.num_arcs(), 18);
        assert_eq!(g.degree(7), 3); // v8: v1, v2, v6
        assert_eq!(g.edge_weight(1, 7), Some(2));
        assert_eq!(g.edge_weight(0, 7), Some(1));
        assert_eq!(g.edge_weight(0, 5), None);
        assert!(g.has_edge(4, 5));
        assert!(!g.has_edge(0, 6));
    }

    #[test]
    fn neighbors_match_edges() {
        let g = figure1();
        for v in 0..g.num_nodes() as u32 {
            let via_edges: Vec<_> = g.edges(v).map(|(_, h, w)| (h, w)).collect();
            let via_neigh: Vec<_> = g.neighbors(v).collect();
            assert_eq!(via_edges, via_neigh);
            assert_eq!(via_edges.len(), g.degree(v));
        }
    }

    #[test]
    fn path_length_checks_validity() {
        let g = figure1();
        // v3 - v1 - v8 is a real path of length 2.
        assert_eq!(g.path_length(&[2, 0, 7]), Some(2));
        // v3 - v7 is not an edge.
        assert_eq!(g.path_length(&[2, 6]), None);
        // A single vertex is a zero-length path.
        assert_eq!(g.path_length(&[4]), Some(0));
        assert_eq!(g.path_length(&[]), None);
    }

    #[test]
    fn size_accounting_is_positive_and_scales() {
        let g = figure1();
        let sz = g.index_size_bytes();
        // 9 first_out+1, 18 arcs * (4+4), 8 coords * 8.
        assert_eq!(sz, 9 * 4 + 18 * 8 + 8 * 8);
    }

    #[test]
    fn bounding_rect_covers_all() {
        let g = figure1();
        let r = g.bounding_rect();
        for v in 0..g.num_nodes() as u32 {
            assert!(r.contains(g.coord(v)));
        }
    }

    #[test]
    fn max_degree_is_bounded() {
        let g = figure1();
        assert_eq!(g.max_degree(), 3);
    }
}
