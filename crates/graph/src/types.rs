//! Fundamental scalar types shared across the workspace.
//!
//! Vertices and edges are 32-bit indices (the paper's largest dataset has
//! 24M vertices and 58M directed edges, well within `u32`). Edge weights are
//! 32-bit travel times as in the DIMACS datasets; accumulated path lengths
//! use 64 bits so that no realistic path can overflow.

/// Identifier of a vertex, an index into the graph's node arrays.
pub type NodeId = u32;

/// Identifier of a directed edge slot in the CSR arrays.
///
/// An undirected edge {u, v} occupies two slots, one in `u`'s adjacency
/// block and one in `v`'s, exactly like the doubled representation the
/// paper's implementations share (Appendix D).
pub type EdgeId = u32;

/// Weight of a single edge (travel time in the DIMACS datasets).
pub type Weight = u32;

/// Length of a path: a sum of [`Weight`]s.
pub type Dist = u64;

/// Sentinel for "unreached" / "no path" distances.
///
/// Using `u64::MAX` directly would overflow when a tentative distance is
/// formed as `INFINITY + w`; half the range leaves headroom while remaining
/// larger than any real path length.
pub const INFINITY: Dist = u64::MAX / 2;

/// Sentinel for "no vertex" in predecessor arrays and tags.
pub const INVALID_NODE: NodeId = u32::MAX;

/// Sentinel for "no edge".
pub const INVALID_EDGE: EdgeId = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_has_headroom() {
        // A tentative distance `INFINITY + max weight` must not wrap.
        let tentative = INFINITY + Weight::MAX as Dist;
        assert!(tentative > INFINITY);
        assert!(tentative < u64::MAX);
    }

    #[test]
    fn sentinels_are_distinct_from_small_ids() {
        assert_ne!(INVALID_NODE, 0);
        assert_ne!(INVALID_EDGE, 0);
    }
}
