//! Index-size accounting.
//!
//! The paper's Figures 6 and 13 plot "space consumption (MB)" per technique;
//! its applicability rule ("report a technique on a dataset only when its
//! index fits in 24 GB", §4.1) is also a pure function of index size. Every
//! preprocessed structure in the workspace therefore implements
//! [`IndexSize`], reporting the bytes its *owned containers* occupy.

/// Reports the in-memory footprint of a preprocessed index structure.
pub trait IndexSize {
    /// Bytes occupied by the structure's owned storage (container lengths ×
    /// element sizes; administrative struct headers are negligible and
    /// ignored).
    fn index_size_bytes(&self) -> usize;

    /// Convenience: size in mebibytes, for report tables.
    fn index_size_mb(&self) -> f64 {
        self.index_size_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Bytes held by a slice of plain-old-data elements.
#[inline]
pub fn slice_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

/// Bytes held by a `Vec`, counting capacity (what the allocator charges).
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl IndexSize for Fixed {
        fn index_size_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn mb_conversion() {
        assert_eq!(Fixed(1024 * 1024).index_size_mb(), 1.0);
        assert_eq!(Fixed(0).index_size_mb(), 0.0);
    }

    #[test]
    fn helpers_count_bytes() {
        let v: Vec<u32> = Vec::with_capacity(10);
        assert_eq!(vec_bytes(&v), 40);
        let s = [0u64; 3];
        assert_eq!(slice_bytes(&s), 24);
    }
}
