//! Binary persistence for road networks.
//!
//! DIMACS text files are the interchange format; this compact binary
//! form is for fast reloads of generated or preprocessed data (a US-size
//! network parses from text in tens of seconds but loads from this
//! format in well under one).

use std::io::{self, Read, Write};

use crate::binio;
use crate::csr::RoadNetwork;
use crate::geo::Point;
use crate::types::NodeId;

const MAGIC: &[u8; 4] = b"SPQN";
const VERSION: u32 = 1;

impl RoadNetwork {
    /// Serialises the network (adjacency + coordinates).
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        binio::write_header(w, MAGIC, VERSION)?;
        binio::write_u64(w, self.num_nodes() as u64)?;
        let mut fo = Vec::with_capacity(self.num_nodes() + 1);
        fo.push(0u32);
        let mut heads = Vec::with_capacity(self.num_arcs());
        let mut weights = Vec::with_capacity(self.num_arcs());
        for v in 0..self.num_nodes() as NodeId {
            for (h, wt) in self.neighbors(v) {
                heads.push(h);
                weights.push(wt);
            }
            fo.push(heads.len() as u32);
        }
        binio::write_u32s(w, &fo)?;
        binio::write_u32s(w, &heads)?;
        binio::write_u32s(w, &weights)?;
        let xs: Vec<i32> = self.coords().iter().map(|p| p.x).collect();
        let ys: Vec<i32> = self.coords().iter().map(|p| p.y).collect();
        binio::write_i32s(w, &xs)?;
        binio::write_i32s(w, &ys)?;
        Ok(())
    }

    /// Deserialises a network written by [`RoadNetwork::write_binary`].
    pub fn read_binary(r: &mut impl Read) -> io::Result<RoadNetwork> {
        let version = binio::read_header(r, MAGIC)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported network format version {version}"),
            ));
        }
        let n = binio::read_u64(r)? as usize;
        let first_out = binio::read_u32s(r)?;
        let heads = binio::read_u32s(r)?;
        let weights = binio::read_u32s(r)?;
        let xs = binio::read_i32s(r)?;
        let ys = binio::read_i32s(r)?;
        if first_out.len() != n + 1
            || xs.len() != n
            || ys.len() != n
            || heads.len() != weights.len()
            || first_out.last().copied().unwrap_or(1) as usize != heads.len()
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "inconsistent section lengths",
            ));
        }
        for &h in &heads {
            if h as usize >= n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("arc head {h} out of range"),
                ));
            }
        }
        let coords: Vec<Point> = xs
            .into_iter()
            .zip(ys)
            .map(|(x, y)| Point::new(x, y))
            .collect();
        Ok(RoadNetwork::from_parts(
            first_out.into_boxed_slice(),
            heads.into_boxed_slice(),
            weights.into_boxed_slice(),
            coords.into_boxed_slice(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{figure1, grid_graph};

    #[test]
    fn roundtrip_preserves_everything() {
        for g in [figure1(), grid_graph(7, 9)] {
            let mut buf = Vec::new();
            g.write_binary(&mut buf).unwrap();
            let g2 = RoadNetwork::read_binary(&mut &buf[..]).unwrap();
            assert_eq!(g2.num_nodes(), g.num_nodes());
            assert_eq!(g2.num_arcs(), g.num_arcs());
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(g2.coord(v), g.coord(v));
                assert!(g2.neighbors(v).eq(g.neighbors(v)));
            }
        }
    }

    #[test]
    fn rejects_corruption() {
        let g = figure1();
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        // Flip a byte in the magic.
        buf[0] ^= 0xff;
        assert!(RoadNetwork::read_binary(&mut &buf[..]).is_err());
        // Truncation.
        let mut buf2 = Vec::new();
        g.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() / 2);
        assert!(RoadNetwork::read_binary(&mut &buf2[..]).is_err());
    }
}
