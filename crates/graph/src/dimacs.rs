//! Reader/writer for the 9th DIMACS Implementation Challenge format.
//!
//! The paper's ten datasets (Table 1) are distance/travel-time graphs from
//! the challenge, distributed as a `.gr` arc file plus a `.co` coordinate
//! file. This module lets the real data be used wherever the workspace's
//! synthetic networks are; the synthetic generator also exports this
//! format so that third-party tools can consume our workloads.
//!
//! Format summary (1-based vertex ids):
//!
//! ```text
//! .gr:   c <comment>            .co:   c <comment>
//!        p sp <n> <m>                  p aux sp co <n>
//!        a <u> <v> <w>                 v <id> <x> <y>
//! ```

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::csr::RoadNetwork;
use crate::error::GraphError;
use crate::geo::Point;
use crate::types::{NodeId, Weight};

fn parse_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses a `.gr` arc file and a `.co` coordinate file into a network.
///
/// DIMACS graphs list each undirected road segment as two arcs; the
/// builder collapses them. Stray disconnected islands (present in some
/// real extracts) are dropped by restricting to the largest component,
/// matching the paper's connected-graph problem definition (§2).
pub fn read(gr: impl BufRead, co: impl BufRead) -> Result<RoadNetwork, GraphError> {
    let (n, arcs) = read_gr(gr)?;
    let coords = read_co(co, n)?;
    let mut b = GraphBuilder::with_capacity(n, arcs.len());
    for p in coords {
        b.add_node(p);
    }
    for (u, v, w) in arcs {
        b.add_edge(u, v, w);
    }
    let (net, _dropped) = b.build_largest_component()?;
    Ok(net)
}

/// An arc list with 0-based endpoints: `(tail, head, weight)` triples.
pub type ArcList = Vec<(NodeId, NodeId, Weight)>;

/// Parses just the arc file; returns `(n, arcs)` with 0-based endpoints.
pub fn read_gr(gr: impl BufRead) -> Result<(usize, ArcList), GraphError> {
    let mut n: Option<usize> = None;
    let mut arcs: ArcList = Vec::new();
    for (idx, line) in gr.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        match tok.next() {
            Some("p") => {
                if tok.next() != Some("sp") {
                    return Err(parse_err(lineno, "expected 'p sp <n> <m>'"));
                }
                let nn: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex count"))?;
                let m: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc count"))?;
                n = Some(nn);
                arcs.reserve(m);
            }
            Some("a") => {
                let n = n.ok_or_else(|| parse_err(lineno, "arc before problem line"))?;
                let u: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc tail"))?;
                let v: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc head"))?;
                let w: Weight = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc weight"))?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(parse_err(
                        lineno,
                        format!("arc endpoint out of range: {u} {v}"),
                    ));
                }
                if u != v {
                    arcs.push(((u - 1) as NodeId, (v - 1) as NodeId, w));
                }
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record '{other}'")));
            }
            None => unreachable!("empty lines were skipped"),
        }
    }
    let n = n.ok_or_else(|| parse_err(0, "missing problem line"))?;
    Ok((n, arcs))
}

/// Parses just the coordinate file; `n` is the vertex count from the
/// matching `.gr` file. Vertices missing a coordinate default to (0, 0).
pub fn read_co(co: impl BufRead, n: usize) -> Result<Vec<Point>, GraphError> {
    let mut coords = vec![Point::default(); n];
    for (idx, line) in co.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        match tok.next() {
            Some("v") => {
                let id: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex id"))?;
                let x: i32 = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad x coordinate"))?;
                let y: i32 = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad y coordinate"))?;
                if id == 0 || id > n {
                    return Err(parse_err(lineno, format!("vertex id out of range: {id}")));
                }
                coords[id - 1] = Point::new(x, y);
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record '{other}'")));
            }
            None => unreachable!(),
        }
    }
    Ok(coords)
}

/// Writes `net` as a `.gr` arc file (both arc directions, DIMACS style).
pub fn write_gr(net: &RoadNetwork, mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "c generated by spq-graph")?;
    writeln!(out, "p sp {} {}", net.num_nodes(), net.num_arcs())?;
    for u in 0..net.num_nodes() as NodeId {
        for (v, w) in net.neighbors(u) {
            writeln!(out, "a {} {} {}", u + 1, v + 1, w)?;
        }
    }
    Ok(())
}

/// Writes `net`'s coordinates as a `.co` file.
pub fn write_co(net: &RoadNetwork, mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "c generated by spq-graph")?;
    writeln!(out, "p aux sp co {}", net.num_nodes())?;
    for v in 0..net.num_nodes() as NodeId {
        let p = net.coord(v);
        writeln!(out, "v {} {} {}", v + 1, p.x, p.y)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::figure1;

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let mut gr = Vec::new();
        let mut co = Vec::new();
        write_gr(&g, &mut gr).unwrap();
        write_co(&g, &mut co).unwrap();
        let g2 = read(&gr[..], &co[..]).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(g2.coord(v), g.coord(v));
            let mut a: Vec<_> = g.neighbors(v).collect();
            let mut b: Vec<_> = g2.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let gr = "c hello\n\np sp 2 2\na 1 2 7\na 2 1 7\n";
        let co = "c coords\nv 1 10 20\nv 2 30 40\n";
        let g = read(gr.as_bytes(), co.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.coord(1), Point::new(30, 40));
    }

    #[test]
    fn rejects_malformed_input() {
        let err = read_gr("a 1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let err = read_gr("p sp 2 1\na 1 9 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));

        let err = read_gr("p sp x y\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));

        let err = read_co("v 5 1 1\n".as_bytes(), 2).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn drops_self_loops_and_islands() {
        // Vertex 3 is an isolated island; arc 1->1 is a self-loop.
        let gr = "p sp 3 3\na 1 1 5\na 1 2 4\na 2 1 4\n";
        let co = "v 1 0 0\nv 2 1 0\nv 3 9 9\n";
        let g = read(gr.as_bytes(), co.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}
