//! Validated construction of [`RoadNetwork`]s from edge lists.

use crate::csr::RoadNetwork;
use crate::error::GraphError;
use crate::geo::Point;
use crate::types::{NodeId, Weight};
use crate::unionfind::UnionFind;

/// Builds a [`RoadNetwork`] incrementally.
///
/// The builder accepts an arbitrary multiset of undirected edges and, at
/// [`GraphBuilder::build`] time, enforces the paper's problem definition
/// (§2): the graph must be non-empty and connected, with no self-loops.
/// Parallel edges are collapsed to the lightest one (a multigraph never
/// changes any shortest-path answer, and all five techniques assume simple
/// graphs).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    coords: Vec<Point>,
    /// Undirected edges as (min_endpoint, max_endpoint, weight).
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Creates a builder pre-sized for `nodes` vertices and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            coords: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex at `p` and returns its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = self.coords.len() as NodeId;
        self.coords.push(p);
        id
    }

    /// Adds the undirected edge {u, v} with weight `w`.
    ///
    /// Ids are validated at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Number of vertices added so far.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of edge records added so far (before dedup).
    pub fn num_edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Validates and freezes into a [`RoadNetwork`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if no vertex was added.
    /// * [`GraphError::UnknownNode`] / [`GraphError::SelfLoop`] on malformed
    ///   edges.
    /// * [`GraphError::Disconnected`] if the graph has several components
    ///   (use [`GraphBuilder::build_largest_component`] to recover).
    pub fn build(self) -> Result<RoadNetwork, GraphError> {
        let (net, dropped) = self.build_inner(false)?;
        debug_assert_eq!(dropped, 0);
        Ok(net)
    }

    /// Like [`GraphBuilder::build`], but if the graph is disconnected,
    /// restricts it to its largest connected component, relabelling vertex
    /// ids compactly. Returns the network and the number of *dropped*
    /// vertices. Real DIMACS extracts occasionally contain stray islands;
    /// the paper's datasets are connected by construction.
    pub fn build_largest_component(self) -> Result<(RoadNetwork, usize), GraphError> {
        self.build_inner(true)
    }

    fn build_inner(self, restrict: bool) -> Result<(RoadNetwork, usize), GraphError> {
        let n = self.coords.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if n >= u32::MAX as usize / 2 || self.edges.len() >= u32::MAX as usize / 2 {
            return Err(GraphError::TooLarge);
        }
        let n32 = n as NodeId;
        for &(u, v, _) in &self.edges {
            if u >= n32 {
                return Err(GraphError::UnknownNode(u));
            }
            if v >= n32 {
                return Err(GraphError::UnknownNode(v));
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
        }

        // Connectivity.
        let mut uf = UnionFind::new(n);
        for &(u, v, _) in &self.edges {
            uf.union(u, v);
        }
        let (keep, dropped): (Option<Vec<NodeId>>, usize) = if uf.num_components() == 1 {
            (None, 0)
        } else if !restrict {
            return Err(GraphError::Disconnected {
                components: uf.num_components(),
            });
        } else {
            // Map old id -> new id within the largest component.
            let mut best_root = 0u32;
            let mut best_size = 0usize;
            for v in 0..n32 {
                let s = uf.component_size(v);
                if s > best_size {
                    best_size = s;
                    best_root = uf.find(v);
                }
            }
            let mut remap = vec![u32::MAX; n];
            let mut next = 0u32;
            for v in 0..n32 {
                if uf.find(v) == best_root {
                    remap[v as usize] = next;
                    next += 1;
                }
            }
            (Some(remap), n - best_size)
        };

        // Collect (possibly remapped) simple edges, lightest weight wins.
        let mut edges: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            let (u, v) = match &keep {
                None => (u, v),
                Some(remap) => {
                    let (ru, rv) = (remap[u as usize], remap[v as usize]);
                    if ru == u32::MAX || rv == u32::MAX {
                        continue;
                    }
                    (ru, rv)
                }
            };
            edges.push((u, v, w));
        }
        edges.sort_unstable();
        edges.dedup_by(|next, prev| {
            // `prev` is kept; keep the lighter weight for parallel edges.
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let coords: Vec<Point> = match &keep {
            None => self.coords,
            Some(remap) => {
                let mut c = vec![Point::default(); n - dropped];
                for (old, &new) in remap.iter().enumerate() {
                    if new != u32::MAX {
                        c[new as usize] = self.coords[old];
                    }
                }
                c
            }
        };
        let n = coords.len();

        // CSR assembly: count degrees, prefix-sum, scatter both directions.
        let mut first_out = vec![0u32; n + 1];
        for &(u, v, _) in &edges {
            first_out[u as usize + 1] += 1;
            first_out[v as usize + 1] += 1;
        }
        for i in 0..n {
            first_out[i + 1] += first_out[i];
        }
        let arcs = *first_out.last().unwrap() as usize;
        let mut head = vec![0 as NodeId; arcs];
        let mut weight = vec![0 as Weight; arcs];
        let mut cursor = first_out.clone();
        for &(u, v, w) in &edges {
            let cu = cursor[u as usize] as usize;
            head[cu] = v;
            weight[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            head[cv] = u;
            weight[cv] = w;
            cursor[v as usize] += 1;
        }

        Ok((
            RoadNetwork::from_parts(
                first_out.into_boxed_slice(),
                head.into_boxed_slice(),
                weight.into_boxed_slice(),
                coords.into_boxed_slice(),
            ),
            dropped,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i32, y: i32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn rejects_unknown_node_and_self_loop() {
        let mut b = GraphBuilder::new();
        b.add_node(p(0, 0));
        b.add_edge(0, 5, 1);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownNode(5));

        let mut b = GraphBuilder::new();
        b.add_node(p(0, 0));
        b.add_edge(0, 0, 1);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(0));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(p(i, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::Disconnected { components: 2 }
        );
    }

    #[test]
    fn largest_component_extraction_relabels() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(p(i, 0));
        }
        // Component {0,1} and component {2,3,4}.
        b.add_edge(0, 1, 9);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 2);
        let (g, dropped) = b.build_largest_component().unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        // Old node 2 had coordinate (2, 0) and becomes new node 0.
        assert_eq!(g.coord(0), p(2, 0));
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 2), Some(2));
    }

    #[test]
    fn parallel_edges_keep_lightest() {
        let mut b = GraphBuilder::new();
        b.add_node(p(0, 0));
        b.add_node(p(1, 0));
        b.add_edge(0, 1, 5);
        b.add_edge(1, 0, 3);
        b.add_edge(0, 1, 9);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn single_vertex_graph_is_valid() {
        let mut b = GraphBuilder::new();
        b.add_node(p(0, 0));
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn csr_adjacency_is_complete_and_symmetric() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(p(i, i));
        }
        let edges = [
            (0u32, 1u32, 2u32),
            (1, 2, 3),
            (2, 3, 4),
            (3, 4, 5),
            (4, 5, 6),
            (0, 5, 7),
            (1, 4, 8),
        ];
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        let g = b.build().unwrap();
        for (u, v, w) in edges {
            assert_eq!(g.edge_weight(u, v), Some(w));
            assert_eq!(g.edge_weight(v, u), Some(w));
        }
        let deg_sum: usize = (0..6).map(|v| g.degree(v)).sum();
        assert_eq!(deg_sum, 2 * edges.len());
    }
}
