//! Uniform grids over the plane and over a network's vertex set.
//!
//! Both TNR (§3.3) and the paper's query generator (§4.2) start by
//! "imposing a g×g grid on the road network": the bounding rectangle is
//! split into `g × g` cells of equal side length. [`GridFrame`] performs
//! the coordinate↔cell mapping; [`VertexGrid`] additionally buckets the
//! vertices by cell for O(1) cell-membership queries and fast spatial
//! range enumeration.

use crate::csr::RoadNetwork;
use crate::geo::{Point, Rect};
use crate::size::IndexSize;
use crate::types::NodeId;

/// Cell coordinates within a grid, column `cx` and row `cy` in `0..g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Column index.
    pub cx: u32,
    /// Row index.
    pub cy: u32,
}

impl Cell {
    /// Chebyshev (L∞) distance between two cells, the quantity TNR's
    /// locality filter tests (a 5×5 inner shell means "Chebyshev ≤ 2",
    /// a 9×9 outer shell "Chebyshev ≤ 4").
    #[inline]
    pub fn chebyshev(&self, other: &Cell) -> u32 {
        let dx = self.cx.abs_diff(other.cx);
        let dy = self.cy.abs_diff(other.cy);
        dx.max(dy)
    }
}

/// The geometry of a `g × g` grid over a bounding rectangle.
#[derive(Debug, Clone)]
pub struct GridFrame {
    rect: Rect,
    g: u32,
    /// Cell side along x and y, in coordinate units (ceil division so the
    /// whole rectangle is covered).
    side_x: u64,
    side_y: u64,
}

impl GridFrame {
    /// Creates a `g × g` frame over `rect`. Panics if `g == 0`.
    pub fn new(rect: Rect, g: u32) -> Self {
        assert!(g > 0, "grid must have at least one cell");
        let side_x = rect.width().div_ceil(g as u64).max(1);
        let side_y = rect.height().div_ceil(g as u64).max(1);
        GridFrame {
            rect,
            g,
            side_x,
            side_y,
        }
    }

    /// Grid resolution `g`.
    #[inline]
    pub fn g(&self) -> u32 {
        self.g
    }

    /// Cell side length along x, in coordinate units.
    #[inline]
    pub fn side_x(&self) -> u64 {
        self.side_x
    }

    /// Cell side length along y.
    #[inline]
    pub fn side_y(&self) -> u64 {
        self.side_y
    }

    /// The larger of the two side lengths; the paper's query generator
    /// uses "the side length l of each grid cell" as its L∞ unit.
    #[inline]
    pub fn side(&self) -> u64 {
        self.side_x.max(self.side_y)
    }

    /// Cell containing `p`. Points outside the rectangle are clamped to
    /// the border cells (robustness for callers mixing frames).
    pub fn cell_of(&self, p: Point) -> Cell {
        let dx = (p.x as i64 - self.rect.min_x as i64).max(0) as u64;
        let dy = (p.y as i64 - self.rect.min_y as i64).max(0) as u64;
        Cell {
            cx: ((dx / self.side_x) as u32).min(self.g - 1),
            cy: ((dy / self.side_y) as u32).min(self.g - 1),
        }
    }

    /// Linear index of `cell` in row-major order.
    #[inline]
    pub fn cell_index(&self, cell: Cell) -> u32 {
        cell.cy * self.g + cell.cx
    }

    /// Inverse of [`GridFrame::cell_index`].
    #[inline]
    pub fn cell_at(&self, index: u32) -> Cell {
        Cell {
            cx: index % self.g,
            cy: index / self.g,
        }
    }

    /// Total number of cells, `g * g`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        (self.g as usize) * (self.g as usize)
    }

    /// Coordinate rectangle spanned by cells within Chebyshev distance
    /// `radius` of `cell` (the "k×k square centred at C" of §3.3: radius 2
    /// gives the 5×5 square, radius 4 the 9×9 square). The rectangle is
    /// clipped to the frame.
    pub fn square_around(&self, cell: Cell, radius: u32) -> Rect {
        let lo_cx = cell.cx.saturating_sub(radius) as u64;
        let lo_cy = cell.cy.saturating_sub(radius) as u64;
        let hi_cx = (cell.cx + radius).min(self.g - 1) as u64;
        let hi_cy = (cell.cy + radius).min(self.g - 1) as u64;
        let min_x = self.rect.min_x as i64 + (lo_cx * self.side_x) as i64;
        let min_y = self.rect.min_y as i64 + (lo_cy * self.side_y) as i64;
        let max_x = self.rect.min_x as i64 + ((hi_cx + 1) * self.side_x) as i64 - 1;
        let max_y = self.rect.min_y as i64 + ((hi_cy + 1) * self.side_y) as i64 - 1;
        Rect {
            min_x: min_x.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
            min_y: min_y.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
            max_x: max_x.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
            max_y: max_y.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
        }
    }
}

/// Vertices of a road network bucketed by grid cell.
#[derive(Debug, Clone)]
pub struct VertexGrid {
    frame: GridFrame,
    /// Cell of each vertex (by linear index).
    cell_of_vertex: Box<[u32]>,
    /// CSR buckets: `members[first[c] .. first[c + 1]]` are the vertices
    /// in cell `c`.
    first: Box<[u32]>,
    members: Box<[NodeId]>,
}

impl VertexGrid {
    /// Buckets the vertices of `net` on a `g × g` grid over its bounding
    /// rectangle.
    pub fn build(net: &RoadNetwork, g: u32) -> Self {
        Self::build_in(net, GridFrame::new(net.bounding_rect(), g))
    }

    /// Buckets over an explicit frame (used when several structures must
    /// share one frame).
    pub fn build_in(net: &RoadNetwork, frame: GridFrame) -> Self {
        let n = net.num_nodes();
        let num_cells = frame.num_cells();
        let mut cell_of_vertex = vec![0u32; n];
        let mut counts = vec![0u32; num_cells + 1];
        for (v, slot) in cell_of_vertex.iter_mut().enumerate() {
            let c = frame.cell_index(frame.cell_of(net.coord(v as NodeId)));
            *slot = c;
            counts[c as usize + 1] += 1;
        }
        for i in 0..num_cells {
            counts[i + 1] += counts[i];
        }
        let mut members = vec![0 as NodeId; n];
        let mut cursor = counts.clone();
        for (v, &c) in cell_of_vertex.iter().enumerate() {
            members[cursor[c as usize] as usize] = v as NodeId;
            cursor[c as usize] += 1;
        }
        VertexGrid {
            frame,
            cell_of_vertex: cell_of_vertex.into_boxed_slice(),
            first: counts.into_boxed_slice(),
            members: members.into_boxed_slice(),
        }
    }

    /// The underlying frame.
    #[inline]
    pub fn frame(&self) -> &GridFrame {
        &self.frame
    }

    /// Cell containing vertex `v`.
    #[inline]
    pub fn cell_of(&self, v: NodeId) -> Cell {
        self.frame.cell_at(self.cell_of_vertex[v as usize])
    }

    /// Linear cell index of vertex `v`.
    #[inline]
    pub fn cell_index_of(&self, v: NodeId) -> u32 {
        self.cell_of_vertex[v as usize]
    }

    /// Vertices inside the cell with linear index `c`.
    #[inline]
    pub fn vertices_in(&self, c: u32) -> &[NodeId] {
        &self.members[self.first[c as usize] as usize..self.first[c as usize + 1] as usize]
    }

    /// Iterates the linear indices of non-empty cells.
    pub fn nonempty_cells(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.frame.num_cells() as u32).filter(|&c| !self.vertices_in(c).is_empty())
    }

    /// Iterates all vertices whose cells lie within Chebyshev distance
    /// `radius` of `center`.
    pub fn vertices_within<'a>(
        &'a self,
        center: Cell,
        radius: u32,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let g = self.frame.g();
        let lo_cx = center.cx.saturating_sub(radius);
        let lo_cy = center.cy.saturating_sub(radius);
        let hi_cx = (center.cx + radius).min(g - 1);
        let hi_cy = (center.cy + radius).min(g - 1);
        (lo_cy..=hi_cy).flat_map(move |cy| {
            (lo_cx..=hi_cx).flat_map(move |cx| {
                self.vertices_in(self.frame.cell_index(Cell { cx, cy }))
                    .iter()
                    .copied()
            })
        })
    }
}

impl IndexSize for VertexGrid {
    fn index_size_bytes(&self) -> usize {
        self.cell_of_vertex.len() * 4 + self.first.len() * 4 + self.members.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::figure1;

    #[test]
    fn cells_partition_all_vertices() {
        let g = figure1();
        let grid = VertexGrid::build(&g, 4);
        let total: usize = (0..grid.frame().num_cells() as u32)
            .map(|c| grid.vertices_in(c).len())
            .sum();
        assert_eq!(total, g.num_nodes());
        for v in 0..g.num_nodes() as u32 {
            let c = grid.cell_index_of(v);
            assert!(grid.vertices_in(c).contains(&v));
        }
    }

    #[test]
    fn cell_of_respects_frame() {
        let rect = Rect::new(Point::new(0, 0), Point::new(99, 99));
        let frame = GridFrame::new(rect, 10);
        assert_eq!(frame.side_x(), 10);
        assert_eq!(frame.cell_of(Point::new(0, 0)), Cell { cx: 0, cy: 0 });
        assert_eq!(frame.cell_of(Point::new(99, 99)), Cell { cx: 9, cy: 9 });
        assert_eq!(frame.cell_of(Point::new(25, 73)), Cell { cx: 2, cy: 7 });
        // Outside points are clamped, not wrapped.
        assert_eq!(frame.cell_of(Point::new(-5, 1000)), Cell { cx: 0, cy: 9 });
    }

    #[test]
    fn cell_index_roundtrip() {
        let frame = GridFrame::new(Rect::new(Point::new(0, 0), Point::new(7, 7)), 8);
        for idx in 0..frame.num_cells() as u32 {
            assert_eq!(frame.cell_index(frame.cell_at(idx)), idx);
        }
    }

    #[test]
    fn chebyshev_distance() {
        let a = Cell { cx: 3, cy: 4 };
        assert_eq!(a.chebyshev(&Cell { cx: 3, cy: 4 }), 0);
        assert_eq!(a.chebyshev(&Cell { cx: 0, cy: 4 }), 3);
        assert_eq!(a.chebyshev(&Cell { cx: 5, cy: 9 }), 5);
    }

    #[test]
    fn square_around_matches_shell_geometry() {
        let frame = GridFrame::new(Rect::new(Point::new(0, 0), Point::new(99, 99)), 10);
        // Radius 2 around cell (5,5): cells 3..=7, coords 30..=79.
        let sq = frame.square_around(Cell { cx: 5, cy: 5 }, 2);
        assert_eq!(
            sq,
            Rect {
                min_x: 30,
                min_y: 30,
                max_x: 79,
                max_y: 79
            }
        );
        // Clipped at the border.
        let sq = frame.square_around(Cell { cx: 0, cy: 9 }, 4);
        assert_eq!(sq.min_x, 0);
        assert_eq!(sq.max_y, 99);
    }

    #[test]
    fn vertices_within_enumerates_neighbourhood() {
        let g = figure1();
        let grid = VertexGrid::build(&g, 4);
        // Radius covering the whole frame returns every vertex.
        let all = grid.vertices_within(Cell { cx: 2, cy: 2 }, 4).count();
        assert_eq!(all, g.num_nodes());
    }

    #[test]
    fn degenerate_rect_single_cell() {
        // All vertices at one point: grid must not divide by zero.
        let rect = Rect::new(Point::new(5, 5), Point::new(5, 5));
        let frame = GridFrame::new(rect, 16);
        let c = frame.cell_of(Point::new(5, 5));
        assert_eq!(c, Cell { cx: 0, cy: 0 });
    }
}
