//! Proptest strategies for random road networks (behind the
//! `arbitrary` feature).
//!
//! Every technique crate's property tests exercise the same contract —
//! "exact on arbitrary connected, positively-weighted, degree-bounded
//! graphs" — so the graph strategy lives here once. Connectivity comes
//! from a random spanning arborescence (vertex `i` links to a random
//! earlier vertex), which is also how real road extracts stay connected.

use proptest::prelude::*;

use crate::builder::GraphBuilder;
use crate::csr::RoadNetwork;
use crate::geo::Point;

/// Parameters of [`connected_network`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkStrategyParams {
    /// Minimum vertex count (≥ 2).
    pub min_nodes: usize,
    /// Maximum vertex count.
    pub max_nodes: usize,
    /// Maximum extra (non-spine) edges as a multiple of n.
    pub extra_edge_factor: usize,
    /// Maximum edge weight (weights are 1..=max_weight).
    pub max_weight: u32,
    /// Coordinate range: points land in `[-span, span]²`.
    pub span: i32,
}

impl Default for NetworkStrategyParams {
    fn default() -> Self {
        NetworkStrategyParams {
            min_nodes: 2,
            max_nodes: 40,
            extra_edge_factor: 2,
            max_weight: 1000,
            span: 1000,
        }
    }
}

/// A connected random network with planar-ish coordinates.
pub fn connected_network(params: NetworkStrategyParams) -> impl Strategy<Value = RoadNetwork> {
    (params.min_nodes.max(2)..=params.max_nodes).prop_flat_map(move |n| {
        let coords =
            proptest::collection::vec((-params.span..=params.span, -params.span..=params.span), n);
        let spine = proptest::collection::vec((0u32..u32::MAX, 1u32..=params.max_weight), n - 1);
        let extra = proptest::collection::vec(
            (0u32..n as u32, 0u32..n as u32, 1u32..=params.max_weight),
            0..=params.extra_edge_factor * n,
        );
        (coords, spine, extra).prop_map(move |(coords, spine, extra)| {
            let mut b = GraphBuilder::with_capacity(coords.len(), spine.len() + extra.len());
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y));
            }
            for (i, (r, w)) in spine.iter().enumerate() {
                let child = (i + 1) as u32;
                b.add_edge(r % child, child, *w);
            }
            for (u, v, w) in extra {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build().expect("spine guarantees connectivity")
        })
    })
}

/// The default strategy: 2..=40 vertices.
pub fn small_connected_network() -> impl Strategy<Value = RoadNetwork> {
    connected_network(NetworkStrategyParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn strategy_yields_valid_networks(net in small_connected_network()) {
            prop_assert!(net.num_nodes() >= 2);
            // Connected: reachable count from 0 equals n (simple BFS).
            let mut seen = vec![false; net.num_nodes()];
            let mut stack = vec![0u32];
            seen[0] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                for (u, w) in net.neighbors(v) {
                    prop_assert!(w >= 1);
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        count += 1;
                        stack.push(u);
                    }
                }
            }
            prop_assert_eq!(count, net.num_nodes());
        }
    }
}
