//! Road-network graph substrate shared by every shortest-path technique in
//! the `spq` workspace.
//!
//! This crate deliberately contains no algorithmic policy: it provides the
//! data structures that Wu et al. (PVLDB 2012) describe as the "common
//! subroutines" underneath the five evaluated techniques:
//!
//! * [`RoadNetwork`] — an undirected, degree-bounded, connected graph in
//!   compressed-sparse-row form with per-vertex planar coordinates
//!   (paper §2 and Appendix D).
//! * [`GraphBuilder`] — validated construction from edge lists.
//! * [`geo`] — planar geometry: points, rectangles, the L∞ metric used by
//!   the paper's query generator, and Morton (Z-order) codes used by SILC's
//!   quadtree compression.
//! * [`grid`] — uniform grids over the vertex set (TNR's index structure
//!   and the query generator both impose one).
//! * [`heap`] — an indexed binary heap with `decrease-key`, the priority
//!   queue behind every Dijkstra variant in the workspace.
//! * [`par`] — chunked, deterministic work-parallelism for the
//!   per-vertex preprocessing loops of every index crate
//!   (`SPQ_THREADS` / [`par::with_threads`] control the worker count).
//! * [`dimacs`] — reader/writer for the 9th DIMACS Implementation Challenge
//!   format, so the real datasets of the paper's Table 1 can be plugged in.
//! * [`backend`] — the object-safe [`Backend`]/[`Session`] traits that let
//!   the query-serving subsystem (`spq-serve`) hold any mix of indexes
//!   behind one interface with per-thread reusable workspaces.
//!
//! # Example
//!
//! ```
//! use spq_graph::{GraphBuilder, geo::Point};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(Point::new(0, 0));
//! let c = b.add_node(Point::new(100, 0));
//! b.add_edge(a, c, 7);
//! let g = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 2);
//! assert_eq!(g.degree(a), 1);
//! ```

#[cfg(feature = "arbitrary")]
pub mod arbitrary;
pub mod atomic_io;
pub mod backend;
pub mod binio;
pub mod builder;
pub mod csr;
pub mod dimacs;
pub mod error;
pub mod geo;
pub mod grid;
pub mod heap;
pub mod par;
pub mod persist;
pub mod sample;
pub mod size;
pub mod toy;
pub mod types;
pub mod unionfind;

pub use backend::{Backend, QueryBudget, Session};
pub use builder::GraphBuilder;
pub use csr::RoadNetwork;
pub use error::GraphError;
pub use size::IndexSize;
pub use types::{Dist, EdgeId, NodeId, Weight, INFINITY};
