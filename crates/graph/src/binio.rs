//! A minimal framed little-endian binary format for persisting indexes.
//!
//! Preprocessing the paper's largest datasets takes minutes to hours; a
//! production deployment computes an index once and ships it. This
//! module provides the primitives (magic/version header, length-prefixed
//! integer slices) that [`crate::persist`] and `spq-ch` build their
//! on-disk formats from.

use std::io::{self, Read, Write};

/// Writes the 8-byte header: 4 magic bytes + u32 version.
pub fn write_header(w: &mut impl Write, magic: &[u8; 4], version: u32) -> io::Result<()> {
    w.write_all(magic)?;
    w.write_all(&version.to_le_bytes())
}

/// Reads and validates the header, returning the version.
pub fn read_header(r: &mut impl Read, magic: &[u8; 4]) -> io::Result<u32> {
    let mut got = [0u8; 4];
    r.read_exact(&mut got)?;
    if &got != magic {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic: expected {magic:?}, got {got:?}"),
        ));
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    Ok(u32::from_le_bytes(v))
}

/// Writes one u64 value.
pub fn write_u64(w: &mut impl Write, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Reads one u64 value.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a length-prefixed `u32` slice.
pub fn write_u32s(w: &mut impl Write, xs: &[u32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a length-prefixed `u32` vector, rejecting absurd lengths.
pub fn read_u32s(r: &mut impl Read) -> io::Result<Vec<u32>> {
    let len = read_u64(r)?;
    if len > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(u32::from_le_bytes(b));
    }
    Ok(out)
}

/// Writes a length-prefixed `u64` slice.
pub fn write_u64s(w: &mut impl Write, xs: &[u64]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a length-prefixed `u64` vector, rejecting absurd lengths.
pub fn read_u64s(r: &mut impl Read) -> io::Result<Vec<u64>> {
    let len = read_u64(r)?;
    if len > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut b = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(u64::from_le_bytes(b));
    }
    Ok(out)
}

/// Writes a length-prefixed byte slice.
pub fn write_u8s(w: &mut impl Write, xs: &[u8]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    w.write_all(xs)
}

/// Reads a length-prefixed byte vector, rejecting absurd lengths.
pub fn read_u8s(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u64(r)?;
    if len > (1 << 36) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = vec![0u8; len as usize];
    r.read_exact(&mut out)?;
    Ok(out)
}

/// Writes a length-prefixed `i32` slice.
pub fn write_i32s(w: &mut impl Write, xs: &[i32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a length-prefixed `i32` vector.
pub fn read_i32s(r: &mut impl Read) -> io::Result<Vec<i32>> {
    let len = read_u64(r)?;
    if len > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(i32::from_le_bytes(b));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_mismatch() {
        let mut buf = Vec::new();
        write_header(&mut buf, b"SPQG", 3).unwrap();
        assert_eq!(read_header(&mut &buf[..], b"SPQG").unwrap(), 3);
        assert!(read_header(&mut &buf[..], b"XXXX").is_err());
    }

    #[test]
    fn slice_roundtrips() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, &[1, 2, u32::MAX]).unwrap();
        write_i32s(&mut buf, &[-5, 0, i32::MAX]).unwrap();
        write_u64(&mut buf, 42).unwrap();
        write_u64s(&mut buf, &[7, u64::MAX]).unwrap();
        write_u8s(&mut buf, &[0, 9, 255]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_u32s(&mut r).unwrap(), vec![1, 2, u32::MAX]);
        assert_eq!(read_i32s(&mut r).unwrap(), vec![-5, 0, i32::MAX]);
        assert_eq!(read_u64(&mut r).unwrap(), 42);
        assert_eq!(read_u64s(&mut r).unwrap(), vec![7, u64::MAX]);
        assert_eq!(read_u8s(&mut r).unwrap(), vec![0, 9, 255]);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, &[1, 2, 3]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_u32s(&mut &buf[..]).is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(read_u32s(&mut &buf[..]).is_err());
    }
}
