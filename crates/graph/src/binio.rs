//! A minimal framed little-endian binary format for persisting indexes.
//!
//! Preprocessing the paper's largest datasets takes minutes to hours; a
//! production deployment computes an index once and ships it. This
//! module provides the primitives (magic/version header, length-prefixed
//! integer slices) that [`crate::persist`] and `spq-ch` build their
//! on-disk formats from.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

// ---------------------------------------------------------------------------
// XXH64 — hand-rolled (the workspace vendors no hashing crate). This is
// the reference 64-bit xxHash algorithm; it exists so index files carry
// a fast integrity checksum, not for cryptographic purposes.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xx_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn xx_merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ xx_round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// One-shot XXH64 of `data` with the given seed.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h: u64;
    if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = xx_round(v1, read_le_u64(&rest[0..]));
            v2 = xx_round(v2, read_le_u64(&rest[8..]));
            v3 = xx_round(v3, read_le_u64(&rest[16..]));
            v4 = xx_round(v4, read_le_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xx_merge_round(h, v1);
        h = xx_merge_round(h, v2);
        h = xx_merge_round(h, v3);
        h = xx_merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h ^= xx_round(0, read_le_u64(rest));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let w = u32::from_le_bytes(rest[..4].try_into().unwrap()) as u64;
        h ^= w.wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

// ---------------------------------------------------------------------------
// Typed load errors + the checksummed container.

/// Why loading a persisted index failed. Callers that fall back to
/// rebuilding (the serving engine's degradation chain) match on this to
/// distinguish "wrong file" from "damaged file" from "old file".
#[derive(Debug)]
pub enum IndexLoadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file does not start with this format's magic bytes.
    BadMagic { expected: [u8; 4], got: [u8; 4] },
    /// The file predates the checksummed container (format version 1).
    /// Such files carry no integrity information and are refused rather
    /// than risk misreading them; rebuild the index to migrate.
    LegacyVersion { found: u32, supported: u32 },
    /// The file claims a format version newer than this build supports.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ends before the declared body length.
    Truncated { expected: u64, got: u64 },
    /// The body bytes do not hash to the stored checksum.
    ChecksumMismatch { expected: u64, got: u64 },
    /// The checksum matched but the decoded structure is inconsistent
    /// (impossible with an honest writer; indicates a forged or buggy
    /// producer).
    Corrupt(String),
}

impl fmt::Display for IndexLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexLoadError::Io(e) => write!(f, "i/o error: {e}"),
            IndexLoadError::BadMagic { expected, got } => write!(
                f,
                "bad magic: expected {:?}, got {:?} — not a {} index file",
                expected,
                got,
                String::from_utf8_lossy(expected)
            ),
            IndexLoadError::LegacyVersion { found, supported } => write!(
                f,
                "legacy format version {found} (this build reads version {supported}): \
                 pre-checksum files carry no integrity data and are refused — \
                 rebuild the index to migrate"
            ),
            IndexLoadError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads version {supported})"
            ),
            IndexLoadError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated: body declares {expected} bytes, only {got} present"
                )
            }
            IndexLoadError::ChecksumMismatch { expected, got } => write!(
                f,
                "checksum mismatch: stored {expected:#018x}, computed {got:#018x} — \
                 the file is corrupted"
            ),
            IndexLoadError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl Error for IndexLoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IndexLoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IndexLoadError {
    fn from(e: io::Error) -> Self {
        IndexLoadError::Io(e)
    }
}

/// Hard cap on a container body: no index in this workspace comes close
/// to 128 GiB, so a larger declared length is a corrupt header, not a
/// big file.
const MAX_BODY_LEN: u64 = 1 << 37;

/// Writes a checksummed container:
/// `magic(4) · version(4, LE) · body_len(8, LE) · xxh64(body)(8, LE) · body`.
///
/// The body is serialised up front by the caller so the checksum covers
/// every byte that will be parsed at load time.
pub fn write_checksummed(
    w: &mut impl Write,
    magic: &[u8; 4],
    version: u32,
    body: &[u8],
) -> io::Result<()> {
    write_header(w, magic, version)?;
    write_u64(w, body.len() as u64)?;
    write_u64(w, xxhash64(body, version as u64))?;
    w.write_all(body)
}

/// Reads and fully validates a checksummed container, returning the
/// verified body. Rejects wrong magic, legacy (version 1) files, future
/// versions, truncation, and checksum mismatches — each as its own
/// [`IndexLoadError`] variant so callers can log a precise reason
/// before degrading.
pub fn read_checksummed(
    r: &mut impl Read,
    magic: &[u8; 4],
    version: u32,
) -> Result<Vec<u8>, IndexLoadError> {
    read_checksummed_versioned(r, magic, version, version).map(|(_, body)| body)
}

/// Like [`read_checksummed`] but accepting any version in
/// `min_version..=max_version`, returning the version found alongside the
/// verified body. This is the migration entry point: an index format that
/// bumps its version keeps loading the previous on-disk layout by
/// widening the accepted range and branching on the returned version.
/// The checksum is seeded with the *found* version, matching what
/// [`write_checksummed`] stored when that file was written.
pub fn read_checksummed_versioned(
    r: &mut impl Read,
    magic: &[u8; 4],
    min_version: u32,
    max_version: u32,
) -> Result<(u32, Vec<u8>), IndexLoadError> {
    let mut got_magic = [0u8; 4];
    r.read_exact(&mut got_magic)?;
    if &got_magic != magic {
        return Err(IndexLoadError::BadMagic {
            expected: *magic,
            got: got_magic,
        });
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    let found = u32::from_le_bytes(v);
    if found < min_version {
        return Err(IndexLoadError::LegacyVersion {
            found,
            supported: min_version,
        });
    }
    if found > max_version {
        return Err(IndexLoadError::UnsupportedVersion {
            found,
            supported: max_version,
        });
    }
    let body_len = read_u64(r)?;
    if body_len > MAX_BODY_LEN {
        return Err(IndexLoadError::Corrupt(format!(
            "implausible body length {body_len}"
        )));
    }
    let stored = read_u64(r)?;
    let mut body = vec![0u8; body_len as usize];
    let mut filled = 0usize;
    while filled < body.len() {
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(IndexLoadError::Truncated {
                    expected: body_len,
                    got: filled as u64,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(IndexLoadError::Io(e)),
        }
    }
    let computed = xxhash64(&body, found as u64);
    if computed != stored {
        return Err(IndexLoadError::ChecksumMismatch {
            expected: stored,
            got: computed,
        });
    }
    Ok((found, body))
}

/// Writes the 8-byte header: 4 magic bytes + u32 version.
pub fn write_header(w: &mut impl Write, magic: &[u8; 4], version: u32) -> io::Result<()> {
    w.write_all(magic)?;
    w.write_all(&version.to_le_bytes())
}

/// Reads and validates the header, returning the version.
pub fn read_header(r: &mut impl Read, magic: &[u8; 4]) -> io::Result<u32> {
    let mut got = [0u8; 4];
    r.read_exact(&mut got)?;
    if &got != magic {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic: expected {magic:?}, got {got:?}"),
        ));
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    Ok(u32::from_le_bytes(v))
}

/// Writes one u64 value.
pub fn write_u64(w: &mut impl Write, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Reads one u64 value.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a length-prefixed `u32` slice.
pub fn write_u32s(w: &mut impl Write, xs: &[u32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a length-prefixed `u32` vector, rejecting absurd lengths.
pub fn read_u32s(r: &mut impl Read) -> io::Result<Vec<u32>> {
    let len = read_u64(r)?;
    if len > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(u32::from_le_bytes(b));
    }
    Ok(out)
}

/// Writes a length-prefixed `u64` slice.
pub fn write_u64s(w: &mut impl Write, xs: &[u64]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a length-prefixed `u64` vector, rejecting absurd lengths.
pub fn read_u64s(r: &mut impl Read) -> io::Result<Vec<u64>> {
    let len = read_u64(r)?;
    if len > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut b = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(u64::from_le_bytes(b));
    }
    Ok(out)
}

/// Writes a length-prefixed byte slice.
pub fn write_u8s(w: &mut impl Write, xs: &[u8]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    w.write_all(xs)
}

/// Reads a length-prefixed byte vector, rejecting absurd lengths.
pub fn read_u8s(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u64(r)?;
    if len > (1 << 36) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = vec![0u8; len as usize];
    r.read_exact(&mut out)?;
    Ok(out)
}

/// Writes a length-prefixed `i32` slice.
pub fn write_i32s(w: &mut impl Write, xs: &[i32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a length-prefixed `i32` vector.
pub fn read_i32s(r: &mut impl Read) -> io::Result<Vec<i32>> {
    let len = read_u64(r)?;
    if len > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible slice length {len}"),
        ));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(i32::from_le_bytes(b));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xxhash64_matches_reference_vectors() {
        // Published XXH64 digests (xxHash reference implementation).
        assert_eq!(xxhash64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxhash64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxhash64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        // 39 bytes: exercises the 32-byte stripe loop + tail.
        assert_eq!(
            xxhash64(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn xxhash64_is_seed_and_content_sensitive() {
        let data: Vec<u8> = (0u32..1000).flat_map(|x| x.to_le_bytes()).collect();
        let h = xxhash64(&data, 0);
        assert_ne!(h, xxhash64(&data, 1), "seed must matter");
        let mut flipped = data.clone();
        flipped[1234] ^= 0x40;
        assert_ne!(h, xxhash64(&flipped, 0), "single bit flip must matter");
        assert_eq!(h, xxhash64(&data, 0), "hash must be deterministic");
    }

    #[test]
    fn checksummed_container_roundtrip() {
        let body: Vec<u8> = (0u8..=255).cycle().take(5000).collect();
        let mut buf = Vec::new();
        write_checksummed(&mut buf, b"SPQX", 2, &body).unwrap();
        let back = read_checksummed(&mut &buf[..], b"SPQX", 2).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn checksummed_container_rejects_every_tamper_mode() {
        let body = b"forty-two bytes of thoroughly honest body data".to_vec();
        let mut buf = Vec::new();
        write_checksummed(&mut buf, b"SPQX", 2, &body).unwrap();

        // Wrong magic.
        assert!(matches!(
            read_checksummed(&mut &buf[..], b"OTHR", 2),
            Err(IndexLoadError::BadMagic { .. })
        ));

        // Legacy version (files written before the container existed).
        let mut legacy = Vec::new();
        write_header(&mut legacy, b"SPQX", 1).unwrap();
        legacy.extend_from_slice(&body);
        assert!(matches!(
            read_checksummed(&mut &legacy[..], b"SPQX", 2),
            Err(IndexLoadError::LegacyVersion { found: 1, .. })
        ));

        // Future version.
        let mut future = buf.clone();
        future[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            read_checksummed(&mut &future[..], b"SPQX", 2),
            Err(IndexLoadError::UnsupportedVersion { found: 3, .. })
        ));

        // Truncation anywhere in the body.
        let mut short = buf.clone();
        short.truncate(buf.len() - 7);
        assert!(matches!(
            read_checksummed(&mut &short[..], b"SPQX", 2),
            Err(IndexLoadError::Truncated { .. })
        ));

        // Any single bit flip in the body.
        for byte in [24usize, buf.len() - 1] {
            let mut flipped = buf.clone();
            flipped[byte] ^= 0x01;
            assert!(matches!(
                read_checksummed(&mut &flipped[..], b"SPQX", 2),
                Err(IndexLoadError::ChecksumMismatch { .. })
            ));
        }

        // Implausible declared body length.
        let mut huge = buf.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_checksummed(&mut &huge[..], b"SPQX", 2),
            Err(IndexLoadError::Corrupt(_))
        ));

        // And the untampered original still reads fine.
        assert_eq!(read_checksummed(&mut &buf[..], b"SPQX", 2).unwrap(), body);
    }

    #[test]
    fn header_roundtrip_and_mismatch() {
        let mut buf = Vec::new();
        write_header(&mut buf, b"SPQG", 3).unwrap();
        assert_eq!(read_header(&mut &buf[..], b"SPQG").unwrap(), 3);
        assert!(read_header(&mut &buf[..], b"XXXX").is_err());
    }

    #[test]
    fn slice_roundtrips() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, &[1, 2, u32::MAX]).unwrap();
        write_i32s(&mut buf, &[-5, 0, i32::MAX]).unwrap();
        write_u64(&mut buf, 42).unwrap();
        write_u64s(&mut buf, &[7, u64::MAX]).unwrap();
        write_u8s(&mut buf, &[0, 9, 255]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_u32s(&mut r).unwrap(), vec![1, 2, u32::MAX]);
        assert_eq!(read_i32s(&mut r).unwrap(), vec![-5, 0, i32::MAX]);
        assert_eq!(read_u64(&mut r).unwrap(), 42);
        assert_eq!(read_u64s(&mut r).unwrap(), vec![7, u64::MAX]);
        assert_eq!(read_u8s(&mut r).unwrap(), vec![0, 9, 255]);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, &[1, 2, 3]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_u32s(&mut &buf[..]).is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(read_u32s(&mut &buf[..]).is_err());
    }
}
