//! The unified query-backend abstraction behind `spq-serve`.
//!
//! Every index crate answers the same two query kinds (paper §2) through
//! its own workspace type; this module is the object-safe common
//! denominator that lets a server hold *any* mix of indexes behind one
//! `Box<dyn Backend>` and give each worker thread its own reusable
//! [`Session`] so the per-query hot path stays allocation-free.
//!
//! The split mirrors the index/workspace split every technique crate
//! already has:
//!
//! * [`Backend`] — the immutable, shareable index (`Send + Sync`; one
//!   per process, referenced by every worker).
//! * [`Session`] — the mutable per-thread search state (heaps, stamp
//!   arrays, bucket scratch). Never shared, never re-created per query.
//!
//! Batched distance queries get a default implementation (a plain loop)
//! that indexes with a native many-to-many algorithm override — CH
//! routes dense batches to its bucket-based table computation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::csr::RoadNetwork;
use crate::types::{Dist, NodeId};

/// How often (in charge units) the budget re-checks its wall-clock
/// deadline and kill flag. Checking `Instant::now()` per settled node
/// would dominate small queries; every 1024 nodes is ≪ 1 ms of search
/// work on any technique in the workspace.
const POLL_MASK: u64 = 0x3ff;

/// A cooperative cancellation budget for one query.
///
/// Search loops call [`QueryBudget::charge`] once per unit of work
/// (conventionally: per settled/expanded node) and abandon the query
/// when it returns `false`. Three independent limits can trip it:
///
/// * a **node cap** — hard upper bound on charge units, so a query on a
///   corrupted or adversarial index terminates even if the clock never
///   advances;
/// * a **deadline** — wall-clock instant, polled every [`POLL_MASK`]+1
///   charges to keep the hot path free of syscalls;
/// * a **kill flag** — a shared [`AtomicBool`] a server can set to
///   abort all in-flight queries at once (forced shutdown).
///
/// The default budget is [`QueryBudget::unlimited`], whose `charge` is
/// an increment and one predictable branch — workspaces embed a budget
/// unconditionally and non-serving callers never notice it.
#[derive(Clone, Debug, Default)]
pub struct QueryBudget {
    node_cap: Option<u64>,
    deadline: Option<Instant>,
    kill: Option<Arc<AtomicBool>>,
    spent: u64,
    tripped: bool,
}

impl QueryBudget {
    /// A budget that never trips.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Caps the number of charge units (settled nodes).
    pub fn with_node_cap(mut self, cap: u64) -> Self {
        self.node_cap = Some(cap);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a shared kill flag; when another thread sets it, the
    /// next poll aborts the query.
    pub fn with_kill_flag(mut self, kill: Arc<AtomicBool>) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Restarts the budget for a fresh query, keeping its limits.
    pub fn reset(&mut self) {
        self.spent = 0;
        self.tripped = false;
    }

    /// Records one unit of work. Returns `false` once the budget is
    /// exhausted; the caller must then abandon the query.
    #[inline]
    pub fn charge(&mut self) -> bool {
        if self.tripped {
            return false;
        }
        self.spent += 1;
        if let Some(cap) = self.node_cap {
            if self.spent > cap {
                self.tripped = true;
                return false;
            }
        }
        if self.spent & POLL_MASK == 0 {
            return self.poll();
        }
        true
    }

    /// The slow-path check: deadline and kill flag.
    #[cold]
    fn poll(&mut self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.tripped = true;
                return false;
            }
        }
        if let Some(kill) = &self.kill {
            if kill.load(Ordering::Relaxed) {
                self.tripped = true;
                return false;
            }
        }
        true
    }

    /// Whether the budget has tripped (the last query was cut short).
    pub fn exhausted(&self) -> bool {
        self.tripped
    }

    /// Charge units consumed since the last [`QueryBudget::reset`].
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

/// A named point-of-interest set a kNN query runs against.
///
/// The server resolves the set name to its registered vertex list once
/// per request and hands both to the session: backends without a native
/// kNN index can answer from the vertex list alone (the default
/// implementation below), while bucket-based engines use the name to
/// find their precomputed per-vertex buckets for the same set.
#[derive(Debug, Clone, Copy)]
pub struct PoiRef<'a> {
    /// Registered name of the set.
    pub name: &'a str,
    /// The set's vertices (sorted, deduplicated).
    pub nodes: &'a [NodeId],
}

/// A preprocessed index that can answer queries over one road network.
///
/// Implementations live in the technique crates (the trait is defined
/// here so they can implement it for their local index types without
/// orphan-rule friction).
pub trait Backend: Send + Sync {
    /// Display name, matching the paper's figures ("CH", "TNR", ...).
    fn backend_name(&self) -> &'static str;

    /// Creates a per-thread query workspace over this index and the
    /// network it was built from. The session borrows both; workers keep
    /// one session per backend for their whole lifetime.
    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn Session + 'a>;
}

/// A reusable, single-threaded query workspace.
pub trait Session {
    /// The paper's *distance query*: length of the shortest s–t path,
    /// `None` when `t` is unreachable from `s`.
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist>;

    /// The paper's *shortest path query*: the distance plus the vertex
    /// sequence of one shortest path.
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)>;

    /// Batched distances: fills `out` with the row-major
    /// `sources × targets` table (entry `i * targets.len() + j` is
    /// `distance(sources[i], targets[j])`).
    ///
    /// The default runs the point-to-point query per pair; indexes with
    /// a native many-to-many algorithm (CH's bucket technique) override
    /// this, which is what makes dense batches cheaper than their
    /// point-to-point decomposition.
    fn distances(&mut self, sources: &[NodeId], targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        out.clear();
        out.reserve(sources.len() * targets.len());
        for &s in sources {
            for &t in targets {
                out.push(self.distance(s, t));
            }
        }
    }

    /// One-to-many distances: fills `out[j]` with
    /// `distance(s, targets[j])`.
    ///
    /// The default routes through the batched [`Session::distances`]
    /// (a 1×m table); engines with a dedicated one-to-many kernel —
    /// the PHAST-style rank sweep in `spq-many` — override this to beat
    /// the decomposition into point-to-point queries.
    fn one_to_many(&mut self, s: NodeId, targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        self.distances(&[s], targets, out);
    }

    /// k-nearest-neighbour query over a registered POI set: fills `out`
    /// with up to `k` `(poi_vertex, distance)` pairs, ascending by
    /// `(distance, vertex id)` — the deterministic total order every
    /// implementation must produce. Unreachable POIs never appear.
    ///
    /// The default brute-forces the whole set through
    /// [`Session::one_to_many`] and selects the k best; bucket-based
    /// engines override with one upward search plus bucket merges.
    fn knn(&mut self, s: NodeId, k: usize, poi: PoiRef<'_>, out: &mut Vec<(NodeId, Dist)>) {
        let mut row = Vec::with_capacity(poi.nodes.len());
        self.one_to_many(s, poi.nodes, &mut row);
        out.clear();
        out.extend(
            poi.nodes
                .iter()
                .zip(row.iter())
                .filter_map(|(&p, d)| d.map(|d| (p, d))),
        );
        out.sort_unstable_by_key(|&(p, d)| (d, p));
        out.truncate(k);
    }

    /// Network range query: fills `out` with every `(vertex, distance)`
    /// within `limit` of `s`, ascending by vertex id, and returns
    /// `true`. Returns `false` (leaving `out` untouched) when the
    /// backend has no way to enumerate the network — the server answers
    /// such backends with an error rather than a wrong result.
    fn range(&mut self, _s: NodeId, _limit: Dist, _out: &mut Vec<(NodeId, Dist)>) -> bool {
        false
    }

    /// Installs the budget the next queries run under. The default does
    /// nothing — a workspace that ignores budgets simply cannot be
    /// cancelled (and [`Session::interrupted`] stays `false`, so its
    /// `None` answers keep meaning "unreachable").
    fn set_budget(&mut self, _budget: QueryBudget) {}

    /// Whether the most recent query was cut short by its budget rather
    /// than answered. Servers use this to distinguish a genuine
    /// "unreachable" from a deadline abort — an interrupted `None` must
    /// never be cached or reported as a distance.
    fn interrupted(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::figure1;

    /// A trivial backend over the raw network (BFS-free: only immediate
    /// neighbours and self-loops) — just enough to exercise the default
    /// `distances` implementation and object safety.
    struct OneHop;

    struct OneHopSession<'a> {
        net: &'a RoadNetwork,
    }

    impl Backend for OneHop {
        fn backend_name(&self) -> &'static str {
            "OneHop"
        }
        fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
            Box::new(OneHopSession { net })
        }
    }

    impl Session for OneHopSession<'_> {
        fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
            if s == t {
                return Some(0);
            }
            self.net
                .neighbors(s)
                .filter(|&(u, _)| u == t)
                .map(|(_, w)| w as Dist)
                .min()
        }
        fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
            let d = self.distance(s, t)?;
            Some((d, if s == t { vec![s] } else { vec![s, t] }))
        }
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = QueryBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge());
        }
        assert!(!b.exhausted());
        assert_eq!(b.spent(), 10_000);
    }

    #[test]
    fn node_cap_trips_exactly_and_resets() {
        let mut b = QueryBudget::unlimited().with_node_cap(5);
        for _ in 0..5 {
            assert!(b.charge());
        }
        assert!(!b.charge(), "sixth unit must trip the cap");
        assert!(b.exhausted());
        assert!(!b.charge(), "a tripped budget stays tripped");
        b.reset();
        assert!(!b.exhausted());
        assert!(b.charge());
    }

    #[test]
    fn past_deadline_trips_at_next_poll() {
        let mut b = QueryBudget::unlimited().with_deadline(Instant::now());
        // The deadline is polled every POLL_MASK + 1 charges; an
        // already-expired deadline must trip within one poll window.
        let mut tripped = false;
        for _ in 0..=POLL_MASK {
            if !b.charge() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert!(b.exhausted());
    }

    #[test]
    fn kill_flag_aborts_from_another_thread() {
        let kill = Arc::new(AtomicBool::new(false));
        let mut b = QueryBudget::unlimited().with_kill_flag(kill.clone());
        for _ in 0..2048 {
            assert!(b.charge());
        }
        kill.store(true, Ordering::Relaxed);
        let mut tripped = false;
        for _ in 0..=POLL_MASK {
            if !b.charge() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn default_one_to_many_matches_singles() {
        let g = figure1();
        let backend: Box<dyn Backend> = Box::new(OneHop);
        let mut session = backend.session(&g);
        let targets = [0u32, 3, 5, 7];
        let mut out = Vec::new();
        session.one_to_many(7, &targets, &mut out);
        assert_eq!(out.len(), targets.len());
        for (j, &t) in targets.iter().enumerate() {
            assert_eq!(out[j], session.distance(7, t));
        }
    }

    #[test]
    fn default_knn_selects_k_nearest_deterministically() {
        let g = figure1();
        let backend: Box<dyn Backend> = Box::new(OneHop);
        let mut session = backend.session(&g);
        let nodes: Vec<NodeId> = (0..8).collect();
        let poi = PoiRef {
            name: "all",
            nodes: &nodes,
        };
        let mut out = Vec::new();
        session.knn(7, 3, poi, &mut out);
        // From v8, OneHop reaches itself (0), v1 (1), then v2 and v6 at
        // distance 2 — the tie must break toward the smaller id.
        assert_eq!(out, vec![(7, 0), (0, 1), (1, 2)]);
        // k larger than the reachable set returns only reachable POIs.
        session.knn(7, 100, poi, &mut out);
        assert!(out.len() < nodes.len());
        assert!(out.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn default_range_reports_unsupported() {
        let g = figure1();
        let backend: Box<dyn Backend> = Box::new(OneHop);
        let mut session = backend.session(&g);
        let mut out = vec![(9u32, 9u64)];
        assert!(!session.range(0, 100, &mut out));
        assert_eq!(out, vec![(9, 9)], "unsupported range must not touch out");
    }

    #[test]
    fn default_batch_matches_singles() {
        let g = figure1();
        let backend: Box<dyn Backend> = Box::new(OneHop);
        let mut session = backend.session(&g);
        let sources = [0u32, 1, 2];
        let targets = [0u32, 3, 5, 7];
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        assert_eq!(out.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(out[i * targets.len() + j], session.distance(s, t));
            }
        }
    }
}
