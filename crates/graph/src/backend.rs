//! The unified query-backend abstraction behind `spq-serve`.
//!
//! Every index crate answers the same two query kinds (paper §2) through
//! its own workspace type; this module is the object-safe common
//! denominator that lets a server hold *any* mix of indexes behind one
//! `Box<dyn Backend>` and give each worker thread its own reusable
//! [`Session`] so the per-query hot path stays allocation-free.
//!
//! The split mirrors the index/workspace split every technique crate
//! already has:
//!
//! * [`Backend`] — the immutable, shareable index (`Send + Sync`; one
//!   per process, referenced by every worker).
//! * [`Session`] — the mutable per-thread search state (heaps, stamp
//!   arrays, bucket scratch). Never shared, never re-created per query.
//!
//! Batched distance queries get a default implementation (a plain loop)
//! that indexes with a native many-to-many algorithm override — CH
//! routes dense batches to its bucket-based table computation.

use crate::csr::RoadNetwork;
use crate::types::{Dist, NodeId};

/// A preprocessed index that can answer queries over one road network.
///
/// Implementations live in the technique crates (the trait is defined
/// here so they can implement it for their local index types without
/// orphan-rule friction).
pub trait Backend: Send + Sync {
    /// Display name, matching the paper's figures ("CH", "TNR", ...).
    fn backend_name(&self) -> &'static str;

    /// Creates a per-thread query workspace over this index and the
    /// network it was built from. The session borrows both; workers keep
    /// one session per backend for their whole lifetime.
    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn Session + 'a>;
}

/// A reusable, single-threaded query workspace.
pub trait Session {
    /// The paper's *distance query*: length of the shortest s–t path,
    /// `None` when `t` is unreachable from `s`.
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist>;

    /// The paper's *shortest path query*: the distance plus the vertex
    /// sequence of one shortest path.
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)>;

    /// Batched distances: fills `out` with the row-major
    /// `sources × targets` table (entry `i * targets.len() + j` is
    /// `distance(sources[i], targets[j])`).
    ///
    /// The default runs the point-to-point query per pair; indexes with
    /// a native many-to-many algorithm (CH's bucket technique) override
    /// this, which is what makes dense batches cheaper than their
    /// point-to-point decomposition.
    fn distances(&mut self, sources: &[NodeId], targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        out.clear();
        out.reserve(sources.len() * targets.len());
        for &s in sources {
            for &t in targets {
                out.push(self.distance(s, t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::figure1;

    /// A trivial backend over the raw network (BFS-free: only immediate
    /// neighbours and self-loops) — just enough to exercise the default
    /// `distances` implementation and object safety.
    struct OneHop;

    struct OneHopSession<'a> {
        net: &'a RoadNetwork,
    }

    impl Backend for OneHop {
        fn backend_name(&self) -> &'static str {
            "OneHop"
        }
        fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
            Box::new(OneHopSession { net })
        }
    }

    impl Session for OneHopSession<'_> {
        fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
            if s == t {
                return Some(0);
            }
            self.net
                .neighbors(s)
                .filter(|&(u, _)| u == t)
                .map(|(_, w)| w as Dist)
                .min()
        }
        fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
            let d = self.distance(s, t)?;
            Some((d, if s == t { vec![s] } else { vec![s, t] }))
        }
    }

    #[test]
    fn default_batch_matches_singles() {
        let g = figure1();
        let backend: Box<dyn Backend> = Box::new(OneHop);
        let mut session = backend.session(&g);
        let sources = [0u32, 1, 2];
        let targets = [0u32, 3, 5, 7];
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        assert_eq!(out.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(out[i * targets.len() + j], session.distance(s, t));
            }
        }
    }
}
