//! Tiny hand-built networks used in documentation and tests.

use crate::builder::GraphBuilder;
use crate::geo::Point;
use crate::RoadNetwork;

/// The 8-vertex road network of the paper's Figure 1.
///
/// Vertices are `v1..v8` mapped to ids `0..8`. The edges `(v2, v8)` and
/// `(v6, v8)` have weight 2; every other edge has weight 1. All worked
/// examples in the paper's §3 (CH shortcuts c1–c3, TNR access nodes,
/// SILC's partition of `V \ {v8}`, the PCPD pair through `v8`) are stated
/// on this graph, so it doubles as a fixture for technique-level tests.
///
/// The figure itself does not label the edges; this edge set is the unique
/// reconstruction consistent with every worked example: contracting
/// v1/v5/v6 yields exactly the shortcuts c1 (v3–v8, weight 2), c2 (v7–v6,
/// weight 2) and c3 (v7–v8, weight 4) and nothing else; dist(v3, v7) = 6;
/// the canonical paths from v8 to v4..v7 all start with v6; and every
/// path from {v1, v2, v3} to {v4..v7} passes through v8 (Figure 5's
/// path-coherent pair).
pub fn figure1() -> RoadNetwork {
    let mut b = GraphBuilder::new();
    let coords = [
        (0, 2), // v1
        (0, 0), // v2
        (1, 3), // v3
        (3, 3), // v4
        (4, 2), // v5
        (3, 1), // v6
        (4, 0), // v7
        (1, 1), // v8
    ];
    for (x, y) in coords {
        b.add_node(Point::new(x, y));
    }
    for (u, v, w) in [
        (0u32, 2u32, 1u32), // v1-v3
        (0, 7, 1),          // v1-v8
        (1, 2, 1),          // v2-v3
        (1, 7, 2),          // v2-v8
        (3, 4, 1),          // v4-v5
        (3, 5, 1),          // v4-v6
        (4, 5, 1),          // v5-v6
        (4, 6, 1),          // v5-v7
        (5, 7, 2),          // v6-v8
    ] {
        b.add_edge(u, v, w);
    }
    b.build().expect("figure 1 network is valid")
}

/// A path graph `0 - 1 - ... - (len-1)` with unit weights, laid out on a
/// horizontal line. Useful for exercising long-path behaviour.
pub fn path_graph(len: u32) -> RoadNetwork {
    assert!(len >= 1);
    let mut b = GraphBuilder::new();
    for i in 0..len {
        b.add_node(Point::new(i as i32 * 10, 0));
    }
    for i in 0..len.saturating_sub(1) {
        b.add_edge(i, i + 1, 1);
    }
    b.build().expect("path graph is valid")
}

/// A `w × h` grid graph with unit weights: node `(col, row)` has id
/// `row * w + col` and coordinate `(10 col, 10 row)`. The canonical
/// "spatially coherent" test network: shortest paths are monotone
/// staircases, and search frontiers grow quadratically with distance.
pub fn grid_graph(w: u32, h: u32) -> RoadNetwork {
    assert!(w >= 1 && h >= 1);
    let mut b = GraphBuilder::new();
    for row in 0..h {
        for col in 0..w {
            b.add_node(Point::new(col as i32 * 10, row as i32 * 10));
        }
    }
    for row in 0..h {
        for col in 0..w {
            let id = row * w + col;
            if col + 1 < w {
                b.add_edge(id, id + 1, 1);
            }
            if row + 1 < h {
                b.add_edge(id, id + w, 1);
            }
        }
    }
    b.build().expect("grid graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper() {
        let g = figure1();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.edge_weight(1, 7), Some(2));
        assert_eq!(g.edge_weight(5, 7), Some(2));
        assert_eq!(g.edge_weight(0, 2), Some(1));
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        let g1 = path_graph(1);
        assert_eq!(g1.num_nodes(), 1);
        assert_eq!(g1.num_edges(), 0);
    }
}
