//! Addressable binary min-heap with `decrease-key`, the priority queue
//! behind every Dijkstra variant in the workspace.
//!
//! The heap is *reusable*: [`IndexedHeap::clear`] is O(heap size), and the
//! node→position table is version-stamped so that resetting it costs
//! nothing. Query structures keep one heap alive across millions of
//! queries without reallocating, which is what makes the paper's
//! microsecond-scale latency measurements meaningful.

use crate::types::{Dist, NodeId};

/// Min-heap over `(Dist, NodeId)` supporting `decrease-key` by node id.
#[derive(Debug, Clone)]
pub struct IndexedHeap {
    /// Binary heap of (key, node).
    heap: Vec<(Dist, NodeId)>,
    /// Position of each node in `heap`, valid only if stamped with the
    /// current version.
    pos: Vec<u32>,
    stamp: Vec<u32>,
    version: u32,
}

impl IndexedHeap {
    /// Creates a heap for node ids `0..n`.
    pub fn new(n: usize) -> Self {
        IndexedHeap {
            heap: Vec::with_capacity(1024.min(n.max(1))),
            pos: vec![0; n],
            stamp: vec![0; n],
            version: 1,
        }
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all entries; O(current size) and allocation-free.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            // Stamp wrap-around: invalidate everything explicitly once
            // every 2^32 clears.
            self.stamp.fill(0);
            self.version = 1;
        }
    }

    #[inline]
    fn position(&self, v: NodeId) -> Option<usize> {
        if self.stamp[v as usize] == self.version {
            Some(self.pos[v as usize] as usize)
        } else {
            None
        }
    }

    /// Current key of `v`, if queued.
    pub fn key(&self, v: NodeId) -> Option<Dist> {
        self.position(v).map(|i| self.heap[i].0)
    }

    /// Whether `v` is currently queued.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.position(v).is_some()
    }

    /// Inserts `v` with `key`, or lowers its key if already queued with a
    /// larger one. Returns `true` if the heap changed.
    pub fn push_or_decrease(&mut self, v: NodeId, key: Dist) -> bool {
        match self.position(v) {
            Some(i) => {
                if key < self.heap[i].0 {
                    self.heap[i].0 = key;
                    self.sift_up(i);
                    true
                } else {
                    false
                }
            }
            None => {
                let i = self.heap.len();
                self.heap.push((key, v));
                self.stamp[v as usize] = self.version;
                self.pos[v as usize] = i as u32;
                self.sift_up(i);
                true
            }
        }
    }

    /// Smallest key currently queued.
    #[inline]
    pub fn peek_key(&self) -> Option<Dist> {
        self.heap.first().map(|&(k, _)| k)
    }

    /// Removes and returns the minimum entry.
    pub fn pop_min(&mut self) -> Option<(Dist, NodeId)> {
        let (k, v) = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.stamp[v as usize] = self.version.wrapping_sub(1); // mark absent
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.1 as usize] = 0;
            self.sift_down(0);
        }
        Some((k, v))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 < self.heap[parent].0 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].0 < self.heap[smallest].0 {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].0 < self.heap[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_order() {
        let mut h = IndexedHeap::new(10);
        for (v, k) in [(3u32, 30u64), (1, 10), (4, 40), (2, 20), (0, 0)] {
            assert!(h.push_or_decrease(v, k));
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            out.push((k, v));
        }
        assert_eq!(out, vec![(0, 0), (10, 1), (20, 2), (30, 3), (40, 4)]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(0, 100);
        h.push_or_decrease(1, 50);
        assert!(h.push_or_decrease(0, 10));
        assert!(!h.push_or_decrease(0, 60)); // increase is ignored
        assert_eq!(h.key(0), Some(10));
        assert_eq!(h.pop_min(), Some((10, 0)));
        assert_eq!(h.pop_min(), Some((50, 1)));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn clear_and_reuse() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(2, 5);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(2));
        h.push_or_decrease(2, 7);
        assert_eq!(h.pop_min(), Some((7, 2)));
    }

    #[test]
    fn popped_node_can_be_reinserted() {
        let mut h = IndexedHeap::new(2);
        h.push_or_decrease(0, 1);
        assert_eq!(h.pop_min(), Some((1, 0)));
        assert!(!h.contains(0));
        h.push_or_decrease(0, 9);
        assert_eq!(h.key(0), Some(9));
    }

    #[test]
    fn equal_keys_all_surface() {
        let mut h = IndexedHeap::new(8);
        for v in 0..8 {
            h.push_or_decrease(v, 42);
        }
        let mut seen = [false; 8];
        while let Some((k, v)) = h.pop_min() {
            assert_eq!(k, 42);
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn randomized_against_reference() {
        // Deterministic LCG so the test needs no external crate.
        let mut state = 0x1234_5678_u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 64;
        let mut h = IndexedHeap::new(n);
        let mut reference: std::collections::BTreeMap<u32, u64> = Default::default();
        for _ in 0..2000 {
            let v = (rand() % n as u64) as u32;
            match rand() % 3 {
                0 | 1 => {
                    let k = rand() % 1000;
                    let cur = reference.get(&v).copied();
                    h.push_or_decrease(v, k);
                    match cur {
                        Some(old) if old <= k => {
                            reference.insert(v, old);
                        }
                        _ => {
                            reference.insert(v, k);
                        }
                    }
                }
                _ => {
                    let expected = reference.iter().map(|(&v, &k)| (k, v)).min();
                    let got = h.pop_min();
                    match (expected, got) {
                        (None, None) => {}
                        (Some((ek, _)), Some((gk, gv))) => {
                            assert_eq!(ek, gk);
                            assert_eq!(reference.remove(&gv), Some(gk));
                        }
                        other => panic!("mismatch: {other:?}"),
                    }
                }
            }
        }
    }
}
