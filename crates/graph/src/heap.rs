//! Addressable d-ary min-heap with `decrease-key`, the priority queue
//! behind every Dijkstra variant in the workspace.
//!
//! The heap is *reusable*: [`IndexedHeap::clear`] is O(heap size), and the
//! node→position table is version-stamped so that resetting it costs
//! nothing. Query structures keep one heap alive across millions of
//! queries without reallocating, which is what makes the paper's
//! microsecond-scale latency measurements meaningful.
//!
//! The arity is a const generic. Query kernels default to `D = 4`: a
//! 4-ary heap trades slightly more comparisons per `sift_down` for half
//! the tree depth, and its four children share one cache line of
//! `(Dist, NodeId)` entries — on the shallow, hot heaps of CH upward
//! searches that wins measurably over the binary layout. `D = 2`
//! recovers the classic binary heap where the comparison count matters
//! more than depth.

use crate::types::{Dist, NodeId};

/// Min-heap over `(Dist, NodeId)` supporting `decrease-key` (and full
/// `update-key`) by node id. `D` is the tree arity; the default of 4 is
/// the cache-friendly choice for query kernels.
#[derive(Debug, Clone)]
pub struct IndexedHeap<const D: usize = 4> {
    /// Implicit d-ary heap of (key, node).
    heap: Vec<(Dist, NodeId)>,
    /// Position of each node in `heap`, valid only if stamped with the
    /// current version.
    pos: Vec<u32>,
    stamp: Vec<u32>,
    version: u32,
}

impl<const D: usize> IndexedHeap<D> {
    /// Creates a heap for node ids `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        IndexedHeap {
            heap: Vec::with_capacity(1024.min(n.max(1))),
            pos: vec![0; n],
            stamp: vec![0; n],
            version: 1,
        }
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all entries; O(current size) and allocation-free.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            // Stamp wrap-around: invalidate everything explicitly once
            // every 2^32 clears.
            self.stamp.fill(0);
            self.version = 1;
        }
    }

    #[inline]
    fn position(&self, v: NodeId) -> Option<usize> {
        if self.stamp[v as usize] == self.version {
            Some(self.pos[v as usize] as usize)
        } else {
            None
        }
    }

    /// Current key of `v`, if queued.
    pub fn key(&self, v: NodeId) -> Option<Dist> {
        self.position(v).map(|i| self.heap[i].0)
    }

    /// Whether `v` is currently queued.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.position(v).is_some()
    }

    /// Inserts `v` with `key`, or lowers its key if already queued with a
    /// larger one. Returns `true` if the heap changed.
    pub fn push_or_decrease(&mut self, v: NodeId, key: Dist) -> bool {
        match self.position(v) {
            Some(i) => {
                if key < self.heap[i].0 {
                    self.heap[i].0 = key;
                    self.sift_up(i);
                    true
                } else {
                    false
                }
            }
            None => {
                self.insert_new(v, key);
                true
            }
        }
    }

    /// Inserts `v` with `key`, or changes its key in either direction if
    /// already queued ("lazy-decrease" replacement for duplicate-entry
    /// binary heaps: the queue holds each node at most once, and a
    /// recomputed priority — higher or lower — overwrites in place).
    pub fn push_or_update(&mut self, v: NodeId, key: Dist) {
        match self.position(v) {
            Some(i) => {
                let old = self.heap[i].0;
                if key < old {
                    self.heap[i].0 = key;
                    self.sift_up(i);
                } else if key > old {
                    self.heap[i].0 = key;
                    self.sift_down(i);
                }
            }
            None => self.insert_new(v, key),
        }
    }

    #[inline]
    fn insert_new(&mut self, v: NodeId, key: Dist) {
        let i = self.heap.len();
        self.heap.push((key, v));
        self.stamp[v as usize] = self.version;
        self.pos[v as usize] = i as u32;
        self.sift_up(i);
    }

    /// Smallest key currently queued.
    #[inline]
    pub fn peek_key(&self) -> Option<Dist> {
        self.heap.first().map(|&(k, _)| k)
    }

    /// Removes and returns the minimum entry.
    pub fn pop_min(&mut self) -> Option<(Dist, NodeId)> {
        let (k, v) = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.stamp[v as usize] = self.version.wrapping_sub(1); // mark absent
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.1 as usize] = 0;
            self.sift_down(0);
        }
        Some((k, v))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.heap[i].0 < self.heap[parent].0 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = D * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + D).min(self.heap.len());
            // One sequential scan over the (at most D, contiguous)
            // children to find the smallest.
            let mut smallest = i;
            for c in first..last {
                if self.heap[c].0 < self.heap[smallest].0 {
                    smallest = c;
                }
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_order() {
        let mut h: IndexedHeap = IndexedHeap::new(10);
        for (v, k) in [(3u32, 30u64), (1, 10), (4, 40), (2, 20), (0, 0)] {
            assert!(h.push_or_decrease(v, k));
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            out.push((k, v));
        }
        assert_eq!(out, vec![(0, 0), (10, 1), (20, 2), (30, 3), (40, 4)]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h: IndexedHeap = IndexedHeap::new(4);
        h.push_or_decrease(0, 100);
        h.push_or_decrease(1, 50);
        assert!(h.push_or_decrease(0, 10));
        assert!(!h.push_or_decrease(0, 60)); // increase is ignored
        assert_eq!(h.key(0), Some(10));
        assert_eq!(h.pop_min(), Some((10, 0)));
        assert_eq!(h.pop_min(), Some((50, 1)));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn update_key_moves_both_directions() {
        let mut h: IndexedHeap = IndexedHeap::new(8);
        for v in 0..8u32 {
            h.push_or_update(v, 100 + v as u64);
        }
        h.push_or_update(7, 1); // decrease to the top
        assert_eq!(h.peek_key(), Some(1));
        h.push_or_update(7, 500); // increase to the bottom
        assert_eq!(h.pop_min(), Some((100, 0)));
        let mut last = 0;
        let mut seen = 1;
        while let Some((k, _)) = h.pop_min() {
            assert!(k >= last);
            last = k;
            seen += 1;
        }
        assert_eq!(seen, 8);
        assert_eq!(last, 500);
    }

    #[test]
    fn clear_and_reuse() {
        let mut h: IndexedHeap = IndexedHeap::new(4);
        h.push_or_decrease(2, 5);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(2));
        h.push_or_decrease(2, 7);
        assert_eq!(h.pop_min(), Some((7, 2)));
    }

    #[test]
    fn popped_node_can_be_reinserted() {
        let mut h: IndexedHeap = IndexedHeap::new(2);
        h.push_or_decrease(0, 1);
        assert_eq!(h.pop_min(), Some((1, 0)));
        assert!(!h.contains(0));
        h.push_or_decrease(0, 9);
        assert_eq!(h.key(0), Some(9));
    }

    #[test]
    fn equal_keys_all_surface() {
        let mut h: IndexedHeap = IndexedHeap::new(8);
        for v in 0..8 {
            h.push_or_decrease(v, 42);
        }
        let mut seen = [false; 8];
        while let Some((k, v)) = h.pop_min() {
            assert_eq!(k, 42);
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    fn randomized_against_reference<const D: usize>() {
        // Deterministic LCG so the test needs no external crate.
        let mut state = 0x1234_5678_u64 ^ D as u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 64;
        let mut h: IndexedHeap<D> = IndexedHeap::new(n);
        let mut reference: std::collections::BTreeMap<u32, u64> = Default::default();
        for _ in 0..2000 {
            let v = (rand() % n as u64) as u32;
            match rand() % 4 {
                0 | 1 => {
                    let k = rand() % 1000;
                    let cur = reference.get(&v).copied();
                    h.push_or_decrease(v, k);
                    match cur {
                        Some(old) if old <= k => {
                            reference.insert(v, old);
                        }
                        _ => {
                            reference.insert(v, k);
                        }
                    }
                }
                2 => {
                    let k = rand() % 1000;
                    h.push_or_update(v, k);
                    reference.insert(v, k);
                }
                _ => {
                    let expected = reference.iter().map(|(&v, &k)| (k, v)).min();
                    let got = h.pop_min();
                    match (expected, got) {
                        (None, None) => {}
                        (Some((ek, _)), Some((gk, gv))) => {
                            assert_eq!(ek, gk);
                            assert_eq!(reference.remove(&gv), Some(gk));
                        }
                        other => panic!("mismatch: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn randomized_matches_reference_at_every_arity() {
        randomized_against_reference::<2>();
        randomized_against_reference::<3>();
        randomized_against_reference::<4>();
        randomized_against_reference::<8>();
    }
}
