//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use spq_graph::geo::{morton, Point, Rect};
use spq_graph::grid::{GridFrame, VertexGrid};
use spq_graph::heap::IndexedHeap;
use spq_graph::{GraphBuilder, NodeId};

/// Strategy: a connected graph given as (coords, extra edges). Connectivity
/// comes from a random spanning arborescence (node i links to a random
/// earlier node), mirroring how road extracts are always connected.
type RawGraph = (Vec<(i32, i32)>, Vec<(u32, u32, u32)>);

fn connected_graph() -> impl Strategy<Value = RawGraph> {
    (2usize..40).prop_flat_map(|n| {
        let coords = proptest::collection::vec((-1000i32..1000, -1000i32..1000), n);
        let spine = proptest::collection::vec((0u32..u32::MAX, 1u32..10_000), n - 1);
        let extra =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u32..10_000), 0..2 * n);
        (coords, spine, extra).prop_map(move |(coords, spine, extra)| {
            let mut edges = Vec::new();
            for (i, (r, w)) in spine.iter().enumerate() {
                let child = (i + 1) as u32;
                let parent = r % child;
                edges.push((parent, child, *w));
            }
            for (u, v, w) in extra {
                if u != v {
                    edges.push((u, v, w));
                }
            }
            (coords, edges)
        })
    })
}

/// Builds a network from the strategy output.
fn build(coords: &[(i32, i32)], edges: &[(u32, u32, u32)]) -> spq_graph::RoadNetwork {
    let mut b = GraphBuilder::new();
    for &(x, y) in coords {
        b.add_node(Point::new(x, y));
    }
    for &(u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    b.build().expect("strategy yields connected graphs")
}

proptest! {
    #[test]
    fn csr_is_symmetric((coords, edges) in connected_graph()) {
        let g = build(&coords, &edges);
        for u in 0..g.num_nodes() as NodeId {
            for (v, w) in g.neighbors(u) {
                prop_assert_eq!(g.edge_weight(v, u), Some(w));
            }
        }
        let deg_sum: usize = (0..g.num_nodes() as NodeId).map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, g.num_arcs());
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    #[test]
    fn dimacs_roundtrip((coords, edges) in connected_graph()) {
        let g = build(&coords, &edges);
        let mut gr = Vec::new();
        let mut co = Vec::new();
        spq_graph::dimacs::write_gr(&g, &mut gr).unwrap();
        spq_graph::dimacs::write_co(&g, &mut co).unwrap();
        let g2 = spq_graph::dimacs::read(&gr[..], &co[..]).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..g.num_nodes() as NodeId {
            prop_assert_eq!(g2.coord(v), g.coord(v));
        }
    }

    #[test]
    fn vertex_grid_partitions((coords, edges) in connected_graph(), g_res in 1u32..16) {
        let net = build(&coords, &edges);
        let grid = VertexGrid::build(&net, g_res);
        // Every vertex is in exactly the cell its coordinate maps to.
        let mut seen = vec![0usize; net.num_nodes()];
        for c in 0..grid.frame().num_cells() as u32 {
            for &v in grid.vertices_in(c) {
                prop_assert_eq!(grid.cell_index_of(v), c);
                seen[v as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn morton_roundtrip_prop(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton::decode(morton::encode(x, y)), (x, y));
    }

    #[test]
    fn morton_block_nesting(x in 0u32..1024, y in 0u32..1024, depth in 0u32..10) {
        // All points in the same 2^k x 2^k block share a code prefix.
        let code = morton::encode(x, y);
        let block_x = x >> depth << depth;
        let block_y = y >> depth << depth;
        let base = morton::encode(block_x, block_y);
        prop_assert_eq!(code >> (2 * depth), base >> (2 * depth));
    }

    #[test]
    fn heap_sorts(keys in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h: IndexedHeap = IndexedHeap::new(keys.len());
        for (v, &k) in keys.iter().enumerate() {
            h.push_or_decrease(v as NodeId, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop_min() {
            out.push(k);
        }
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn grid_frame_cell_contains_point(
        px in -5000i32..5000, py in -5000i32..5000, g_res in 1u32..64,
    ) {
        let rect = Rect::new(Point::new(-5000, -5000), Point::new(5000, 5000));
        let frame = GridFrame::new(rect, g_res);
        let p = Point::new(px, py);
        let cell = frame.cell_of(p);
        // The radius-0 square around the cell contains the point.
        let sq = frame.square_around(cell, 0);
        prop_assert!(sq.contains(p), "{:?} not in {:?}", p, sq);
    }
}
