//! SVG rendering of road networks, shortest paths, and index geometry.
//!
//! Diagnostic tooling for the rest of the workspace: render a network to
//! inspect the generator's output, overlay a query path to debug a
//! technique, or draw a TNR-style grid with its shells to sanity-check
//! the locality filter. Output is plain SVG text, so it is cheap to test
//! and trivially embeddable in docs.
//!
//! # Example
//!
//! ```
//! use spq_graph::toy::figure1;
//! use spq_viz::{render, Style};
//!
//! let g = figure1();
//! let svg = render(&g, &Style::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("<line"));
//! ```

use std::fmt::Write as _;

use spq_graph::geo::Rect;
use spq_graph::grid::GridFrame;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct Style {
    /// Output image width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Edge stroke colour.
    pub edge_color: String,
    /// Edge stroke width in pixels.
    pub edge_width: f64,
    /// Draw vertices as dots (off for large networks).
    pub draw_vertices: bool,
    /// Vertex dot radius.
    pub vertex_radius: f64,
    /// Margin around the drawing, in pixels.
    pub margin: f64,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            width: 800.0,
            edge_color: "#888".to_string(),
            edge_width: 1.0,
            draw_vertices: false,
            vertex_radius: 2.0,
            margin: 10.0,
        }
    }
}

/// Maps network coordinates into SVG pixel space.
struct Projection {
    rect: Rect,
    scale: f64,
    margin: f64,
    height: f64,
}

impl Projection {
    fn new(net: &RoadNetwork, style: &Style) -> Self {
        let rect = net.bounding_rect();
        let usable = style.width - 2.0 * style.margin;
        let scale = usable / rect.width().max(1) as f64;
        let height = rect.height() as f64 * scale + 2.0 * style.margin;
        Projection {
            rect,
            scale,
            margin: style.margin,
            height,
        }
    }

    fn x(&self, x: i32) -> f64 {
        (x as i64 - self.rect.min_x as i64) as f64 * self.scale + self.margin
    }

    /// SVG y grows downward; flip so north stays up.
    fn y(&self, y: i32) -> f64 {
        self.height - ((y as i64 - self.rect.min_y as i64) as f64 * self.scale + self.margin)
    }
}

/// Renders the bare network.
pub fn render(net: &RoadNetwork, style: &Style) -> String {
    let mut svg = SvgBuilder::new(net, style);
    svg.edges();
    if style.draw_vertices {
        svg.vertices();
    }
    svg.finish()
}

/// Renders the network with one highlighted path.
pub fn render_with_path(net: &RoadNetwork, path: &[NodeId], style: &Style) -> String {
    let mut svg = SvgBuilder::new(net, style);
    svg.edges();
    svg.path(path, "#d6423c", 3.0 * style.edge_width);
    if let (Some(&s), Some(&t)) = (path.first(), path.last()) {
        svg.dot(s, "#1f7a33", 3.0 * style.vertex_radius);
        svg.dot(t, "#d6423c", 3.0 * style.vertex_radius);
    }
    svg.finish()
}

/// Renders the network under a `g × g` grid (TNR-style), shading the
/// inner/outer shells of one cell.
pub fn render_with_grid(
    net: &RoadNetwork,
    g: u32,
    highlight_cell: Option<(u32, u32)>,
    inner_radius: u32,
    outer_radius: u32,
    style: &Style,
) -> String {
    let mut svg = SvgBuilder::new(net, style);
    svg.edges();
    let frame = GridFrame::new(net.bounding_rect(), g);
    svg.grid(&frame);
    if let Some((cx, cy)) = highlight_cell {
        let cell = spq_graph::grid::Cell { cx, cy };
        svg.rect(&frame.square_around(cell, outer_radius), "#f2c230", 0.12);
        svg.rect(&frame.square_around(cell, inner_radius), "#d6423c", 0.18);
        svg.rect(&frame.square_around(cell, 0), "#1f7a33", 0.30);
    }
    svg.finish()
}

struct SvgBuilder<'a> {
    net: &'a RoadNetwork,
    style: Style,
    proj: Projection,
    body: String,
}

impl<'a> SvgBuilder<'a> {
    fn new(net: &'a RoadNetwork, style: &Style) -> Self {
        SvgBuilder {
            net,
            style: style.clone(),
            proj: Projection::new(net, style),
            body: String::new(),
        }
    }

    fn edges(&mut self) {
        for u in 0..self.net.num_nodes() as NodeId {
            let pu = self.net.coord(u);
            for (v, _) in self.net.neighbors(u) {
                if v <= u {
                    continue; // draw each undirected edge once
                }
                let pv = self.net.coord(v);
                let _ = writeln!(
                    self.body,
                    r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="{}"/>"#,
                    self.proj.x(pu.x),
                    self.proj.y(pu.y),
                    self.proj.x(pv.x),
                    self.proj.y(pv.y),
                    self.style.edge_color,
                    self.style.edge_width,
                );
            }
        }
    }

    fn vertices(&mut self) {
        for v in 0..self.net.num_nodes() as NodeId {
            self.dot(v, "#444", self.style.vertex_radius);
        }
    }

    fn dot(&mut self, v: NodeId, color: &str, r: f64) {
        let p = self.net.coord(v);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{r}" fill="{color}"/>"#,
            self.proj.x(p.x),
            self.proj.y(p.y),
        );
    }

    fn path(&mut self, path: &[NodeId], color: &str, width: f64) {
        if path.len() < 2 {
            return;
        }
        let mut points = String::new();
        for &v in path {
            let p = self.net.coord(v);
            let _ = write!(points, "{:.1},{:.1} ", self.proj.x(p.x), self.proj.y(p.y));
        }
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="{width}"/>"#,
            points.trim_end(),
        );
    }

    fn grid(&mut self, frame: &GridFrame) {
        let rect = self.net.bounding_rect();
        let g = frame.g();
        for i in 0..=g as u64 {
            let x = rect.min_x as i64 + (i * frame.side_x()) as i64;
            let _ = writeln!(
                self.body,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#bbb" stroke-width="0.5"/>"##,
                self.proj
                    .x(x.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
                self.proj.y(rect.min_y),
                self.proj
                    .x(x.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
                self.proj.y(rect.max_y),
            );
            let y = rect.min_y as i64 + (i * frame.side_y()) as i64;
            let _ = writeln!(
                self.body,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#bbb" stroke-width="0.5"/>"##,
                self.proj.x(rect.min_x),
                self.proj
                    .y(y.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
                self.proj.x(rect.max_x),
                self.proj
                    .y(y.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
            );
        }
    }

    fn rect(&mut self, r: &Rect, color: &str, opacity: f64) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{color}" fill-opacity="{opacity}"/>"#,
            self.proj.x(r.min_x),
            self.proj.y(r.max_y),
            r.width() as f64 * self.proj.scale,
            r.height() as f64 * self.proj.scale,
        );
    }

    fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.style.width, self.proj.height, self.style.width, self.proj.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn renders_each_edge_once() {
        let g = figure1();
        let svg = render(&g, &Style::default());
        assert_eq!(svg.matches("<line").count(), g.num_edges());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn path_overlay_draws_polyline_and_endpoints() {
        let g = grid_graph(5, 5);
        let mut d = spq_dijkstra::Dijkstra::new(g.num_nodes());
        d.run(&g, 0);
        let path = d.path_to(24).unwrap();
        let svg = render_with_path(&g, &path, &Style::default());
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn grid_overlay_draws_shells() {
        let g = grid_graph(8, 8);
        let svg = render_with_grid(&g, 4, Some((1, 1)), 0, 1, &Style::default());
        assert_eq!(svg.matches("<rect").count(), 1 + 3); // background + shells
                                                         // 2 * (g + 1) grid lines plus the edges.
        assert!(svg.matches("<line").count() >= g.num_edges() + 10);
    }

    #[test]
    fn vertices_drawn_when_enabled() {
        let g = figure1();
        let svg = render(
            &g,
            &Style {
                draw_vertices: true,
                ..Style::default()
            },
        );
        assert_eq!(svg.matches("<circle").count(), g.num_nodes());
    }

    #[test]
    fn degenerate_single_point_network() {
        use spq_graph::geo::Point;
        use spq_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(5, 5));
        let net = b.build().unwrap();
        let svg = render(&net, &Style::default());
        assert!(svg.starts_with("<svg")); // no division by zero
    }
}
