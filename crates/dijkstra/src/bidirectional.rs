//! The bidirectional Dijkstra baseline (paper §3.1).

use spq_graph::backend::QueryBudget;
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY, INVALID_NODE};
use spq_graph::RoadNetwork;

use crate::SearchStats;

/// One direction's workspace.
#[derive(Debug, Clone)]
struct Side {
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
    reached_stamp: Vec<u32>,
    settled_stamp: Vec<u32>,
    heap: IndexedHeap,
}

impl Side {
    fn new(n: usize) -> Self {
        Side {
            dist: vec![INFINITY; n],
            parent: vec![INVALID_NODE; n],
            reached_stamp: vec![0; n],
            settled_stamp: vec![0; n],
            heap: IndexedHeap::new(n),
        }
    }

    fn begin(&mut self, root: NodeId, version: u32) {
        self.heap.clear();
        self.dist[root as usize] = 0;
        self.parent[root as usize] = INVALID_NODE;
        self.reached_stamp[root as usize] = version;
        self.heap.push_or_decrease(root, 0);
    }

    #[inline]
    fn reached(&self, v: NodeId, version: u32) -> bool {
        self.reached_stamp[v as usize] == version
    }
}

/// Bidirectional Dijkstra with reusable state (§3.1).
///
/// Two simultaneous searches grow shortest-path trees from `s` and from
/// `t`; the tentative best distance `mu` is updated whenever a relaxed
/// edge connects the two search scopes, and the searches stop once the two
/// queue minima together can no longer improve `mu`.
#[derive(Debug, Clone)]
pub struct BiDijkstra {
    fwd: Side,
    bwd: Side,
    version: u32,
    budget: QueryBudget,
    /// Statistics of the most recent query (both directions combined).
    pub stats: SearchStats,
}

impl BiDijkstra {
    /// Creates a workspace for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        BiDijkstra {
            fwd: Side::new(n),
            bwd: Side::new(n),
            version: 0,
            budget: QueryBudget::unlimited(),
            stats: SearchStats::default(),
        }
    }

    /// Installs the cancellation budget subsequent queries run under
    /// (one charge per settled vertex). The default is unlimited.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`BiDijkstra::set_budget`] was cut
    /// short by the budget (its `None` is an abort, not "unreachable").
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Length of the shortest s–t path, or `None` when unreachable
    /// (cannot happen on connected networks, but scoped callers reuse
    /// this). This is the paper's *distance query* (§2).
    pub fn distance(&mut self, net: &RoadNetwork, s: NodeId, t: NodeId) -> Option<Dist> {
        let (mu, _) = self.search(net, s, t)?;
        Some(mu)
    }

    /// The paper's *shortest path query*: the distance plus the vertex
    /// sequence of a shortest path from `s` to `t`.
    pub fn shortest_path(
        &mut self,
        net: &RoadNetwork,
        s: NodeId,
        t: NodeId,
    ) -> Option<(Dist, Vec<NodeId>)> {
        let (mu, meet) = self.search(net, s, t)?;
        let mut path = Vec::new();
        // Forward half: meet back to s, reversed.
        let mut cur = meet;
        loop {
            path.push(cur);
            if cur == s {
                break;
            }
            cur = self.fwd.parent[cur as usize];
        }
        path.reverse();
        // Backward half: follow the backward tree from meet to t.
        let mut cur = meet;
        while cur != t {
            cur = self.bwd.parent[cur as usize];
            path.push(cur);
        }
        Some((mu, path))
    }

    /// Runs the two searches; returns `(distance, meeting_vertex)` where
    /// the meeting vertex lies on some shortest path and is settled (or at
    /// least reached) from both sides.
    fn search(&mut self, net: &RoadNetwork, s: NodeId, t: NodeId) -> Option<(Dist, NodeId)> {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.fwd.reached_stamp.fill(0);
            self.fwd.settled_stamp.fill(0);
            self.bwd.reached_stamp.fill(0);
            self.bwd.settled_stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.stats = SearchStats::default();
        self.fwd.begin(s, version);
        self.bwd.begin(t, version);
        if s == t {
            return Some((0, s));
        }

        let mut mu = INFINITY;
        let mut meet = INVALID_NODE;
        loop {
            let ftop = self.fwd.heap.peek_key();
            let btop = self.bwd.heap.peek_key();
            // Balanced alternation: expand the side with the smaller
            // queue minimum (§3.1's "two traversals grow to ~dist/2").
            let side_is_fwd = match (ftop, btop) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(f), Some(b)) => f <= b,
            };
            // Stopping rule: any undiscovered connecting path costs at
            // least ftop + btop, so once that reaches mu, mu is final.
            if ftop.unwrap_or(INFINITY) + btop.unwrap_or(INFINITY) >= mu {
                break;
            }

            let (this, other) = if side_is_fwd {
                (&mut self.fwd, &mut self.bwd)
            } else {
                (&mut self.bwd, &mut self.fwd)
            };
            if !self.budget.charge() {
                return None;
            }
            let (d, u) = this.heap.pop_min().expect("side chosen non-empty");
            this.settled_stamp[u as usize] = version;
            self.stats.settled += 1;
            for (v, w) in net.neighbors(u) {
                self.stats.relaxed += 1;
                let nd = d + w as Dist;
                let vi = v as usize;
                if this.reached_stamp[vi] != version || nd < this.dist[vi] {
                    this.dist[vi] = nd;
                    this.parent[vi] = u;
                    this.reached_stamp[vi] = version;
                    this.heap.push_or_decrease(v, nd);
                }
                // Connection check: v reached from the other side too.
                if other.reached(v, version) {
                    let total = nd + other.dist[vi];
                    if total < mu {
                        mu = total;
                        meet = v;
                    }
                }
            }
        }

        if meet == INVALID_NODE {
            None
        } else {
            Some((mu, meet))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dijkstra;
    use spq_graph::toy::figure1;

    #[test]
    fn matches_paper_example() {
        let g = figure1();
        let mut bi = BiDijkstra::new(g.num_nodes());
        // §3.2's worked example: dist(v3, v7) = 6.
        assert_eq!(bi.distance(&g, 2, 6), Some(6));
        let (d, p) = bi.shortest_path(&g, 2, 6).unwrap();
        assert_eq!(d, 6);
        assert_eq!(p.first(), Some(&2));
        assert_eq!(p.last(), Some(&6));
        assert_eq!(g.path_length(&p), Some(6));
    }

    #[test]
    fn agrees_with_unidirectional_on_all_pairs() {
        let g = figure1();
        let n = g.num_nodes() as NodeId;
        let mut uni = Dijkstra::new(g.num_nodes());
        let mut bi = BiDijkstra::new(g.num_nodes());
        for s in 0..n {
            uni.run(&g, s);
            for t in 0..n {
                assert_eq!(bi.distance(&g, s, t), uni.distance(t), "pair ({s},{t})");
                let (d, p) = bi.shortest_path(&g, s, t).unwrap();
                assert_eq!(Some(d), g.path_length(&p), "path ({s},{t}) invalid");
            }
        }
    }

    #[test]
    fn trivial_query_s_equals_t() {
        let g = figure1();
        let mut bi = BiDijkstra::new(g.num_nodes());
        assert_eq!(bi.distance(&g, 4, 4), Some(0));
        let (d, p) = bi.shortest_path(&g, 4, 4).unwrap();
        assert_eq!(d, 0);
        assert_eq!(p, vec![4]);
    }

    #[test]
    fn settles_fewer_vertices_than_unidirectional() {
        // §3.1's argument: each frontier grows a ball of radius ~dist/2,
        // so on a 2-d network the bidirectional search touches about half
        // as many vertices.
        let g = spq_graph::toy::grid_graph(80, 80);
        let s = 40 * 80 + 10; // (col 10, row 40)
        let t = 40 * 80 + 70; // (col 70, row 40)
        let mut uni = Dijkstra::new(g.num_nodes());
        let mut bi = BiDijkstra::new(g.num_nodes());
        uni.run_to_target(&g, s, t);
        bi.distance(&g, s, t);
        assert!(
            bi.stats.settled * 10 <= uni.stats.settled * 8,
            "bi settled {} vs uni {}",
            bi.stats.settled,
            uni.stats.settled
        );
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = figure1();
        let mut bi = BiDijkstra::new(g.num_nodes());
        for _ in 0..100 {
            assert_eq!(bi.distance(&g, 0, 6), bi.distance(&g, 6, 0));
        }
    }
}
