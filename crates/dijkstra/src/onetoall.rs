//! Reusable one-to-all / one-to-many Dijkstra search.

use spq_graph::geo::Rect;
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY, INVALID_NODE};
use spq_graph::RoadNetwork;

use crate::SearchStats;

/// Where a search is allowed to go.
#[derive(Debug, Clone, Copy, Default)]
pub enum SearchScope<'a> {
    /// Unrestricted search over the whole network.
    #[default]
    Full,
    /// Only vertices whose coordinate lies inside the rectangle may be
    /// *expanded* (their out-edges relaxed). Vertices outside may still be
    /// settled — TNR needs exactly this: the endpoints of edges crossing
    /// the outer shell lie outside the region but terminate its searches
    /// (§3.3, Remarks).
    Rect(&'a Rect),
}

/// A one-to-all Dijkstra search with a reusable workspace.
///
/// After a run, tentative/final distances, predecessors and first hops of
/// all *settled* vertices are available until the next run. Ties are broken
/// deterministically (the optimal predecessor with the smallest id wins),
/// so with strictly positive weights every source induces one canonical
/// shortest-path tree — SILC's colouring and PCPD's common-element tests
/// rely on this.
#[derive(Debug, Clone)]
pub struct Dijkstra {
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
    /// First edge of the tree path: `first_hop[u]` is the neighbour of the
    /// source that the canonical path to `u` starts with.
    first_hop: Vec<NodeId>,
    reached_stamp: Vec<u32>,
    settled_stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
    source: NodeId,
    /// Most recent run's statistics.
    pub stats: SearchStats,
}

impl Dijkstra {
    /// Creates a workspace for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        Dijkstra {
            dist: vec![INFINITY; n],
            parent: vec![INVALID_NODE; n],
            first_hop: vec![INVALID_NODE; n],
            reached_stamp: vec![0; n],
            settled_stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
            source: INVALID_NODE,
            stats: SearchStats::default(),
        }
    }

    fn begin(&mut self, source: NodeId) {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.reached_stamp.fill(0);
            self.settled_stamp.fill(0);
            self.version = 1;
        }
        self.heap.clear();
        self.stats = SearchStats::default();
        self.source = source;
        self.dist[source as usize] = 0;
        self.parent[source as usize] = INVALID_NODE;
        self.first_hop[source as usize] = INVALID_NODE;
        self.reached_stamp[source as usize] = self.version;
        self.heap.push_or_decrease(source, 0);
    }

    /// Runs to exhaustion from `source`, settling every vertex.
    pub fn run(&mut self, net: &RoadNetwork, source: NodeId) {
        self.run_scoped(net, source, SearchScope::Full, |_, _| false);
    }

    /// Runs from `source` until `t` is settled; returns its distance.
    pub fn run_to_target(&mut self, net: &RoadNetwork, source: NodeId, t: NodeId) -> Option<Dist> {
        self.run_scoped(net, source, SearchScope::Full, |v, _| v == t);
        self.distance(t)
    }

    /// Runs from `source` until every vertex of `targets` is settled (or
    /// the reachable scope is exhausted). Returns how many were reached.
    pub fn run_to_targets(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        targets: &[NodeId],
        scope: SearchScope<'_>,
    ) -> usize {
        // Target sets are small (shell endpoints); membership is a binary
        // search over a sorted, deduplicated copy.
        let mut sorted: Vec<NodeId> = targets.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut remaining = sorted.len();
        self.run_scoped(net, source, scope, |v, _| {
            if sorted.binary_search(&v).is_ok() {
                remaining -= 1;
                remaining == 0
            } else {
                false
            }
        });
        sorted.len() - remaining
    }

    /// Core loop: settles vertices in distance order, stopping early when
    /// `stop(settled_vertex, its_distance)` returns true.
    pub fn run_scoped(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        scope: SearchScope<'_>,
        mut stop: impl FnMut(NodeId, Dist) -> bool,
    ) {
        self.begin(source);
        while let Some((d, u)) = self.heap.pop_min() {
            self.settled_stamp[u as usize] = self.version;
            self.stats.settled += 1;
            if stop(u, d) {
                return;
            }
            if let SearchScope::Rect(r) = scope {
                if !r.contains(net.coord(u)) && u != source {
                    // Settled but not expanded: endpoints beyond the
                    // region boundary terminate the search frontier.
                    continue;
                }
            }
            for (v, w) in net.neighbors(u) {
                self.stats.relaxed += 1;
                let nd = d + w as Dist;
                let vi = v as usize;
                let fresh = self.reached_stamp[vi] != self.version;
                if fresh || nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.first_hop[vi] = if u == source {
                        v
                    } else {
                        self.first_hop[u as usize]
                    };
                    self.reached_stamp[vi] = self.version;
                    self.heap.push_or_decrease(v, nd);
                } else if nd == self.dist[vi]
                    && self.settled_stamp[vi] != self.version
                    && u < self.parent[vi]
                {
                    // Deterministic tie-break: smallest-id predecessor
                    // defines the canonical tree.
                    self.parent[vi] = u;
                    self.first_hop[vi] = if u == source {
                        v
                    } else {
                        self.first_hop[u as usize]
                    };
                }
            }
        }
    }

    /// Runs from `source` to `t` while never expanding or settling the
    /// vertices marked in `excluded` (the source itself is always
    /// allowed). Used for core-disjoint path computation (paper
    /// Appendix C: the δ-redundancy measurement removes the interior of
    /// the shortest path and re-searches). Returns `dist(s, t)` in the
    /// reduced graph, or `None` if `t` became unreachable.
    pub fn run_to_target_excluding(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        t: NodeId,
        excluded: &[bool],
    ) -> Option<Dist> {
        self.begin(source);
        while let Some((d, u)) = self.heap.pop_min() {
            if excluded[u as usize] && u != source {
                continue; // never settle excluded vertices
            }
            self.settled_stamp[u as usize] = self.version;
            self.stats.settled += 1;
            if u == t {
                return Some(d);
            }
            for (v, w) in net.neighbors(u) {
                self.stats.relaxed += 1;
                if excluded[v as usize] && v != t {
                    continue;
                }
                let nd = d + w as Dist;
                let vi = v as usize;
                if self.reached_stamp[vi] != self.version || nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.first_hop[vi] = if u == source {
                        v
                    } else {
                        self.first_hop[u as usize]
                    };
                    self.reached_stamp[vi] = self.version;
                    self.heap.push_or_decrease(v, nd);
                }
            }
        }
        None
    }

    /// Source of the most recent run.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance of `v` if it was settled by the last run.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<Dist> {
        if self.settled_stamp[v as usize] == self.version {
            Some(self.dist[v as usize])
        } else {
            None
        }
    }

    /// Whether `v` was settled by the last run.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.settled_stamp[v as usize] == self.version
    }

    /// Predecessor of `v` in the canonical tree (None at the source or if
    /// unsettled).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if self.settled_stamp[v as usize] == self.version && v != self.source {
            Some(self.parent[v as usize])
        } else {
            None
        }
    }

    /// Neighbour of the source that starts the canonical path to `v`
    /// (the quantity SILC's colouring stores, §3.4).
    #[inline]
    pub fn first_hop(&self, v: NodeId) -> Option<NodeId> {
        if self.settled_stamp[v as usize] == self.version && v != self.source {
            Some(self.first_hop[v as usize])
        } else {
            None
        }
    }

    /// The canonical path source→`v` as a vertex sequence.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.settled_stamp[v as usize] != self.version {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::{figure1, path_graph};

    #[test]
    fn distances_on_figure1() {
        let g = figure1();
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, 7); // from v8
                      // Paper §3.4: paths from v8 to v1 and v3 go via v1.
        assert_eq!(d.distance(0), Some(1)); // v1
        assert_eq!(d.distance(2), Some(2)); // v3 via v1
        assert_eq!(d.first_hop(2), Some(0));
        assert_eq!(d.distance(1), Some(2)); // v2: direct (2) beats v8-v1-v3-v2 (3)
        assert_eq!(d.first_hop(1), Some(1));
        // §3.4: "the paths from v8 to v4, v5, v6, v7 pass through v6".
        for (target, dist) in [(3u32, 3u64), (4, 3), (5, 2), (6, 4)] {
            assert_eq!(d.first_hop(target), Some(5), "target {target}");
            assert_eq!(d.distance(target), Some(dist), "target {target}");
        }
    }

    #[test]
    fn path_reconstruction_is_valid() {
        let g = figure1();
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, 2); // from v3
        for v in 0..g.num_nodes() as NodeId {
            let p = d.path_to(v).unwrap();
            assert_eq!(p.first().copied(), Some(2));
            assert_eq!(p.last().copied(), Some(v));
            assert_eq!(g.path_length(&p), d.distance(v));
        }
    }

    #[test]
    fn early_exit_settles_prefix_only() {
        let g = path_graph(100);
        let mut d = Dijkstra::new(g.num_nodes());
        let dist = d.run_to_target(&g, 0, 10);
        assert_eq!(dist, Some(10));
        assert_eq!(d.stats.settled, 11);
        assert!(!d.is_settled(50));
        assert_eq!(d.distance(50), None);
    }

    #[test]
    fn workspace_reuse_resets_state() {
        let g = figure1();
        let mut d = Dijkstra::new(g.num_nodes());
        d.run_to_target(&g, 0, 2);
        d.run(&g, 6);
        assert_eq!(d.source(), 6);
        assert_eq!(d.distance(6), Some(0));
        // Everything settled again with distances from v7.
        assert_eq!(d.distance(2), Some(6));
    }

    #[test]
    fn multi_target_counts_reached() {
        let g = path_graph(20);
        let mut d = Dijkstra::new(g.num_nodes());
        let reached = d.run_to_targets(&g, 0, &[3, 7, 7, 5], SearchScope::Full);
        assert_eq!(reached, 3); // dedup: {3, 5, 7}
        assert!(d.is_settled(7));
        assert!(!d.is_settled(15));
    }

    #[test]
    fn rect_scope_blocks_expansion() {
        use spq_graph::geo::{Point, Rect};
        let g = path_graph(10); // coords x = 0,10,...,90
        let rect = Rect::new(Point::new(0, 0), Point::new(35, 0));
        let mut d = Dijkstra::new(g.num_nodes());
        d.run_scoped(&g, 0, SearchScope::Rect(&rect), |_, _| false);
        // Nodes 0..=3 are inside; node 4 is settled (frontier endpoint)
        // but never expanded, so node 5 is unreachable.
        assert!(d.is_settled(4));
        assert_eq!(d.distance(4), Some(4));
        assert!(!d.is_settled(5));
    }

    #[test]
    fn excluding_vertices_forces_detours() {
        let g = figure1();
        let mut d = Dijkstra::new(g.num_nodes());
        // v3 -> v7 normally via v1/v8 with distance 6 (§3.2). Excluding
        // v8 (id 7) disconnects the left from the right component
        // entirely (Figure 5's path-coherent pair through v8).
        let mut excluded = vec![false; 8];
        excluded[7] = true;
        assert_eq!(d.run_to_target_excluding(&g, 2, 6, &excluded), None);
        // Excluding v1 (id 0) forces the v2 detour: v3-v2-v8-v6-v5-v7.
        let mut excluded = vec![false; 8];
        excluded[0] = true;
        assert_eq!(d.run_to_target_excluding(&g, 2, 6, &excluded), Some(7));
        // Excluding nothing reproduces the true distance.
        let excluded = vec![false; 8];
        assert_eq!(d.run_to_target_excluding(&g, 2, 6, &excluded), Some(6));
    }

    #[test]
    fn canonical_tie_break_prefers_small_parent() {
        // Diamond: 0-1 (1), 0-2 (1), 1-3 (1), 2-3 (1). Two optimal paths
        // to 3; canonical parent must be 1 (smaller id).
        use spq_graph::geo::Point;
        use spq_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(2, 3, 1);
        let g = b.build().unwrap();
        let mut d = Dijkstra::new(4);
        d.run(&g, 0);
        assert_eq!(d.parent(3), Some(1));
        assert_eq!(d.first_hop(3), Some(1));
    }
}
