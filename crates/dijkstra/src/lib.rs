//! Dijkstra's algorithm and the bidirectional Dijkstra baseline (§3.1).
//!
//! The paper uses bidirectional Dijkstra as the baseline technique and as
//! TNR's non-indexed fallback; plain one-to-all Dijkstra is the workhorse
//! inside SILC's and PCPD's preprocessing and TNR's access-node
//! computation. Both searches here keep their state in reusable,
//! version-stamped workspaces so repeated queries allocate nothing.
//!
//! # Example
//!
//! ```
//! use spq_graph::toy::figure1;
//! use spq_dijkstra::BiDijkstra;
//!
//! let g = figure1();
//! let mut search = BiDijkstra::new(g.num_nodes());
//! // v3 (id 2) to v7 (id 6): the paper's worked example, distance 6.
//! assert_eq!(search.distance(&g, 2, 6), Some(6));
//! let (d, path) = search.shortest_path(&g, 2, 6).unwrap();
//! assert_eq!(d, 6);
//! assert_eq!(g.path_length(&path), Some(6));
//! ```

pub mod backend;
pub mod bidirectional;
pub mod onetoall;

pub use backend::Baseline;
pub use bidirectional::BiDijkstra;
pub use onetoall::{Dijkstra, SearchScope};

/// Counters describing the work one query performed; the paper's analyses
/// ("Dijkstra has to visit all vertices closer to s than t", §1) are
/// statements about these numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices permanently settled (popped with final distance).
    pub settled: usize,
    /// Edge relaxations attempted.
    pub relaxed: usize,
}
