//! [`Backend`] implementation for the index-free baseline.
//!
//! Bidirectional Dijkstra needs no preprocessing, so the backend is a
//! unit struct; each session owns one [`BiDijkstra`] workspace sized for
//! the network, reused across every query the worker serves.

use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use crate::bidirectional::BiDijkstra;

/// The index-free bidirectional-Dijkstra backend (§3.1).
pub struct Baseline;

/// Per-thread baseline workspace: the search state plus the network.
pub struct BaselineSession<'a> {
    net: &'a RoadNetwork,
    search: BiDijkstra,
}

impl Backend for Baseline {
    fn backend_name(&self) -> &'static str {
        "Dijkstra"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(BaselineSession {
            net,
            search: BiDijkstra::new(net.num_nodes()),
        })
    }
}

impl Session for BaselineSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search.distance(self.net, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.search.shortest_path(self.net, s, t)
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.search.set_budget(budget);
    }

    fn interrupted(&self) -> bool {
        self.search.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn baseline_session_answers_like_the_workspace() {
        let g = figure1();
        let backend = Baseline;
        let mut session = backend.session(&g);
        let mut reference = BiDijkstra::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(session.distance(s, t), reference.distance(&g, s, t));
            }
        }
        let (d, path) = session.shortest_path(2, 6).unwrap();
        assert_eq!(d, 6);
        assert_eq!(g.path_length(&path), Some(6));
    }
}
