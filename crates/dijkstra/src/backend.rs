//! [`Backend`] implementation for the index-free baseline.
//!
//! Bidirectional Dijkstra needs no preprocessing, so the backend is a
//! unit struct; each session owns one [`BiDijkstra`] workspace sized for
//! the network, reused across every query the worker serves.

use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use crate::bidirectional::BiDijkstra;
use crate::onetoall::{Dijkstra, SearchScope};

/// The index-free bidirectional-Dijkstra backend (§3.1).
pub struct Baseline;

/// Per-thread baseline workspace: the search state plus the network.
/// The one-to-all workspace is created lazily — point-to-point-only
/// workers never pay for it.
pub struct BaselineSession<'a> {
    net: &'a RoadNetwork,
    search: BiDijkstra,
    oneall: Option<Dijkstra>,
    budget: QueryBudget,
    aux_interrupted: bool,
}

impl Backend for Baseline {
    fn backend_name(&self) -> &'static str {
        "Dijkstra"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(BaselineSession {
            net,
            search: BiDijkstra::new(net.num_nodes()),
            oneall: None,
            budget: QueryBudget::unlimited(),
            aux_interrupted: false,
        })
    }
}

impl Session for BaselineSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search.distance(self.net, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.search.shortest_path(self.net, s, t)
    }

    /// One full-graph search beats `targets.len()` bidirectional
    /// searches as soon as the target set is non-trivial; the search
    /// stops as early as the last requested target.
    fn one_to_many(&mut self, s: NodeId, targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        self.aux_interrupted = false;
        let d = self
            .oneall
            .get_or_insert_with(|| Dijkstra::new(self.net.num_nodes()));
        let mut sorted: Vec<NodeId> = targets.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut remaining = sorted.len();
        let mut budget = self.budget.clone();
        budget.reset();
        let mut interrupted = false;
        d.run_scoped(self.net, s, SearchScope::Full, |v, _| {
            if !budget.charge() {
                interrupted = true;
                return true;
            }
            if sorted.binary_search(&v).is_ok() {
                remaining -= 1;
                remaining == 0
            } else {
                false
            }
        });
        self.aux_interrupted = interrupted;
        out.clear();
        out.extend(targets.iter().map(|&t| d.distance(t)));
    }

    /// Truncated one-to-all search: the textbook range oracle.
    fn range(&mut self, s: NodeId, limit: Dist, out: &mut Vec<(NodeId, Dist)>) -> bool {
        self.aux_interrupted = false;
        let d = self
            .oneall
            .get_or_insert_with(|| Dijkstra::new(self.net.num_nodes()));
        let mut budget = self.budget.clone();
        budget.reset();
        let mut interrupted = false;
        d.run_scoped(self.net, s, SearchScope::Full, |_, dist| {
            if !budget.charge() {
                interrupted = true;
                return true;
            }
            dist > limit
        });
        self.aux_interrupted = interrupted;
        out.clear();
        for v in 0..self.net.num_nodes() as NodeId {
            if let Some(dist) = d.distance(v) {
                if dist <= limit {
                    out.push((v, dist));
                }
            }
        }
        true
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget.clone();
        self.search.set_budget(budget);
    }

    fn interrupted(&self) -> bool {
        self.search.budget_exhausted() || self.aux_interrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn baseline_session_answers_like_the_workspace() {
        let g = figure1();
        let backend = Baseline;
        let mut session = backend.session(&g);
        let mut reference = BiDijkstra::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(session.distance(s, t), reference.distance(&g, s, t));
            }
        }
        let (d, path) = session.shortest_path(2, 6).unwrap();
        assert_eq!(d, 6);
        assert_eq!(g.path_length(&path), Some(6));
    }

    #[test]
    fn one_to_many_matches_point_queries() {
        let g = figure1();
        let backend = Baseline;
        let mut session = backend.session(&g);
        let targets: Vec<NodeId> = (0..g.num_nodes() as NodeId).rev().collect();
        let mut out = Vec::new();
        session.one_to_many(2, &targets, &mut out);
        assert!(!session.interrupted());
        for (j, &t) in targets.iter().enumerate() {
            assert_eq!(out[j], session.distance(2, t), "target {t}");
        }
    }

    #[test]
    fn range_is_exact_and_sorted() {
        let g = figure1();
        let backend = Baseline;
        let mut session = backend.session(&g);
        let mut out = Vec::new();
        assert!(session.range(2, 3, &mut out));
        assert!(!session.interrupted());
        // Exactly the vertices whose distance from v3 is <= 3.
        for v in 0..g.num_nodes() as NodeId {
            let d = session.distance(2, v);
            let expect = d.filter(|&d| d <= 3).map(|d| (v, d));
            assert_eq!(out.iter().find(|&&(u, _)| u == v).copied(), expect);
        }
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
    }

    #[test]
    fn range_respects_budget() {
        let g = figure1();
        let backend = Baseline;
        let mut session = backend.session(&g);
        session.set_budget(QueryBudget::unlimited().with_node_cap(2));
        let mut out = Vec::new();
        assert!(session.range(2, 100, &mut out));
        assert!(session.interrupted(), "node cap must trip mid-search");
    }
}
