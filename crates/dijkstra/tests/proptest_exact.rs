//! Property: bidirectional Dijkstra agrees with unidirectional Dijkstra
//! on arbitrary connected graphs, and canonical first hops are
//! consistent with tree parents.

use proptest::prelude::*;
use spq_dijkstra::{BiDijkstra, Dijkstra};
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bidirectional_matches_unidirectional(net in small_connected_network()) {
        let mut uni = Dijkstra::new(net.num_nodes());
        let mut bi = BiDijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            uni.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(bi.distance(&net, s, t), uni.distance(t));
                let (d, path) = bi.shortest_path(&net, s, t).unwrap();
                prop_assert_eq!(Some(d), uni.distance(t));
                prop_assert_eq!(net.path_length(&path), uni.distance(t));
            }
        }
    }

    #[test]
    fn first_hops_follow_tree_parents(net in small_connected_network()) {
        let mut d = Dijkstra::new(net.num_nodes());
        d.run(&net, 0);
        for t in 1..net.num_nodes() as NodeId {
            // Walking parents from t must reach the source through the
            // recorded first hop.
            let mut cur = t;
            while let Some(p) = d.parent(cur) {
                if p == 0 {
                    prop_assert_eq!(d.first_hop(t), Some(cur));
                }
                cur = p;
            }
        }
    }
}
