//! Property: PCPD is exact on arbitrary connected graphs — every pair is
//! covered and every decomposition reassembles into an optimal path.

use proptest::prelude::*;
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;
use spq_pcpd::Pcpd;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_on_arbitrary_graphs(net in small_connected_network()) {
        let pcpd = Pcpd::build(&net);
        let mut q = pcpd.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                let (pd, path) = q.shortest_path(s, t).unwrap();
                prop_assert_eq!(Some(pd), d.distance(t));
                prop_assert_eq!(net.path_length(&path), d.distance(t));
            }
        }
    }
}
