//! PCPD preprocessing: recursive block-pair decomposition (paper §3.5
//! and Appendix D).

use std::collections::HashMap;

use spq_graph::geo::morton;
use spq_graph::size::IndexSize;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;

use crate::firsthop::FirstHopMatrix;

/// The element shared by all shortest paths of a path-coherent pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Psi {
    /// A vertex outside both regions (guarantees query progress).
    Vertex(NodeId),
    /// An oriented edge `(u, v)`: every covered path traverses u then v.
    Edge(NodeId, NodeId),
}

/// Key of a pair: quadtree depth plus the Morton prefixes of X and Y.
type PairKey = (u8, u64, u64);

/// The frozen PCPD index.
pub struct Pcpd {
    /// Morton code per vertex (coordinates normalised to u32).
    node_code: Vec<u64>,
    /// The path-coherent pairs, keyed by the region pair.
    pairs: HashMap<PairKey, Psi>,
    /// ψ for vertex pairs sharing one exact coordinate (cannot be
    /// separated by the quadtree).
    exceptions: HashMap<(NodeId, NodeId), Psi>,
    /// Bytes of the first-hop matrix used during preprocessing — *not*
    /// part of the shipped index, but reported for the preprocessing
    /// footprint.
    pub preprocessing_scratch_bytes: usize,
}

/// Morton prefix of `code` at `depth` (0 = root, 32 = full code).
#[inline]
fn prefix_of(code: u64, depth: u8) -> u64 {
    if depth == 0 {
        0
    } else {
        code >> (64 - 2 * depth as u32)
    }
}

impl Pcpd {
    /// Preprocesses `net`: computes the all-pairs first-hop matrix, then
    /// recursively splits region pairs until every pair of squares is
    /// path-coherent (the nested-loop test with early termination the
    /// paper describes in Appendix D).
    pub fn build(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let rect = net.bounding_rect();
        let node_code: Vec<u64> = (0..n as NodeId)
            .map(|v| {
                let p = net.coord(v);
                morton::encode(
                    (p.x as i64 - rect.min_x as i64) as u32,
                    (p.y as i64 - rect.min_y as i64) as u32,
                )
            })
            .collect();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_unstable_by_key(|&v| node_code[v as usize]);
        let sorted_codes: Vec<u64> = order.iter().map(|&v| node_code[v as usize]).collect();

        let hops = FirstHopMatrix::build(net);
        let mut pairs = HashMap::new();
        let mut exceptions = HashMap::new();

        // Work stack of (depth, x_range, y_range) over `order`.
        type WorkItem = (u8, (usize, usize), (usize, usize));
        let mut stack: Vec<WorkItem> = vec![(0, (0, n), (0, n))];
        let mut scratch = CommonScratch::default();
        while let Some((depth, xr, yr)) = stack.pop() {
            let (xlo, xhi) = xr;
            let (ylo, yhi) = yr;
            if xlo == xhi || ylo == yhi {
                continue;
            }
            let same_region = xlo == ylo && xhi == yhi;
            if same_region && xhi - xlo == 1 {
                continue; // a single vertex: queries are trivial
            }
            if !same_region {
                // Disjoint squares: run the common-element test.
                if let Some(psi) = common_element(
                    net,
                    &hops,
                    &node_code,
                    &order[xlo..xhi],
                    &order[ylo..yhi],
                    depth,
                    &mut scratch,
                ) {
                    let px = prefix_of(sorted_codes[xlo], depth);
                    let py = prefix_of(sorted_codes[ylo], depth);
                    pairs.insert((depth, px, py), psi);
                    continue;
                }
            }
            if depth == 32 {
                // Regions are single coordinates that cannot be split
                // further: a shared coordinate cell, or distinct cells
                // holding several coordinate-colliding vertices whose
                // paths share nothing. Either way, store per-pair
                // exceptions.
                for i in xlo..xhi {
                    for j in ylo..yhi {
                        let (a, b) = (order[i], order[j]);
                        if a == b {
                            continue;
                        }
                        exceptions.insert((a, b), exception_psi(net, &hops, a, b));
                    }
                }
                continue;
            }
            // Split both regions into quadrants -> 16 ordered child pairs.
            let xs = split4(&sorted_codes, xlo, xhi, depth);
            let ys = split4(&sorted_codes, ylo, yhi, depth);
            for &xc in &xs {
                for &yc in &ys {
                    stack.push((depth + 1, xc, yc));
                }
            }
        }

        Pcpd {
            node_code,
            pairs,
            exceptions,
            preprocessing_scratch_bytes: hops.size_bytes(),
        }
    }

    /// Number of stored path-coherent pairs (the paper's |S_pcp|).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// ψ of the unique pair covering `(s, t)`; `s != t`.
    pub(crate) fn lookup(&self, s: NodeId, t: NodeId) -> Psi {
        let cs = self.node_code[s as usize];
        let ct = self.node_code[t as usize];
        for depth in 0..=32u8 {
            let key = (depth, prefix_of(cs, depth), prefix_of(ct, depth));
            if let Some(&psi) = self.pairs.get(&key) {
                return psi;
            }
        }
        *self
            .exceptions
            .get(&(s, t))
            .expect("every distinct vertex pair is covered")
    }

    /// Creates a query workspace.
    pub fn query<'a>(&'a self, net: &'a RoadNetwork) -> crate::query::PcpdQuery<'a> {
        crate::query::PcpdQuery::new(self, net)
    }
}

/// Splits `order[lo..hi]` (already within one depth-`depth` block) into
/// the four Morton-order children.
fn split4(sorted_codes: &[u64], lo: usize, hi: usize, depth: u8) -> [(usize, usize); 4] {
    let child_depth = depth + 1;
    let mut out = [(lo, lo); 4];
    let mut start = lo;
    // Child q of the parent block: prefix = parent_prefix * 4 + q.
    let parent_prefix = prefix_of(sorted_codes[lo], depth);
    for q in 0..4u64 {
        let child_prefix = (parent_prefix << 2) | q;
        let end = start
            + sorted_codes[start..hi]
                .partition_point(|&c| prefix_of(c, child_depth) <= child_prefix);
        out[q as usize] = (start, end);
        start = end;
    }
    debug_assert_eq!(start, hi);
    out
}

/// Scratch buffers for the pair test (reused across pairs).
#[derive(Default)]
struct CommonScratch {
    candidates: Vec<Psi>,
    on_path_v: HashMap<NodeId, ()>,
    on_path_e: HashMap<(NodeId, NodeId), ()>,
    path: Vec<NodeId>,
}

/// How many sample canonical paths seed the candidate set. Spatial
/// coherence makes the intersection collapse after two or three paths;
/// more samples only shrink the candidate list further.
const SAMPLE_PATHS: usize = 4;

/// The path-coherent-pair test. Candidate ψ elements are harvested by
/// intersecting a handful of sampled canonical paths (the paper's
/// nested-loop with early termination, Appendix D); each surviving
/// candidate is then verified against *every* (x, y) pair with O(1)
/// distance-additivity lookups: ψ qualifies iff it lies on some shortest
/// x→y path for all pairs, which is precisely what query decomposition
/// needs. Candidate vertices exclude members of X and Y (so a query
/// endpoint can never equal ψ); candidate edges are kept oriented.
fn common_element(
    net: &RoadNetwork,
    hops: &FirstHopMatrix,
    node_code: &[u64],
    xs: &[NodeId],
    ys: &[NodeId],
    depth: u8,
    scratch: &mut CommonScratch,
) -> Option<Psi> {
    let px = prefix_of(node_code[xs[0] as usize], depth);
    let py = prefix_of(node_code[ys[0] as usize], depth);
    let in_regions = |v: NodeId| {
        let p = prefix_of(node_code[v as usize], depth);
        p == px || p == py
    };
    let CommonScratch {
        candidates,
        on_path_v,
        on_path_e,
        path,
    } = scratch;

    // Phase 1: seed candidates from up to SAMPLE_PATHS corner-ish pairs.
    let sample_pairs = || {
        let mut out: Vec<(NodeId, NodeId)> = Vec::with_capacity(SAMPLE_PATHS);
        for (i, &x) in [xs[0], xs[xs.len() - 1]].iter().enumerate() {
            for (j, &y) in [ys[0], ys[ys.len() - 1]].iter().enumerate() {
                if (i == 0 || xs.len() > 1) && (j == 0 || ys.len() > 1) && x != y {
                    out.push((x, y));
                }
            }
        }
        out.dedup();
        out
    };
    candidates.clear();
    let mut first = true;
    for (x, y) in sample_pairs() {
        path.clear();
        hops.walk(net, x, y, |v| path.push(v));
        if first {
            first = false;
            // Edges first: they guarantee query progress.
            candidates.extend(path.windows(2).map(|w| Psi::Edge(w[0], w[1])));
            candidates.extend(
                path.iter()
                    .copied()
                    .filter(|&v| !in_regions(v))
                    .map(Psi::Vertex),
            );
            continue;
        }
        on_path_v.clear();
        on_path_e.clear();
        for &v in path.iter() {
            on_path_v.insert(v, ());
        }
        for w in path.windows(2) {
            on_path_e.insert((w[0], w[1]), ());
        }
        candidates.retain(|c| match c {
            Psi::Vertex(v) => on_path_v.contains_key(v),
            Psi::Edge(u, v) => on_path_e.contains_key(&(*u, *v)),
        });
        if candidates.is_empty() {
            return None;
        }
    }

    // Phase 2: verify each candidate by distance additivity over all
    // (x, y) pairs; first survivor wins (edges were queued first).
    'cand: for &c in candidates.iter() {
        match c {
            Psi::Edge(u, v) => {
                let w = net.edge_weight(u, v).expect("path edge exists") as u64;
                for &x in xs {
                    for &y in ys {
                        if x == y {
                            continue;
                        }
                        if hops.dist(x, u) + w + hops.dist(v, y) != hops.dist(x, y) {
                            continue 'cand;
                        }
                    }
                }
                return Some(c);
            }
            Psi::Vertex(m) => {
                for &x in xs {
                    for &y in ys {
                        if x == y {
                            continue;
                        }
                        if hops.dist(x, m) + hops.dist(m, y) != hops.dist(x, y) {
                            continue 'cand;
                        }
                    }
                }
                return Some(c);
            }
        }
    }
    None
}

/// ψ for a same-coordinate exception pair: the middle of the canonical
/// path (or its single edge).
fn exception_psi(net: &RoadNetwork, hops: &FirstHopMatrix, a: NodeId, b: NodeId) -> Psi {
    let path = hops.path(net, a, b);
    if path.len() == 2 {
        Psi::Edge(path[0], path[1])
    } else {
        Psi::Vertex(path[path.len() / 2])
    }
}

impl IndexSize for Pcpd {
    fn index_size_bytes(&self) -> usize {
        // HashMap entries: key (u8, u64, u64) padded to 24 bytes, value
        // 12 bytes, plus hashbrown's control byte and load-factor slack
        // (~1/0.85). A deliberate estimate, matching how the paper
        // accounts hash-table structures (Appendix D).
        let pair_entry = (24 + 12 + 1) as f64 / 0.85;
        let exc_entry = (8 + 12 + 1) as f64 / 0.85;
        self.node_code.len() * 8
            + (self.pairs.len() as f64 * pair_entry) as usize
            + (self.exceptions.len() as f64 * exc_entry) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn figure5_pair_through_v8() {
        // §3.5 / Figure 5: every path from {v1, v2, v3} (left) to
        // {v4..v7} (right) passes through v8. The decomposition must
        // discover ψ involving v8 for left-right block pairs.
        let g = figure1();
        let pcpd = Pcpd::build(&g);
        assert!(pcpd.num_pairs() > 0);
        // v3 (id 2) to v7 (id 6): the covering pair's ψ must be v8
        // (vertex or an edge incident to it) — every left-right path
        // shares only v8's neighbourhood.
        let psi = pcpd.lookup(2, 6);
        match psi {
            Psi::Vertex(m) => assert_eq!(m, 7, "ψ must involve v8, got {psi:?}"),
            Psi::Edge(u, v) => {
                assert!(u == 7 || v == 7, "ψ must involve v8, got {psi:?}")
            }
        }
    }

    #[test]
    fn every_pair_is_covered() {
        let g = figure1();
        let pcpd = Pcpd::build(&g);
        for s in 0..8 {
            for t in 0..8 {
                if s != t {
                    let _ = pcpd.lookup(s, t); // must not panic
                }
            }
        }
    }

    #[test]
    fn psi_lies_on_a_shortest_path() {
        use spq_dijkstra::Dijkstra;
        let g = figure1();
        let pcpd = Pcpd::build(&g);
        let mut d = Dijkstra::new(8);
        for s in 0..8u32 {
            d.run(&g, s);
            let dist_s: Vec<_> = (0..8).map(|t| d.distance(t).unwrap()).collect();
            for t in 0..8u32 {
                if s == t {
                    continue;
                }
                let mut dt = Dijkstra::new(8);
                dt.run(&g, t);
                match pcpd.lookup(s, t) {
                    Psi::Vertex(m) => {
                        assert_ne!(m, s);
                        assert_ne!(m, t);
                        assert_eq!(
                            dist_s[m as usize] + dt.distance(m).unwrap(),
                            dist_s[t as usize],
                            "vertex ψ additive for ({s},{t})"
                        );
                    }
                    Psi::Edge(u, v) => {
                        let w = g.edge_weight(u, v).expect("ψ edge exists") as u64;
                        assert_eq!(
                            dist_s[u as usize] + w + dt.distance(v).unwrap(),
                            dist_s[t as usize],
                            "edge ψ additive for ({s},{t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_coordinates_use_exceptions() {
        use spq_graph::geo::Point;
        use spq_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(5, 5));
        b.add_node(Point::new(5, 5)); // same coordinate as node 1
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build().unwrap();
        let pcpd = Pcpd::build(&g);
        // (1, 2) share a coordinate: covered via the exception table.
        assert_eq!(pcpd.lookup(1, 2), Psi::Edge(1, 2));
        assert_eq!(pcpd.lookup(2, 1), Psi::Edge(2, 1));
    }
}
