//! Dense all-pairs first-hop and distance matrices.
//!
//! PCPD's preprocessing tests, for region pairs (X, Y), whether some
//! element ψ lies on a shortest path between every `x ∈ X` and `y ∈ Y`.
//! Candidates are harvested by walking a few canonical paths (via the
//! first-hop matrix); each candidate is then *verified* against all
//! pairs with O(1) distance-additivity checks (`dist(x, ψ) + dist(ψ, y)
//! == dist(x, y)`) — the nested-loop test of the paper's Appendix D with
//! the path walks replaced by table lookups.
//!
//! The O(n²) bytes are exactly the all-pairs cost that confines PCPD
//! (like SILC) to the paper's four smallest datasets.

use spq_dijkstra::Dijkstra;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

/// Sentinel for the diagonal (no hop from a vertex to itself).
pub const NO_HOP: u8 = u8::MAX;

/// Row-major `n × n` matrices of first-hop adjacency indices and
/// distances.
pub struct FirstHopMatrix {
    n: usize,
    hops: Vec<u8>,
    dists: Vec<u32>,
}

impl FirstHopMatrix {
    /// Computes both matrices with one canonical Dijkstra per source.
    pub fn build(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        assert!(
            n <= 24_000,
            "the dense all-pairs matrices are O(n^2) bytes; \
                 PCPD, like the paper, is limited to small networks"
        );
        let mut hops = vec![NO_HOP; n * n];
        let mut dists = vec![0u32; n * n];
        let mut dijkstra = Dijkstra::new(n);
        for v in 0..n as NodeId {
            dijkstra.run(net, v);
            let row_h = &mut hops[v as usize * n..(v as usize + 1) * n];
            let row_d = &mut dists[v as usize * n..(v as usize + 1) * n];
            for u in 0..n as NodeId {
                if let Some(h) = dijkstra.first_hop(u) {
                    row_h[u as usize] =
                        net.neighbors(v)
                            .position(|(to, _)| to == h)
                            .expect("first hop is a neighbour") as u8;
                }
                row_d[u as usize] = u32::try_from(dijkstra.distance(u).expect("connected network"))
                    .expect("road-network distances fit u32");
            }
        }
        FirstHopMatrix { n, hops, dists }
    }

    /// Adjacency index of the first hop from `u` toward `t`
    /// (`NO_HOP` iff `u == t`).
    #[inline]
    pub fn hop_index(&self, u: NodeId, t: NodeId) -> u8 {
        self.hops[u as usize * self.n + t as usize]
    }

    /// Exact network distance between `u` and `t`.
    #[inline]
    pub fn dist(&self, u: NodeId, t: NodeId) -> Dist {
        self.dists[u as usize * self.n + t as usize] as Dist
    }

    /// The first-hop *vertex* from `u` toward `t`.
    #[inline]
    pub fn hop(&self, net: &RoadNetwork, u: NodeId, t: NodeId) -> Option<NodeId> {
        let idx = self.hop_index(u, t);
        if idx == NO_HOP {
            return None;
        }
        net.neighbors(u).nth(idx as usize).map(|(v, _)| v)
    }

    /// Walks the canonical path from `s` to `t`, invoking `visit` for
    /// every vertex in order (including both endpoints).
    pub fn walk(&self, net: &RoadNetwork, s: NodeId, t: NodeId, mut visit: impl FnMut(NodeId)) {
        let mut cur = s;
        visit(cur);
        while cur != t {
            cur = self.hop(net, cur, t).expect("connected network");
            visit(cur);
        }
    }

    /// The canonical path as a vector.
    pub fn path(&self, net: &RoadNetwork, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let mut p = Vec::new();
        self.walk(net, s, t, |v| p.push(v));
        p
    }

    /// Matrix size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.hops.len() + self.dists.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn walks_are_shortest_paths() {
        let g = grid_graph(6, 6);
        let m = FirstHopMatrix::build(&g);
        let mut d = Dijkstra::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            d.run(&g, s);
            for t in 0..g.num_nodes() as NodeId {
                let p = m.path(&g, s, t);
                assert_eq!(p.first().copied(), Some(s));
                assert_eq!(p.last().copied(), Some(t));
                assert_eq!(g.path_length(&p), d.distance(t));
                assert_eq!(Some(m.dist(s, t)), d.distance(t));
            }
        }
    }

    #[test]
    fn diagonal_has_no_hop() {
        let g = figure1();
        let m = FirstHopMatrix::build(&g);
        for v in 0..8 {
            assert_eq!(m.hop_index(v, v), NO_HOP);
            assert_eq!(m.dist(v, v), 0);
            assert_eq!(m.path(&g, v, v), vec![v]);
        }
    }

    #[test]
    fn canonical_suffix_property() {
        // Walking s -> t and then continuing from an interior vertex u
        // gives the same remaining path (each step depends only on the
        // current vertex and t).
        let g = grid_graph(5, 7);
        let m = FirstHopMatrix::build(&g);
        let p = m.path(&g, 0, 34);
        for (i, &u) in p.iter().enumerate() {
            assert_eq!(m.path(&g, u, 34), p[i..].to_vec());
        }
    }

    #[test]
    fn additivity_detects_on_path_vertices() {
        let g = figure1();
        let m = FirstHopMatrix::build(&g);
        // v8 (7) is on every shortest path v3 (2) -> v7 (6).
        assert_eq!(m.dist(2, 7) + m.dist(7, 6), m.dist(2, 6));
        // v4 (3) is not.
        assert!(m.dist(2, 3) + m.dist(3, 6) > m.dist(2, 6));
    }
}
