//! PCPD query processing: recursive decomposition at ψ (paper §3.5).

use spq_graph::backend::QueryBudget;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use crate::index::{Pcpd, Psi};

/// Work items of the iterative in-order decomposition.
enum Item {
    /// A path segment still to be decomposed.
    Seg(NodeId, NodeId),
    /// An edge endpoint ready to be appended.
    Emit(NodeId, Dist),
}

/// Reusable PCPD query workspace.
pub struct PcpdQuery<'a> {
    pcpd: &'a Pcpd,
    net: &'a RoadNetwork,
    stack: Vec<Item>,
    /// Budget charged once per ψ lookup. Besides deadlines, this bounds
    /// the decomposition on a defective index (whose recursion would
    /// otherwise never bottom out).
    budget: QueryBudget,
    /// Pair lookups performed by the most recent query (the paper's
    /// O(k) bound).
    pub last_lookups: usize,
}

impl<'a> PcpdQuery<'a> {
    /// Creates a workspace over an index and its network.
    pub fn new(pcpd: &'a Pcpd, net: &'a RoadNetwork) -> Self {
        PcpdQuery {
            pcpd,
            net,
            stack: Vec::new(),
            budget: QueryBudget::unlimited(),
            last_lookups: 0,
        }
    }

    /// Installs the cancellation budget subsequent queries run under
    /// (one charge per ψ lookup). The default is unlimited.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`PcpdQuery::set_budget`] was cut
    /// short by the budget (its `None` is an abort, not "unreachable").
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Shortest-path query (§2): O(k) pair lookups.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.last_lookups = 0;
        let mut path = vec![s];
        let mut total: Dist = 0;
        self.stack.clear();
        self.stack.push(Item::Seg(s, t));
        while let Some(item) = self.stack.pop() {
            match item {
                Item::Emit(v, w) => {
                    path.push(v);
                    total += w;
                }
                Item::Seg(a, b) => {
                    if a == b {
                        continue;
                    }
                    if !self.budget.charge() {
                        return None;
                    }
                    self.last_lookups += 1;
                    match self.pcpd.lookup(a, b) {
                        Psi::Vertex(m) => {
                            // In-order: expand (a, m) first.
                            self.stack.push(Item::Seg(m, b));
                            self.stack.push(Item::Seg(a, m));
                        }
                        Psi::Edge(u, v) => {
                            let w = self
                                .net
                                .edge_weight(u, v)
                                .expect("ψ edges exist in the network")
                                as Dist;
                            self.stack.push(Item::Seg(v, b));
                            self.stack.push(Item::Emit(v, w));
                            self.stack.push(Item::Seg(a, u));
                        }
                    }
                }
            }
        }
        Some((total, path))
    }

    /// Distance query (§2): like SILC, PCPD "first computes the shortest
    /// path between s and t, and then returns the length of the path"
    /// (§3.5).
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.shortest_path(s, t).map(|(d, _)| d)
    }
}

// ---------------------------------------------------------------------------
// spq-serve integration: PCPD behind the unified backend interface.

impl spq_graph::backend::Backend for Pcpd {
    fn backend_name(&self) -> &'static str {
        "PCPD"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn spq_graph::backend::Session + 'a> {
        Box::new(self.query(net))
    }
}

impl spq_graph::backend::Session for PcpdQuery<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        PcpdQuery::distance(self, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        PcpdQuery::shortest_path(self, s, t)
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        PcpdQuery::set_budget(self, budget);
    }

    fn interrupted(&self) -> bool {
        self.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    fn check_all_pairs(net: &RoadNetwork) {
        let pcpd = Pcpd::build(net);
        let mut q = pcpd.query(net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(net, s);
            for t in 0..net.num_nodes() as NodeId {
                let expect = d.distance(t);
                let (pd, path) = q.shortest_path(s, t).unwrap();
                assert_eq!(Some(pd), expect, "length ({s},{t})");
                assert_eq!(path.first().copied(), Some(s));
                assert_eq!(path.last().copied(), Some(t));
                assert_eq!(net.path_length(&path), expect, "valid ({s},{t})");
            }
        }
    }

    #[test]
    fn figure1_all_pairs_exact() {
        check_all_pairs(&figure1());
    }

    #[test]
    fn grid_all_pairs_exact() {
        check_all_pairs(&grid_graph(8, 6));
    }

    #[test]
    fn synthetic_random_pairs_exact() {
        let net = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(500, 71));
        let pcpd = Pcpd::build(&net);
        let mut q = pcpd.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = 1234u64;
        for _ in 0..60 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let t = ((state >> 33) % n) as NodeId;
            d.run_to_target(&net, s, t);
            assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
        }
    }

    #[test]
    fn lookups_scale_with_path_length() {
        let net = grid_graph(16, 4);
        let pcpd = Pcpd::build(&net);
        let mut q = pcpd.query(&net);
        let (_, path) = q.shortest_path(0, 63).unwrap();
        // O(k): each edge costs at most a couple of lookups.
        assert!(
            q.last_lookups <= 3 * path.len(),
            "{} lookups for {} vertices",
            q.last_lookups,
            path.len()
        );
        q.shortest_path(3, 3).unwrap();
        assert_eq!(q.last_lookups, 0);
    }
}
