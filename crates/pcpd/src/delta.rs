//! The δ-redundancy measurement of the paper's Appendix C / Table 2.
//!
//! PCPD's O(n) space bound assumes δ-redundant networks: every
//! *core-disjoint* alternative path (sharing no interior vertex with the
//! shortest path) is at least δ times longer. Table 2 shows that on real
//! road networks the observed upper bound on δ is essentially 1, which
//! makes the bound's constant factor `(2 + 2/(δ-1))²` explode — the
//! explanation for PCPD's disappointing practical space use.

use spq_dijkstra::{BiDijkstra, Dijkstra};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

/// One (s, t) observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaSample {
    /// Length of the shortest path.
    pub shortest: Dist,
    /// Length of the shortest core-disjoint alternative, if any exists.
    pub core_disjoint: Option<Dist>,
}

impl DeltaSample {
    /// `length(P') / length(P)`, the per-pair upper bound on δ.
    pub fn ratio(&self) -> Option<f64> {
        let cd = self.core_disjoint?;
        if self.shortest == 0 {
            return None;
        }
        Some(cd as f64 / self.shortest as f64)
    }
}

/// Measures one query pair: computes the shortest path P, removes its
/// interior vertices, and re-searches for the shortest core-disjoint
/// path P'.
pub struct DeltaMeter<'a> {
    net: &'a RoadNetwork,
    bidi: BiDijkstra,
    excluded_search: Dijkstra,
    excluded: Vec<bool>,
}

impl<'a> DeltaMeter<'a> {
    /// Creates a meter for `net`.
    pub fn new(net: &'a RoadNetwork) -> Self {
        DeltaMeter {
            net,
            bidi: BiDijkstra::new(net.num_nodes()),
            excluded_search: Dijkstra::new(net.num_nodes()),
            excluded: vec![false; net.num_nodes()],
        }
    }

    /// Measures the pair `(s, t)`.
    pub fn measure(&mut self, s: NodeId, t: NodeId) -> Option<DeltaSample> {
        if s == t {
            return None;
        }
        let (shortest, path) = self.bidi.shortest_path(self.net, s, t)?;
        for &v in &path[1..path.len() - 1] {
            self.excluded[v as usize] = true;
        }
        let core_disjoint =
            self.excluded_search
                .run_to_target_excluding(self.net, s, t, &self.excluded);
        for &v in &path[1..path.len() - 1] {
            self.excluded[v as usize] = false;
        }
        Some(DeltaSample {
            shortest,
            core_disjoint,
        })
    }

    /// The minimum observed ratio over a set of query pairs — Table 2's
    /// "min length(P')/length(P)" per dataset. `None` if no pair had a
    /// core-disjoint alternative.
    pub fn min_ratio(&mut self, pairs: &[(NodeId, NodeId)]) -> Option<f64> {
        pairs
            .iter()
            .filter_map(|&(s, t)| self.measure(s, t)?.ratio())
            .min_by(|a, b| a.partial_cmp(b).expect("ratios are finite"))
    }
}

/// The constant factor `(2 + 2/(δ-1))²` of PCPD's space bound
/// (Appendix C), exploding as δ → 1.
pub fn pcpd_space_constant(delta: f64) -> f64 {
    let base: f64 = 2.0 + 2.0 / (delta - 1.0);
    base * base
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::{figure1, grid_graph, path_graph};

    #[test]
    fn figure1_v3_v7_has_no_core_disjoint_path() {
        // Every v3 -> v7 path passes v8, so removing the shortest path's
        // interior disconnects the pair.
        let g = figure1();
        let mut m = DeltaMeter::new(&g);
        let sample = m.measure(2, 6).unwrap();
        assert_eq!(sample.shortest, 6);
        assert_eq!(sample.core_disjoint, None);
        assert_eq!(sample.ratio(), None);
    }

    #[test]
    fn adjacent_vertices_can_have_disjoint_alternatives() {
        // On a grid, (0, 1) has the direct edge (interior empty) and the
        // detour 0-w-? ... the shortest path is the single edge, whose
        // interior is empty, so the "core-disjoint" rerun finds the same
        // distance... no: the rerun may reuse the edge. Per the paper,
        // P' must share no *vertex* with P's interior; with an empty
        // interior P' is the same path. Ratio 1 — exactly the near-1
        // values Table 2 reports.
        let g = grid_graph(4, 4);
        let mut m = DeltaMeter::new(&g);
        let sample = m.measure(0, 1).unwrap();
        assert_eq!(sample.ratio(), Some(1.0));
    }

    #[test]
    fn path_graph_has_no_alternatives() {
        let g = path_graph(10);
        let mut m = DeltaMeter::new(&g);
        assert_eq!(m.measure(0, 9).unwrap().core_disjoint, None);
        assert_eq!(m.min_ratio(&[(0, 9), (1, 5)]), None);
    }

    #[test]
    fn grid_min_ratio_is_close_to_one() {
        // Dense grids offer near-equal parallel routes: the Table 2
        // phenomenon.
        let g = grid_graph(8, 8);
        let pairs: Vec<(NodeId, NodeId)> = (0..8).map(|i| (i, 63 - i)).collect();
        let mut m = DeltaMeter::new(&g);
        let r = m.min_ratio(&pairs).unwrap();
        assert!(r >= 1.0);
        assert!(r < 1.5, "grid detours are cheap, got {r}");
    }

    #[test]
    fn space_constant_explodes_near_one() {
        assert!(pcpd_space_constant(1.001) > 1_000_000.0);
        assert!(pcpd_space_constant(2.0) < 17.0);
        assert!(pcpd_space_constant(3.0) < 10.0);
    }

    #[test]
    fn self_pair_yields_nothing() {
        let g = figure1();
        let mut m = DeltaMeter::new(&g);
        assert!(m.measure(3, 3).is_none());
    }
}
