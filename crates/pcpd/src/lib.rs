//! Path-Coherent Pairs Decomposition (PCPD), the spatial-coherence index
//! of Sankaranarayanan et al. evaluated as the paper's §3.5 technique.
//!
//! PCPD pre-computes a set of *path-coherent pairs*: triplets
//! `(X, Y, ψ)` of two disjoint square regions and an element `ψ` (a
//! vertex or an edge) lying on the shortest path from any vertex in `X`
//! to any vertex in `Y`. Any two vertices are covered by exactly one
//! pair, found by a simultaneous quadtree descent. A shortest-path query
//! recursively decomposes `(s, t)` at the covering pair's `ψ` — O(k)
//! lookups of O(log n) each. Distance queries, as with SILC, compute the
//! path and sum it (§3.5).
//!
//! The crate also houses the δ-redundancy measurement of Appendix C
//! ([`delta`]), which explains PCPD's blown-up space constant on real
//! road networks (Table 2).
//!
//! # Example
//!
//! ```
//! use spq_graph::toy::figure1;
//! use spq_pcpd::Pcpd;
//!
//! let g = figure1();
//! let pcpd = Pcpd::build(&g);
//! let mut q = pcpd.query(&g);
//! let (d, path) = q.shortest_path(2, 6).unwrap(); // v3 -> v7
//! assert_eq!(d, 6);
//! assert_eq!(g.path_length(&path), Some(6));
//! ```

pub mod delta;
pub mod firsthop;
pub mod index;
pub mod query;

pub use index::Pcpd;
pub use query::PcpdQuery;
