//! Socket-level coverage for the hub-labeling backend: `--backends hl`
//! answers DISTANCE and DISTANCES correctly over the wire, survives a
//! RELOAD epoch swap onto a different network, and participates in the
//! auditor's quarantine failover chain like every other wire id.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::backend::{Backend, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{AuditConfig, BackendKind, Engine, ReloadFactory, ServeClient};
use spq_synth::SynthParams;

fn synth(seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(150),
        seed,
    ))
}

fn sample_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = n as u64;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n
    };
    (0..count)
        .map(|_| (next() as NodeId, next() as NodeId))
        .collect()
}

fn oracle_distances(net: &RoadNetwork, pairs: &[(NodeId, NodeId)]) -> Vec<Option<Dist>> {
    let mut d = Dijkstra::new(net.num_nodes());
    pairs
        .iter()
        .map(|&(s, t)| {
            d.run_to_target(net, s, t);
            d.distance(t)
        })
        .collect()
}

/// A backend whose answers are always wrong — stands in for an HL index
/// silently gone bad after startup, so the audit has something to catch.
struct Lying;
struct LyingSession;

impl Backend for Lying {
    fn backend_name(&self) -> &'static str {
        "Lying"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(LyingSession)
    }
}

impl Session for LyingSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        Some(1)
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        Some((1, vec![s, t]))
    }
}

#[test]
fn hl_serves_reloads_and_fails_over_like_any_wire_id() {
    // ---- Phase 1: --backends hl answers DISTANCE and DISTANCES. ----
    let net_a = synth(0x0b5e55ed);
    let net_b = synth(0x0b5e55ed ^ 0x5EED_CAFE);
    let kinds = [BackendKind::Dijkstra, BackendKind::Ch, BackendKind::Hl];
    let engine = Arc::new(Engine::build(net_a.clone(), &kinds));
    engine.self_check(16, 3).expect("clean HL engine");
    let factory_net = net_b.clone();
    let factory = ReloadFactory::new(move || {
        Ok(Arc::new(Engine::build(
            factory_net.clone(),
            &[BackendKind::Dijkstra, BackendKind::Ch, BackendKind::Hl],
        )))
    });
    let cfg = ServerConfig {
        workers: 2,
        reload_factory: Some(factory),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    let pairs = sample_pairs(net_a.num_nodes().min(net_b.num_nodes()), 14);
    let d_a = oracle_distances(&net_a, &pairs);
    for (k, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(
            client.distance(BackendKind::Hl, s, t).expect("DISTANCE"),
            d_a[k],
            "hl DISTANCE disagrees with the oracle on ({s}, {t})"
        );
    }
    let sources: Vec<NodeId> = pairs.iter().take(4).map(|&(s, _)| s).collect();
    let targets: Vec<NodeId> = pairs.iter().take(5).map(|&(_, t)| t).collect();
    let table = client
        .distances(BackendKind::Hl, &sources, &targets)
        .expect("DISTANCES");
    assert_eq!(table.len(), sources.len() * targets.len());
    for (i, &s) in sources.iter().enumerate() {
        for (j, &t) in targets.iter().enumerate() {
            let single = client.distance(BackendKind::Hl, s, t).expect("single");
            assert_eq!(
                table[i * targets.len() + j],
                single,
                "hl batch disagrees with its own point answer on ({s}, {t})"
            );
        }
    }

    // ---- Phase 2: a RELOAD epoch swap re-labels the new network. ----
    let epoch = client.reload().expect("RELOAD");
    assert_eq!(epoch, 1);
    let d_b = oracle_distances(&net_b, &pairs);
    // Two rounds: the second is a cache hit by construction, so a stale
    // epoch-A label answer would surface here.
    for round in 0..2 {
        for (k, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(
                client.distance(BackendKind::Hl, s, t).expect("post-swap"),
                d_b[k],
                "post-swap hl answer for ({s}, {t}) in round {round} \
                 must come from the new epoch's labels"
            );
        }
    }
    client.shutdown_server().expect("shutdown frame");
    server.join();

    // ---- Phase 3: a rotten HL slot is quarantined and fails over. ----
    let engine = Arc::new(
        Engine::build(net_a.clone(), &[BackendKind::Dijkstra, BackendKind::Ch])
            .with_backend(BackendKind::Hl, Box::new(Lying)),
    );
    let cfg = ServerConfig {
        workers: 2,
        audit: Some(AuditConfig {
            interval: Duration::from_millis(100),
            queries: 6,
            threshold: 3,
            ..AuditConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s = client.stats().expect("stats");
        if s.contains("quarantined: Lying") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the audit failed to quarantine the rotten hl slot:\n{s}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The hl wire id keeps answering — now via the failover chain (CH),
    // and correctly.
    for (k, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(
            client.distance(BackendKind::Hl, s, t).expect("failover"),
            d_a[k],
            "quarantined hl wire id must fail over to oracle answers ({s}, {t})"
        );
    }
    client.shutdown_server().expect("shutdown frame");
    server.join();
}
