//! Deterministic chaos suite for the serving subsystem.
//!
//! Every fault here flows from a fixed seed ([`FaultPlan`] for
//! server-side latency/drops, [`FaultInjector::corrupt`] for mangled
//! request frames and index files), so a failing run replays
//! identically — a chaos failure is a test case, not a flake. The
//! invariants under fault load:
//!
//! 1. availability: retrying clients always converge to an answer;
//! 2. correctness: every OK answer equals the Dijkstra oracle — faults
//!    may slow or kill a request, never falsify it;
//! 3. overload sheds (BUSY) instead of hanging;
//! 4. shutdown drains in-flight work within the grace window, then
//!    force-closes stragglers;
//! 5. damaged index files degrade the engine with typed reasons instead
//!    of serving garbage;
//! 6. every thread joins — a hang here is a test-timeout failure.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_serve::loadgen::{self, LoadgenOptions};
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{
    BackendKind, BackendSpec, ClientError, Engine, FaultInjector, FaultPlan, RetryPolicy,
    RetryingClient, ServeClient,
};
use spq_synth::SynthParams;

fn test_net(target: usize, seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(target),
        seed,
    ))
}

/// Deterministic sample pairs spread over the vertex range.
fn sample_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = n as u64;
    let mut state = 0xdead_beef_0042_4242u64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % n) as NodeId;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % n) as NodeId;
            (s, t)
        })
        .collect()
}

fn field(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
}

/// A backend that sleeps a fixed time per query — makes queueing
/// observable. Not oracle-correct (constant answers), so tests using it
/// never claim answer correctness.
struct SlowBackend(Duration);
struct SlowSession(Duration);

impl Backend for SlowBackend {
    fn backend_name(&self) -> &'static str {
        "Slow"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(SlowSession(self.0))
    }
}

impl Session for SlowSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        std::thread::sleep(self.0);
        Some(1)
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        std::thread::sleep(self.0);
        Some((1, vec![s, t]))
    }
}

/// A backend that spins until its budget trips (deadline or kill flag)
/// — models a query too expensive to ever finish. A 10-second wall
/// fuse keeps a buggy server from hanging the whole suite.
struct StuckBackend;
struct StuckSession {
    budget: QueryBudget,
    tripped: bool,
}

impl Backend for StuckBackend {
    fn backend_name(&self) -> &'static str {
        "Stuck"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(StuckSession {
            budget: QueryBudget::unlimited(),
            tripped: false,
        })
    }
}

impl Session for StuckSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        self.budget.reset();
        self.tripped = false;
        let fuse = Instant::now() + Duration::from_secs(10);
        loop {
            if !self.budget.charge() {
                self.tripped = true;
                return None;
            }
            if Instant::now() >= fuse {
                return Some(1);
            }
        }
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.distance(s, t).map(|d| (d, vec![s, t]))
    }
    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }
    fn interrupted(&self) -> bool {
        self.tripped
    }
}

/// The headline chaos run: injected latency, injected connection drops,
/// and client-side corrupted frames, all seeded. Retrying clients must
/// still converge on the oracle answer for every single pair.
#[test]
fn chaos_sweep_stays_available_and_never_wrong() {
    let net = test_net(300, 0xc4a05);
    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch],
    ));
    engine.self_check(16, 3).expect("clean engine");
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        seed: 0xBAD5EED,
        latency_prob: 0.2,
        latency: Duration::from_millis(2),
        drop_prob: 0.15,
    }));
    let cfg = ServerConfig {
        workers: 2,
        fault: Some(Arc::clone(&injector)),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    // Phase 1: oracle-checked queries through a retrying client. The
    // injected drops force reconnects; the answers must never change.
    let pairs = sample_pairs(net.num_nodes(), 60);
    let mut oracle = Dijkstra::new(net.num_nodes());
    let mut client = RetryingClient::new(
        addr,
        RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 0x7e57,
        },
    );
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let kind = if i % 2 == 0 {
            BackendKind::Dijkstra
        } else {
            BackendKind::Ch
        };
        let got = client.distance(kind, s, t).expect("chaos must not starve");
        oracle.run_to_target(&net, s, t);
        assert_eq!(
            got,
            oracle.distance(t),
            "wrong answer under chaos ({s},{t})"
        );
    }
    assert!(injector.drops() > 0, "the drop fault must have fired");
    assert!(injector.delays() > 0, "the latency fault must have fired");
    assert!(client.retries > 0, "drops must have caused retries");
    // A connected client pins a worker; release it before the next
    // phase so the pool (2 workers) never fills up with idle pins.
    drop(client);

    // Phase 2: corrupted request frames. Each elicits an error frame,
    // a (possibly wrong-vertex but genuine) answer, or a drop — never
    // a crash. The connection is rebuilt on demand.
    let template = spq_serve::protocol::Request::Distance {
        backend: BackendKind::Ch.wire_id(),
        s: pairs[0].0,
        t: pairs[0].1,
        deadline_ms: 0,
    }
    .encode();
    let mut raw = ServeClient::connect(addr).expect("connect raw");
    for round in 0..40u64 {
        let mangled = FaultInjector::corrupt(&template, round);
        if mangled.first() == Some(&spq_serve::protocol::op::SHUTDOWN) {
            // The one opcode with side effects; a bit flip that forges
            // it would end the test early by design, not by bug.
            continue;
        }
        if raw.roundtrip_raw(&mangled).is_err() {
            raw = ServeClient::connect(addr).expect("reconnect after drop");
        }
    }
    drop(raw);

    // Phase 3: the server is still healthy and joins cleanly.
    let mut check = RetryingClient::new(addr, RetryPolicy::default());
    check.ping().expect("server alive after chaos");
    let (s0, t0) = pairs[0];
    oracle.run_to_target(&net, s0, t0);
    assert_eq!(
        check.distance(BackendKind::Ch, s0, t0).expect("post-chaos"),
        oracle.distance(t0)
    );
    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    let _ = closer.shutdown_server(); // the shutdown ack itself may be dropped
    let stats = server.join();
    assert!(stats.contains("requests="), "{stats}");
}

/// Overload: one worker, a one-slot queue, and slow queries. Excess
/// connections must be turned away with BUSY immediately — not queued
/// forever, not hung.
#[test]
fn overload_sheds_with_busy_instead_of_hanging() {
    let engine = Arc::new(Engine::build(test_net(64, 1), &[]).with_backend(
        BackendKind::Dijkstra,
        Box::new(SlowBackend(Duration::from_millis(400))),
    ));
    let cfg = ServerConfig {
        workers: 1,
        max_pending: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    const CLIENTS: usize = 6;
    let outcomes: Vec<Result<Option<Dist>, ClientError>> = std::thread::scope(|scope| {
        // Spawned eagerly so all clients contend at once; a lazy
        // iterator would serialise them behind each other's joins.
        let mut handles = Vec::with_capacity(CLIENTS);
        for _ in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut c = ServeClient::connect(addr)?;
                c.distance(BackendKind::Dijkstra, 0, 1)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ClientError::Busy(_))))
        .count();
    let served = outcomes.iter().filter(|r| r.is_ok()).count();
    assert!(busy > 0, "no connection was shed: {outcomes:?}");
    assert!(
        served > 0,
        "shedding must not starve everyone: {outcomes:?}"
    );
    // Drops (EOF before a response) can happen to connections accepted
    // into the queue when the run ends, but nothing may fail any other
    // way than Busy or transport loss.
    for r in &outcomes {
        match r {
            Ok(_) | Err(ClientError::Busy(_)) | Err(ClientError::Io(_)) => {}
            other => panic!("unexpected outcome under overload: {other:?}"),
        }
    }

    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown");
    let stats = server.join();
    // Every observed Busy was counted (a shed whose BUSY frame was lost
    // in flight surfaces client-side as Io, so shed can exceed busy).
    assert!(field(&stats, "shed") as usize >= busy, "{stats}");
}

/// A request-level deadline on a query that would never finish: the
/// client gets DEADLINE_EXCEEDED promptly, the worker survives, and a
/// deadline-free fast query still works afterwards.
#[test]
fn deadlines_abort_stuck_queries_with_a_typed_error() {
    let engine = Arc::new(
        Engine::build(test_net(64, 2), &[BackendKind::Dijkstra])
            .with_backend(BackendKind::Ch, Box::new(StuckBackend)),
    );
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    client.set_deadline_ms(50);
    let t0 = Instant::now();
    match client.distance(BackendKind::Ch, 0, 1) {
        Err(ClientError::DeadlineExceeded(msg)) => {
            assert!(msg.contains("deadline"), "{msg}")
        }
        other => panic!("expected DEADLINE_EXCEEDED, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline must fire promptly, took {:?}",
        t0.elapsed()
    );

    // The same connection keeps working for an honest backend, with and
    // without a deadline.
    let with_deadline = client
        .distance(BackendKind::Dijkstra, 0, 1)
        .expect("fast query fits any deadline");
    client.set_deadline_ms(0);
    let without = client
        .distance(BackendKind::Dijkstra, 0, 1)
        .expect("deadline-free query");
    assert_eq!(with_deadline, without);

    let stats = client.stats().expect("stats");
    assert_eq!(field(&stats, "deadlines_exceeded"), 1, "{stats}");

    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown");
    server.join();
}

/// Graceful drain: a long in-flight query finishes and is answered
/// after SHUTDOWN arrives, while the listener stops taking new
/// connections.
#[test]
fn shutdown_drains_inflight_queries_within_grace() {
    let engine = Arc::new(Engine::build(test_net(64, 3), &[]).with_backend(
        BackendKind::Dijkstra,
        Box::new(SlowBackend(Duration::from_millis(500))),
    ));
    let cfg = ServerConfig {
        workers: 2,
        grace: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect slow");
        let t0 = Instant::now();
        let r = c.distance(BackendKind::Dijkstra, 0, 1);
        (r, t0.elapsed())
    });
    // Let the slow query get in flight, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(150));
    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown ack");

    let (result, elapsed) = slow.join().expect("slow client thread");
    assert_eq!(
        result.expect("in-flight query must be drained, not cut"),
        Some(1)
    );
    assert!(
        elapsed >= Duration::from_millis(400),
        "the query really was in flight across the shutdown: {elapsed:?}"
    );
    let stats = server.join();
    assert_eq!(field(&stats, "force_closed"), 0, "{stats}");
    assert!(
        ServeClient::connect(addr).is_err(),
        "listener must refuse new connections after shutdown"
    );
}

/// Post-grace force-stop: a query that would never finish cannot hold
/// shutdown hostage. The budget's kill flag aborts it, the client gets
/// an error (never a fabricated answer), and join() returns promptly.
#[test]
fn force_stop_aborts_stuck_queries_after_grace() {
    let engine = Arc::new(
        Engine::build(test_net(64, 4), &[])
            .with_backend(BackendKind::Dijkstra, Box::new(StuckBackend)),
    );
    // Two workers: one gets wedged on the stuck query, the other must
    // stay free to receive the SHUTDOWN frame.
    let cfg = ServerConfig {
        workers: 2,
        grace: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let stuck = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect stuck");
        c.distance(BackendKind::Dijkstra, 0, 1)
    });
    std::thread::sleep(Duration::from_millis(150));
    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown ack");

    let t0 = Instant::now();
    let stats = server.join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "join() hung past the grace window: {:?}",
        t0.elapsed()
    );
    assert_eq!(field(&stats, "force_closed"), 1, "{stats}");

    match stuck.join().expect("stuck client thread") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("shutting down"), "{msg}"),
        Err(ClientError::Io(_)) => {} // the abort may race the close
        other => panic!("a force-stopped query must error, got {other:?}"),
    }
}

/// Damaged index files — bit-flipped, truncated, legacy-format — must
/// degrade the engine with precise typed reasons, and the degraded
/// engine must still answer correctly (it serves the fallback, never
/// the damaged bytes).
#[test]
fn damaged_index_files_degrade_with_typed_reasons() {
    let net = test_net(200, 5);
    let dir = std::env::temp_dir().join(format!("spq-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ch_path = dir.join("net.ch");
    let ch = spq_ch::ContractionHierarchy::build(&net);
    let mut bytes = Vec::new();
    ch.write_binary(&mut bytes).expect("serialise CH");
    std::fs::write(&ch_path, &bytes).expect("write CH index");

    // Control: the intact file loads and serves correctly.
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &ch_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("engine");
    assert!(engine.degradations().is_empty(), "intact file must load");
    engine
        .self_check(16, 3)
        .expect("loaded CH answers correctly");

    // Bit flip: checksum catches it, CH degrades to Dijkstra.
    let flipped_path = dir.join("net-flipped.ch");
    // Flip within the body (past the 24-byte container header) so the
    // failure is the checksum, not the magic.
    let mut flipped = bytes.clone();
    let tail = FaultInjector::corrupt(&bytes[24..], 11);
    flipped[24..].copy_from_slice(&tail);
    std::fs::write(&flipped_path, &flipped).expect("write flipped");
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &flipped_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("degraded engine");
    let d = &engine.degradations()[0];
    assert_eq!(d.requested, BackendKind::Ch);
    assert_eq!(d.served_by, BackendKind::Dijkstra);
    assert!(d.reason.contains("checksum mismatch"), "{}", d.reason);
    engine.self_check(16, 3).expect("fallback still correct");

    // Truncation is reported as truncation.
    let short_path = dir.join("net-short.ch");
    std::fs::write(&short_path, FaultInjector::truncate(&bytes, 12)).expect("write short");
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &short_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("degraded engine");
    let reason = &engine.degradations()[0].reason;
    assert!(
        reason.contains("truncated") || reason.contains("i/o error"),
        "{reason}"
    );

    // A legacy (pre-checksum) file is refused with migration advice.
    let legacy_path = dir.join("net-legacy.ch");
    let mut legacy = Vec::new();
    spq_graph::binio::write_header(&mut legacy, b"SPQC", 1).expect("legacy header");
    spq_graph::binio::write_u64(&mut legacy, 0).expect("legacy body");
    std::fs::write(&legacy_path, &legacy).expect("write legacy");
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &legacy_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("degraded engine");
    let reason = &engine.degradations()[0].reason;
    assert!(reason.contains("legacy format version 1"), "{reason}");
    assert!(reason.contains("rebuild"), "{reason}");

    // Strict mode (--no-degrade) turns the same damage into a fatal
    // startup error.
    let err = Engine::build_with_indexes(
        net,
        &[BackendSpec::from_file(BackendKind::Ch, &flipped_path)],
        false,
    )
    .err()
    .expect("strict mode refuses damaged indexes");
    assert!(err.contains("checksum mismatch"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 6: the load generator must survive the server dying
/// mid-run — exiting with the error recorded and the partial rows
/// preserved, not panicking or hanging.
#[test]
fn loadgen_reports_partial_results_when_the_server_dies() {
    let net = test_net(200, 6);
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    // Three workers: the two loadgen connections pin one each, and the
    // killer's SHUTDOWN frame needs a free one to be heard at all.
    let cfg = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    // Kill the server out from under the sweep.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let mut c = ServeClient::connect(addr).expect("connect killer");
        let _ = c.shutdown_server();
    });

    let opts = LoadgenOptions {
        backends: vec![BackendKind::Dijkstra],
        concurrency: vec![2],
        duration: Duration::from_secs(10),
        per_set: 20,
        verify_samples: 4,
        retry: RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            seed: 3,
        },
        ..LoadgenOptions::default()
    };
    let t0 = Instant::now();
    let report = loadgen::run(addr, &net, &opts);
    killer.join().expect("killer thread");
    server.join();

    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "the sweep must abort early, not run its full duration"
    );
    let err = report
        .error
        .as_ref()
        .expect("server death must be reported");
    assert!(!err.is_empty());
    assert_eq!(report.rows.len(), 1, "the dying run still yields its row");
    assert!(
        report.rows[0].requests > 0,
        "partial progress before the kill is preserved: {:?}",
        report.rows[0]
    );
}
