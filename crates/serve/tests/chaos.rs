//! Deterministic chaos suite for the serving subsystem.
//!
//! Every fault here flows from a fixed seed ([`FaultPlan`] for
//! server-side latency/drops, [`FaultInjector::corrupt`] for mangled
//! request frames and index files), so a failing run replays
//! identically — a chaos failure is a test case, not a flake. The
//! invariants under fault load:
//!
//! 1. availability: retrying clients always converge to an answer;
//! 2. correctness: every OK answer equals the Dijkstra oracle — faults
//!    may slow or kill a request, never falsify it;
//! 3. overload sheds (BUSY) instead of hanging;
//! 4. shutdown drains in-flight work within the grace window, then
//!    force-closes stragglers;
//! 5. damaged index files degrade the engine with typed reasons instead
//!    of serving garbage;
//! 6. every thread joins — a hang here is a test-timeout failure;
//! 7. a hot index swap under concurrent load never yields a wrong or
//!    stale answer, and a failed reload leaves the old epoch serving;
//! 8. an injected worker panic kills only its own connection — the
//!    supervised worker recovers (and a panic storm retires it);
//! 9. a backend that starts answering wrongly is quarantined by the
//!    continuous oracle audit and its traffic fails over.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_serve::loadgen::{self, LoadgenOptions};
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{
    AuditConfig, BackendKind, BackendSpec, ClientError, Engine, FaultInjector, FaultPlan,
    ReloadFactory, RetryPolicy, RetryingClient, ServeClient,
};
use spq_synth::SynthParams;

fn test_net(target: usize, seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(target),
        seed,
    ))
}

/// Deterministic sample pairs spread over the vertex range.
fn sample_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = n as u64;
    let mut state = 0xdead_beef_0042_4242u64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % n) as NodeId;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % n) as NodeId;
            (s, t)
        })
        .collect()
}

fn field(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
}

/// A backend that sleeps a fixed time per query — makes queueing
/// observable. Not oracle-correct (constant answers), so tests using it
/// never claim answer correctness.
struct SlowBackend(Duration);
struct SlowSession(Duration);

impl Backend for SlowBackend {
    fn backend_name(&self) -> &'static str {
        "Slow"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(SlowSession(self.0))
    }
}

impl Session for SlowSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        std::thread::sleep(self.0);
        Some(1)
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        std::thread::sleep(self.0);
        Some((1, vec![s, t]))
    }
}

/// A backend that spins until its budget trips (deadline or kill flag)
/// — models a query too expensive to ever finish. A 10-second wall
/// fuse keeps a buggy server from hanging the whole suite.
struct StuckBackend;
struct StuckSession {
    budget: QueryBudget,
    tripped: bool,
}

impl Backend for StuckBackend {
    fn backend_name(&self) -> &'static str {
        "Stuck"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(StuckSession {
            budget: QueryBudget::unlimited(),
            tripped: false,
        })
    }
}

impl Session for StuckSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        self.budget.reset();
        self.tripped = false;
        let fuse = Instant::now() + Duration::from_secs(10);
        loop {
            if !self.budget.charge() {
                self.tripped = true;
                return None;
            }
            if Instant::now() >= fuse {
                return Some(1);
            }
        }
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.distance(s, t).map(|d| (d, vec![s, t]))
    }
    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }
    fn interrupted(&self) -> bool {
        self.tripped
    }
}

/// A backend that confidently answers every query with distance 1 — a
/// stand-in for an index silently gone bad *after* the startup
/// self-check (memory corruption, a bad mmap, a defect that only
/// manifests under load). The continuous audit must catch it.
struct LyingBackend;
struct LyingSession;

impl Backend for LyingBackend {
    fn backend_name(&self) -> &'static str {
        "Lying"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(LyingSession)
    }
}

impl Session for LyingSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        Some(1)
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        Some((1, vec![s, t]))
    }
}

/// The headline chaos run: injected latency, injected connection drops,
/// and client-side corrupted frames, all seeded. Retrying clients must
/// still converge on the oracle answer for every single pair.
#[test]
fn chaos_sweep_stays_available_and_never_wrong() {
    let net = test_net(300, 0xc4a05);
    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch],
    ));
    engine.self_check(16, 3).expect("clean engine");
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        seed: 0xBAD5EED,
        latency_prob: 0.2,
        latency: Duration::from_millis(2),
        drop_prob: 0.15,
        panic_prob: 0.0,
        emfile_accepts: 0,
    }));
    let cfg = ServerConfig {
        workers: 2,
        fault: Some(Arc::clone(&injector)),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    // Phase 1: oracle-checked queries through a retrying client. The
    // injected drops force reconnects; the answers must never change.
    let pairs = sample_pairs(net.num_nodes(), 60);
    let mut oracle = Dijkstra::new(net.num_nodes());
    let mut client = RetryingClient::new(
        addr,
        RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 0x7e57,
            partial_retries: 10,
        },
    );
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let kind = if i % 2 == 0 {
            BackendKind::Dijkstra
        } else {
            BackendKind::Ch
        };
        let got = client.distance(kind, s, t).expect("chaos must not starve");
        oracle.run_to_target(&net, s, t);
        assert_eq!(
            got,
            oracle.distance(t),
            "wrong answer under chaos ({s},{t})"
        );
    }
    assert!(injector.drops() > 0, "the drop fault must have fired");
    assert!(injector.delays() > 0, "the latency fault must have fired");
    assert!(client.retries > 0, "drops must have caused retries");
    // A connected client pins a worker; release it before the next
    // phase so the pool (2 workers) never fills up with idle pins.
    drop(client);

    // Phase 2: corrupted request frames. Each elicits an error frame,
    // a (possibly wrong-vertex but genuine) answer, or a drop — never
    // a crash. The connection is rebuilt on demand.
    let template = spq_serve::protocol::Request::Distance {
        backend: BackendKind::Ch.wire_id(),
        s: pairs[0].0,
        t: pairs[0].1,
        deadline_ms: 0,
    }
    .encode();
    let mut raw = ServeClient::connect(addr).expect("connect raw");
    for round in 0..40u64 {
        let mangled = FaultInjector::corrupt(&template, round);
        if mangled.first() == Some(&spq_serve::protocol::op::SHUTDOWN) {
            // The one opcode with side effects; a bit flip that forges
            // it would end the test early by design, not by bug.
            continue;
        }
        if raw.roundtrip_raw(&mangled).is_err() {
            raw = ServeClient::connect(addr).expect("reconnect after drop");
        }
    }
    drop(raw);

    // Phase 3: the server is still healthy and joins cleanly.
    let mut check = RetryingClient::new(addr, RetryPolicy::default());
    check.ping().expect("server alive after chaos");
    let (s0, t0) = pairs[0];
    oracle.run_to_target(&net, s0, t0);
    assert_eq!(
        check.distance(BackendKind::Ch, s0, t0).expect("post-chaos"),
        oracle.distance(t0)
    );
    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    let _ = closer.shutdown_server(); // the shutdown ack itself may be dropped
    let stats = server.join();
    assert!(stats.contains("requests="), "{stats}");
}

/// Overload: one worker, a one-slot queue, and slow queries. Excess
/// connections must be turned away with BUSY immediately — not queued
/// forever, not hung.
#[test]
fn overload_sheds_with_busy_instead_of_hanging() {
    let engine = Arc::new(Engine::build(test_net(64, 1), &[]).with_backend(
        BackendKind::Dijkstra,
        Box::new(SlowBackend(Duration::from_millis(400))),
    ));
    let cfg = ServerConfig {
        workers: 1,
        max_pending: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    const CLIENTS: usize = 6;
    let outcomes: Vec<Result<Option<Dist>, ClientError>> = std::thread::scope(|scope| {
        // Spawned eagerly so all clients contend at once; a lazy
        // iterator would serialise them behind each other's joins.
        let mut handles = Vec::with_capacity(CLIENTS);
        for _ in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut c = ServeClient::connect(addr)?;
                c.distance(BackendKind::Dijkstra, 0, 1)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ClientError::Busy(_))))
        .count();
    let served = outcomes.iter().filter(|r| r.is_ok()).count();
    assert!(busy > 0, "no connection was shed: {outcomes:?}");
    assert!(
        served > 0,
        "shedding must not starve everyone: {outcomes:?}"
    );
    // Drops (EOF before a response) can happen to connections accepted
    // into the queue when the run ends, but nothing may fail any other
    // way than Busy or transport loss.
    for r in &outcomes {
        match r {
            Ok(_) | Err(ClientError::Busy(_)) | Err(ClientError::Io(_)) => {}
            other => panic!("unexpected outcome under overload: {other:?}"),
        }
    }

    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown");
    let stats = server.join();
    // Every observed Busy was counted (a shed whose BUSY frame was lost
    // in flight surfaces client-side as Io, so shed can exceed busy).
    assert!(field(&stats, "shed") as usize >= busy, "{stats}");
}

/// A request-level deadline on a query that would never finish: the
/// client gets DEADLINE_EXCEEDED promptly, the worker survives, and a
/// deadline-free fast query still works afterwards.
#[test]
fn deadlines_abort_stuck_queries_with_a_typed_error() {
    let engine = Arc::new(
        Engine::build(test_net(64, 2), &[BackendKind::Dijkstra])
            .with_backend(BackendKind::Ch, Box::new(StuckBackend)),
    );
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    client.set_deadline_ms(50);
    let t0 = Instant::now();
    match client.distance(BackendKind::Ch, 0, 1) {
        Err(ClientError::DeadlineExceeded(msg)) => {
            assert!(msg.contains("deadline"), "{msg}")
        }
        other => panic!("expected DEADLINE_EXCEEDED, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline must fire promptly, took {:?}",
        t0.elapsed()
    );

    // The same connection keeps working for an honest backend, with and
    // without a deadline.
    let with_deadline = client
        .distance(BackendKind::Dijkstra, 0, 1)
        .expect("fast query fits any deadline");
    client.set_deadline_ms(0);
    let without = client
        .distance(BackendKind::Dijkstra, 0, 1)
        .expect("deadline-free query");
    assert_eq!(with_deadline, without);

    let stats = client.stats().expect("stats");
    assert_eq!(field(&stats, "deadlines_exceeded"), 1, "{stats}");

    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown");
    server.join();
}

/// Graceful drain: a long in-flight query finishes and is answered
/// after SHUTDOWN arrives, while the listener stops taking new
/// connections.
#[test]
fn shutdown_drains_inflight_queries_within_grace() {
    let engine = Arc::new(Engine::build(test_net(64, 3), &[]).with_backend(
        BackendKind::Dijkstra,
        Box::new(SlowBackend(Duration::from_millis(500))),
    ));
    let cfg = ServerConfig {
        workers: 2,
        grace: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect slow");
        let t0 = Instant::now();
        let r = c.distance(BackendKind::Dijkstra, 0, 1);
        (r, t0.elapsed())
    });
    // Let the slow query get in flight, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(150));
    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown ack");

    let (result, elapsed) = slow.join().expect("slow client thread");
    assert_eq!(
        result.expect("in-flight query must be drained, not cut"),
        Some(1)
    );
    assert!(
        elapsed >= Duration::from_millis(400),
        "the query really was in flight across the shutdown: {elapsed:?}"
    );
    let stats = server.join();
    assert_eq!(field(&stats, "force_closed"), 0, "{stats}");
    assert!(
        ServeClient::connect(addr).is_err(),
        "listener must refuse new connections after shutdown"
    );
}

/// Post-grace force-stop: a query that would never finish cannot hold
/// shutdown hostage. The budget's kill flag aborts it, the client gets
/// an error (never a fabricated answer), and join() returns promptly.
#[test]
fn force_stop_aborts_stuck_queries_after_grace() {
    let engine = Arc::new(
        Engine::build(test_net(64, 4), &[])
            .with_backend(BackendKind::Dijkstra, Box::new(StuckBackend)),
    );
    // Two workers: one gets wedged on the stuck query, the other must
    // stay free to receive the SHUTDOWN frame.
    let cfg = ServerConfig {
        workers: 2,
        grace: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let stuck = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect stuck");
        c.distance(BackendKind::Dijkstra, 0, 1)
    });
    std::thread::sleep(Duration::from_millis(150));
    let mut closer = ServeClient::connect(addr).expect("connect for shutdown");
    closer.shutdown_server().expect("shutdown ack");

    let t0 = Instant::now();
    let stats = server.join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "join() hung past the grace window: {:?}",
        t0.elapsed()
    );
    assert_eq!(field(&stats, "force_closed"), 1, "{stats}");

    match stuck.join().expect("stuck client thread") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("shutting down"), "{msg}"),
        Err(ClientError::Io(_)) => {} // the abort may race the close
        other => panic!("a force-stopped query must error, got {other:?}"),
    }
}

/// Damaged index files — bit-flipped, truncated, legacy-format — must
/// degrade the engine with precise typed reasons, and the degraded
/// engine must still answer correctly (it serves the fallback, never
/// the damaged bytes).
#[test]
fn damaged_index_files_degrade_with_typed_reasons() {
    let net = test_net(200, 5);
    let dir = std::env::temp_dir().join(format!("spq-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ch_path = dir.join("net.ch");
    let ch = spq_ch::ContractionHierarchy::build(&net);
    let mut bytes = Vec::new();
    ch.write_binary(&mut bytes).expect("serialise CH");
    std::fs::write(&ch_path, &bytes).expect("write CH index");

    // Control: the intact file loads and serves correctly.
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &ch_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("engine");
    assert!(engine.degradations().is_empty(), "intact file must load");
    engine
        .self_check(16, 3)
        .expect("loaded CH answers correctly");

    // Bit flip: checksum catches it, CH degrades to Dijkstra.
    let flipped_path = dir.join("net-flipped.ch");
    // Flip within the body (past the 24-byte container header) so the
    // failure is the checksum, not the magic.
    let mut flipped = bytes.clone();
    let tail = FaultInjector::corrupt(&bytes[24..], 11);
    flipped[24..].copy_from_slice(&tail);
    std::fs::write(&flipped_path, &flipped).expect("write flipped");
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &flipped_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("degraded engine");
    let d = &engine.degradations()[0];
    assert_eq!(d.requested, BackendKind::Ch);
    assert_eq!(d.served_by, BackendKind::Dijkstra);
    assert!(d.reason.contains("checksum mismatch"), "{}", d.reason);
    engine.self_check(16, 3).expect("fallback still correct");

    // Truncation is reported as truncation.
    let short_path = dir.join("net-short.ch");
    std::fs::write(&short_path, FaultInjector::truncate(&bytes, 12)).expect("write short");
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &short_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("degraded engine");
    let reason = &engine.degradations()[0].reason;
    assert!(
        reason.contains("truncated") || reason.contains("i/o error"),
        "{reason}"
    );

    // A legacy (pre-checksum) file is refused with migration advice.
    let legacy_path = dir.join("net-legacy.ch");
    let mut legacy = Vec::new();
    spq_graph::binio::write_header(&mut legacy, b"SPQC", 1).expect("legacy header");
    spq_graph::binio::write_u64(&mut legacy, 0).expect("legacy body");
    std::fs::write(&legacy_path, &legacy).expect("write legacy");
    let specs = [
        BackendSpec::built(BackendKind::Dijkstra),
        BackendSpec::from_file(BackendKind::Ch, &legacy_path),
    ];
    let engine = Engine::build_with_indexes(net.clone(), &specs, true).expect("degraded engine");
    let reason = &engine.degradations()[0].reason;
    assert!(reason.contains("legacy format version 1"), "{reason}");
    assert!(reason.contains("rebuild"), "{reason}");

    // Strict mode (--no-degrade) turns the same damage into a fatal
    // startup error. A fresh damaged file: the earlier degrade-mode
    // build already moved `net-flipped.ch` into quarantine.
    let strict_path = dir.join("net-strict.ch");
    std::fs::write(&strict_path, &flipped).expect("write strict-mode copy");
    let err = Engine::build_with_indexes(
        net,
        &[BackendSpec::from_file(BackendKind::Ch, &strict_path)],
        false,
    )
    .err()
    .expect("strict mode refuses damaged indexes");
    assert!(err.contains("checksum mismatch"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 6: the load generator must survive the server dying
/// mid-run — exiting with the error recorded and the partial rows
/// preserved, not panicking or hanging.
#[test]
fn loadgen_reports_partial_results_when_the_server_dies() {
    let net = test_net(200, 6);
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    // Three workers: the two loadgen connections pin one each, and the
    // killer's SHUTDOWN frame needs a free one to be heard at all.
    let cfg = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    // Kill the server out from under the sweep.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let mut c = ServeClient::connect(addr).expect("connect killer");
        let _ = c.shutdown_server();
    });

    let opts = LoadgenOptions {
        backends: vec![BackendKind::Dijkstra],
        concurrency: vec![2],
        duration: Duration::from_secs(10),
        per_set: 20,
        verify_samples: 4,
        retry: RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            seed: 3,
            partial_retries: 2,
        },
        ..LoadgenOptions::default()
    };
    let t0 = Instant::now();
    let report = loadgen::run(addr, &net, &opts);
    killer.join().expect("killer thread");
    server.join();

    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "the sweep must abort early, not run its full duration"
    );
    let err = report
        .error
        .as_ref()
        .expect("server death must be reported");
    assert!(!err.is_empty());
    assert_eq!(report.rows.len(), 1, "the dying run still yields its row");
    assert!(
        report.rows[0].requests > 0,
        "partial progress before the kill is preserved: {:?}",
        report.rows[0]
    );
}

/// Acceptance (a): a hot index swap under concurrent load. Three
/// clients hammer oracle-checked queries while a fourth triggers three
/// RELOADs; every single answer must equal the oracle (the replacement
/// engines serve the same network, so a stale cache entry or a query
/// answered half-on-each-epoch would still surface as a correctness
/// violation in the epoch-keyed accounting below).
#[test]
fn hot_reload_under_concurrent_load_never_yields_wrong_or_stale_answers() {
    let net = test_net(300, 9);
    let kinds = [BackendKind::Dijkstra, BackendKind::Ch];
    let engine = Arc::new(Engine::build(net.clone(), &kinds));
    engine.self_check(16, 3).expect("clean engine");
    let factory_net = net.clone();
    let factory = ReloadFactory::new(move || {
        Ok(Arc::new(Engine::build(
            factory_net.clone(),
            &[BackendKind::Dijkstra, BackendKind::Ch],
        )))
    });
    let cfg = ServerConfig {
        workers: 4,
        reload_factory: Some(factory),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();

    let pairs = sample_pairs(net.num_nodes(), 30);
    let mut oracle = Dijkstra::new(net.num_nodes());
    let expected: Vec<Option<Dist>> = pairs
        .iter()
        .map(|&(s, t)| {
            oracle.run_to_target(&net, s, t);
            oracle.distance(t)
        })
        .collect();

    const RELOADS: u64 = 3;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        let pairs = &pairs;
        let expected = &expected;
        for worker in 0..3usize {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut i = worker;
                while !stop.load(Ordering::SeqCst) {
                    let (s, t) = pairs[i % pairs.len()];
                    let kind = if i % 2 == 0 {
                        BackendKind::Dijkstra
                    } else {
                        BackendKind::Ch
                    };
                    let got = client.distance(kind, s, t).expect("query across a swap");
                    assert_eq!(
                        got,
                        expected[i % pairs.len()],
                        "wrong answer across a hot swap ({s},{t})"
                    );
                    i += 1;
                }
            });
        }
        scope.spawn(move || {
            let mut rc = ServeClient::connect(addr).expect("connect reloader");
            for round in 1..=RELOADS {
                // Let queries (and cache fills) interleave each epoch.
                std::thread::sleep(Duration::from_millis(80));
                let epoch = rc.reload().expect("reload must succeed");
                assert_eq!(epoch, round, "each RELOAD publishes the next epoch");
            }
            stop.store(true, Ordering::SeqCst);
        });
    });

    assert_eq!(server.registry().epoch(), RELOADS);
    let mut c = ServeClient::connect(addr).expect("connect for stats");
    let stats = c.stats().expect("stats");
    assert!(stats.contains(&format!("epoch: {RELOADS}")), "{stats}");
    assert_eq!(field(&stats, "reloads_ok"), RELOADS, "{stats}");
    assert_eq!(field(&stats, "reloads_failed"), 0, "{stats}");
    assert!(
        field(&stats, "purged") > 0,
        "cache entries from superseded epochs must be purged:\n{stats}"
    );
    let _ = c.shutdown_server();
    server.join();
}

/// A reload whose replacement engine fails the pre-publication
/// self-check: the RELOAD frame gets the typed failure, the old epoch
/// keeps serving correct answers, and STATS carries the reason.
#[test]
fn a_failed_reload_keeps_the_old_epoch_serving_with_a_typed_reason() {
    let net = test_net(200, 11);
    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch],
    ));
    engine.self_check(16, 3).expect("clean engine");
    let factory_net = net.clone();
    let factory = ReloadFactory::new(move || {
        // The replacement lies; the self-check must refuse to publish.
        Ok(Arc::new(
            Engine::build(factory_net.clone(), &[BackendKind::Dijkstra])
                .with_backend(BackendKind::Ch, Box::new(LyingBackend)),
        ))
    });
    let cfg = ServerConfig {
        workers: 2,
        reload_factory: Some(factory),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    match client.reload() {
        Err(ClientError::ReloadFailed(msg)) => {
            assert!(msg.contains("refusing to publish"), "{msg}")
        }
        other => panic!("expected RELOAD_FAILED, got {other:?}"),
    }
    assert_eq!(
        server.registry().epoch(),
        0,
        "a failed reload publishes nothing"
    );

    let mut oracle = Dijkstra::new(net.num_nodes());
    for &(s, t) in &sample_pairs(net.num_nodes(), 8) {
        let got = client
            .distance(BackendKind::Ch, s, t)
            .expect("the old epoch keeps serving");
        oracle.run_to_target(&net, s, t);
        assert_eq!(got, oracle.distance(t), "old epoch must stay correct");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(field(&stats, "reloads_failed"), 1, "{stats}");
    assert_eq!(field(&stats, "reloads_ok"), 0, "{stats}");
    assert!(stats.contains("reload_error: RELOAD_FAILED"), "{stats}");
    let _ = client.shutdown_server();
    server.join();
}

/// Acceptance (b): an injected worker panic kills only its own
/// connection. Retrying clients converge on oracle answers throughout,
/// the server keeps accepting, and STATS records every supervised
/// restart.
#[test]
fn injected_worker_panics_kill_one_connection_each_and_the_worker_recovers() {
    let net = test_net(200, 12);
    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch],
    ));
    engine.self_check(16, 3).expect("clean engine");
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        seed: 0x9A71C,
        panic_prob: 0.08,
        ..FaultPlan::default()
    }));
    let cfg = ServerConfig {
        workers: 2,
        fault: Some(Arc::clone(&injector)),
        // Generous cap: this test is about recovery, not retirement.
        restart_cap: 1000,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();

    let pairs = sample_pairs(net.num_nodes(), 60);
    let mut oracle = Dijkstra::new(net.num_nodes());
    let mut client = RetryingClient::new(
        addr,
        RetryPolicy {
            max_retries: 20,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            seed: 0x7e57,
            partial_retries: 20,
        },
    );
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let kind = if i % 2 == 0 {
            BackendKind::Dijkstra
        } else {
            BackendKind::Ch
        };
        let got = client
            .distance(kind, s, t)
            .expect("panics must not starve clients");
        oracle.run_to_target(&net, s, t);
        assert_eq!(
            got,
            oracle.distance(t),
            "wrong answer amid panics ({s},{t})"
        );
    }
    assert!(injector.panics() > 0, "the panic fault must have fired");
    assert!(client.retries > 0, "each panic costs its connection");
    drop(client);

    // A RELOAD without a reload source is a typed failure, not a hang
    // (retried because the panic fault may hit this request too).
    let msg = loop {
        let mut c = ServeClient::connect(addr).expect("server still accepting");
        match c.reload() {
            Err(ClientError::ReloadFailed(m)) => break m,
            Err(ClientError::Io(_)) => continue,
            other => panic!("expected RELOAD_FAILED, got {other:?}"),
        }
    };
    assert!(msg.contains("no reload source"), "{msg}");

    server.request_shutdown();
    let stats = server.join();
    assert_eq!(
        field(&stats, "worker_restarts"),
        injector.panics(),
        "every injected panic is one supervised restart:\n{stats}"
    );
}

/// Past the restart cap a worker retires, and when the whole pool has
/// retired the last worker shuts the server down instead of leaving a
/// zombie acceptor.
#[test]
fn a_panic_storm_retires_workers_and_an_empty_pool_shuts_down() {
    let engine = Arc::new(Engine::build(test_net(64, 13), &[BackendKind::Dijkstra]));
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        seed: 0x57031,
        panic_prob: 1.0,
        ..FaultPlan::default()
    }));
    let cfg = ServerConfig {
        workers: 2,
        restart_cap: 2,
        restart_window: Duration::from_secs(60),
        fault: Some(injector),
        grace: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();

    // Every request panics; keep poking until both workers hit the cap
    // and the last one to retire turns the lights off.
    let deadline = Instant::now() + Duration::from_secs(20);
    while !server.shutting_down() {
        assert!(
            Instant::now() < deadline,
            "a fully retired pool must shut the server down"
        );
        if let Ok(mut c) = ServeClient::connect(addr) {
            let _ = c.ping();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.join();
    assert_eq!(
        field(&stats, "worker_restarts"),
        4,
        "2 workers x restart cap 2:\n{stats}"
    );
    assert!(
        ServeClient::connect(addr).is_err(),
        "the listener must be gone after the pool retired"
    );
}

/// Acceptance (c): a backend that starts answering wrongly after
/// startup is quarantined by the continuous audit within its window,
/// its cached lies are purged, and its wire id fails over to honest
/// backends.
#[test]
fn the_audit_quarantines_a_lying_backend_and_fails_over() {
    let net = test_net(200, 14);
    // CH and Dijkstra are honest; the TNR slot lies. The startup
    // self-check is deliberately not run — the lie models an index
    // silently gone bad after startup.
    let engine = Arc::new(
        Engine::build(net.clone(), &[BackendKind::Dijkstra, BackendKind::Ch])
            .with_backend(BackendKind::Tnr, Box::new(LyingBackend)),
    );
    let cfg = ServerConfig {
        workers: 2,
        audit: Some(AuditConfig {
            interval: Duration::from_millis(150),
            queries: 6,
            threshold: 3,
            ..AuditConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let pairs = sample_pairs(net.num_nodes(), 12);

    // Cache one lie before the quarantine lands (racing the auditor is
    // fine: if it already landed, this is a correct failover answer).
    let (ps, pt) = pairs[0];
    let early = client
        .distance(BackendKind::Tnr, ps, pt)
        .expect("pre-quarantine");

    let deadline = Instant::now() + Duration::from_secs(20);
    let stats = loop {
        let s = client.stats().expect("stats");
        if s.contains("quarantined: Lying") {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "the audit failed to quarantine the lying backend:\n{s}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(field(&stats, "audit_mismatches") >= 3, "{stats}");
    let mut oracle = Dijkstra::new(net.num_nodes());
    oracle.run_to_target(&net, ps, pt);
    if early == Some(1) && oracle.distance(pt) != Some(1) {
        // The lie really was cached pre-quarantine; it must be purged.
        assert!(
            field(&stats, "purged") >= 1,
            "cached lies must not survive the quarantine:\n{stats}"
        );
    }

    // Traffic for the quarantined wire id now fails over and matches
    // the oracle — including the pair whose lie was cached.
    for &(s, t) in &pairs {
        let got = client.distance(BackendKind::Tnr, s, t).expect("failover");
        oracle.run_to_target(&net, s, t);
        assert_eq!(
            got,
            oracle.distance(t),
            "failover must serve oracle answers ({s},{t})"
        );
    }
    let stats = client.stats().expect("stats");
    assert!(
        field(&stats, "quarantine_failovers") >= pairs.len() as u64,
        "{stats}"
    );
    let _ = client.shutdown_server();
    server.join();
}

/// With failover disabled, a quarantined wire id answers with the typed
/// QUARANTINED status while honest backends keep serving.
#[test]
fn quarantine_without_failover_returns_the_typed_status() {
    let net = test_net(128, 15);
    let engine = Arc::new(
        Engine::build(net.clone(), &[BackendKind::Dijkstra])
            .with_backend(BackendKind::Ch, Box::new(LyingBackend)),
    );
    let cfg = ServerConfig {
        workers: 2,
        audit: Some(AuditConfig {
            interval: Duration::from_millis(50),
            queries: 6,
            threshold: 3,
            failover: false,
            ..AuditConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s = client.stats().expect("stats");
        if s.contains("quarantined: Lying") {
            break;
        }
        assert!(Instant::now() < deadline, "no quarantine:\n{s}");
        std::thread::sleep(Duration::from_millis(10));
    }
    match client.distance(BackendKind::Ch, 0, 1) {
        Err(ClientError::Quarantined(msg)) => {
            assert!(msg.contains("quarantined"), "{msg}")
        }
        other => panic!("expected QUARANTINED, got {other:?}"),
    }
    // The honest backend is unaffected.
    let mut oracle = Dijkstra::new(net.num_nodes());
    oracle.run_to_target(&net, 0, 1);
    assert_eq!(
        client
            .distance(BackendKind::Dijkstra, 0, 1)
            .expect("healthy backend"),
        oracle.distance(1)
    );
    let _ = client.shutdown_server();
    server.join();
}

/// The watched reload file: startup contents are the baseline (no
/// spurious reload), an atomic content change hot-adds a backend to the
/// serving set, and the swap is oracle-correct.
#[test]
fn a_reload_file_content_change_hot_swaps_the_engine() {
    let net = test_net(200, 16);
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    let dir = std::env::temp_dir().join(format!("spq-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("reload.conf");
    std::fs::write(&path, "backends=dijkstra\n").expect("write reload file");
    let cfg = ServerConfig {
        workers: 2,
        reload_file: Some(path.clone()),
        reload_poll: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        server.registry().epoch(),
        0,
        "an unchanged reload file must not trigger a reload"
    );
    match client.distance(BackendKind::Ch, 0, 1) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("not served"), "{msg}"),
        other => panic!("CH must not be served yet: {other:?}"),
    }

    // Atomic replace (write + rename) so the watcher never reads a
    // half-written spec.
    let tmp = dir.join("reload.conf.tmp");
    std::fs::write(&tmp, "# hot-add the CH slot\nbackends=dijkstra,ch\n").expect("write tmp");
    std::fs::rename(&tmp, &path).expect("atomic replace");
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.registry().epoch() == 0 {
        assert!(
            Instant::now() < deadline,
            "the file change never triggered a reload"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut oracle = Dijkstra::new(net.num_nodes());
    for &(s, t) in &sample_pairs(net.num_nodes(), 8) {
        let got = client
            .distance(BackendKind::Ch, s, t)
            .expect("hot-added backend");
        oracle.run_to_target(&net, s, t);
        assert_eq!(
            got,
            oracle.distance(t),
            "hot-added CH must be oracle-correct"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(field(&stats, "reloads_ok"), 1, "{stats}");
    let _ = client.shutdown_server();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
