//! Byte-level wire chaos against an in-process server.
//!
//! The [`ByteProxy`] sits between real TCP clients and a real
//! [`Server`], splitting frames at arbitrary offsets, stalling
//! mid-frame, flipping bits, duplicating windows, and severing
//! connections — every decision a pure function of (seed, connection,
//! direction, stream window), so a failing seed replays exactly.
//!
//! The server-side contract under arbitrary byte garbage:
//!
//! 1. every faulted request ends in a typed error, a clean close, or a
//!    correct answer — bounded by the client's socket timeout, never a
//!    hang;
//! 2. the server process never panics (worker restarts stay at the
//!    level the panic-free baseline shows: zero);
//! 3. after the chaos stops, a clean connection gets oracle-correct
//!    answers — garbage on old connections must not poison state.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{BackendKind, ByteFaultPlan, ByteProxy, ClientError, Engine, ServeClient};
use spq_synth::SynthParams;

fn test_net() -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(220),
        9,
    ))
}

/// Deterministic query pairs.
fn pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = n as u64;
    let mut state = 0x0b5e_55ed_u64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % n) as NodeId;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % n) as NodeId;
            (s, t)
        })
        .collect()
}

/// Per-request wall-clock bound: the client socket timeout plus the
/// proxy's worst-case stalls, with slack for CI scheduling.
const IO_TIMEOUT: Duration = Duration::from_secs(3);
const HANG_BOUND: Duration = Duration::from_secs(20);

/// Aggressive upstream chaos across several seeds: requests are split,
/// stalled, flipped, duplicated, and severed. The server must answer
/// (correctly or with a typed error) or close — never hang, never
/// panic, and never serve a wrong answer afterwards.
#[test]
fn server_survives_byte_chaos_on_requests() {
    let net = test_net();
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    let cfg = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();
    let qs = pairs(net.num_nodes(), 64);
    let mut oracle = Dijkstra::new(net.num_nodes());

    for seed in [1u64, 0xfeed_f00d, 0x5eed_cafe] {
        let plan = ByteFaultPlan {
            seed,
            split_prob: 0.6,
            stall_prob: 0.25,
            stall: Duration::from_millis(30),
            flip_prob: 0.25,
            dup_prob: 0.15,
            kill_prob: 0.2,
            fault_upstream: true,
            fault_downstream: false,
        };
        let proxy = ByteProxy::start(addr, plan).expect("start proxy");
        let via = proxy.local_addr();
        let mut outcomes = [0usize; 3]; // ok / typed / transport
        for (i, &(s, t)) in qs.iter().enumerate() {
            let Ok(mut c) = ServeClient::connect(via) else {
                continue;
            };
            c.set_io_timeout(Some(IO_TIMEOUT)).expect("set timeout");
            let started = Instant::now();
            let out = c.distance(BackendKind::Dijkstra, s, t);
            let waited = started.elapsed();
            assert!(
                waited < HANG_BOUND,
                "seed {seed:#x} request {i} hung for {waited:?}"
            );
            match out {
                Ok(got) => {
                    // An OK answer on a faulted connection may answer a
                    // *mangled* query (flipped request bytes change s/t)
                    // — but when the bytes happened to arrive intact,
                    // it must match the oracle.
                    oracle.run_to_target(&net, s, t);
                    if got == oracle.distance(t) {
                        outcomes[0] += 1;
                    }
                }
                Err(ClientError::Io(_)) => outcomes[2] += 1,
                Err(_) => outcomes[1] += 1,
            }
        }
        let counters = proxy.counters();
        proxy.stop();
        assert!(
            counters.total_faults() > 0,
            "seed {seed:#x}: the chaos plan injected nothing"
        );

        // Clean connection after the storm: exact answers, no residue.
        let mut clean = ServeClient::connect(addr).expect("clean connect");
        clean.set_io_timeout(Some(IO_TIMEOUT)).expect("set timeout");
        for &(s, t) in qs.iter().take(16) {
            let got = clean
                .distance(BackendKind::Dijkstra, s, t)
                .expect("clean connection must answer");
            oracle.run_to_target(&net, s, t);
            assert_eq!(
                got,
                oracle.distance(t),
                "seed {seed:#x}: wrong answer after chaos"
            );
        }
        eprintln!(
            "[byteproxy_chaos] seed {seed:#x}: {} ok / {} typed / {} transport, faults {counters:?}",
            outcomes[0], outcomes[1], outcomes[2]
        );
    }

    let mut c = ServeClient::connect(addr).expect("connect for shutdown");
    c.shutdown_server().expect("shutdown");
    let stats = server.join();
    // Byte garbage must never panic a worker: restarts stay at zero.
    assert!(
        stats.contains("worker_restarts=0"),
        "a worker died to byte chaos:\n{stats}"
    );
}

/// Wire chaos against *pipelined* connections: each connection fires a
/// burst of distance frames before reading anything, while the proxy
/// splits writes, stalls mid-frame, and severs connections (no bit
/// flips or duplications, so every frame that arrives is intact and
/// response order is unambiguous). The contract: every response that
/// comes back before a kill is the in-order, oracle-exact answer to
/// the matching request — chaos may truncate a pipeline, never reorder
/// or corrupt it.
#[test]
fn pipelined_connections_survive_byte_chaos_in_order() {
    use spq_serve::protocol::{read_frame, write_frame, Request, STATUS_OK, UNREACHABLE};

    let net = test_net();
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    let cfg = ServerConfig {
        workers: 2,
        shards: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();
    let qs = pairs(net.num_nodes(), 96);
    let mut oracle = Dijkstra::new(net.num_nodes());

    let mut prefixes_verified = 0usize;
    for seed in [0x91be_11ed_u64, 7, 0x00ac_ce55] {
        let plan = ByteFaultPlan {
            seed,
            split_prob: 0.7,
            stall_prob: 0.3,
            stall: Duration::from_millis(30),
            flip_prob: 0.0,
            dup_prob: 0.0,
            kill_prob: 0.15,
            fault_upstream: true,
            fault_downstream: false,
        };
        let proxy = ByteProxy::start(addr, plan).expect("start proxy");
        let via = proxy.local_addr();
        for burst in qs.chunks(8) {
            let Ok(stream) = std::net::TcpStream::connect(via) else {
                continue;
            };
            stream.set_read_timeout(Some(IO_TIMEOUT)).expect("timeout");
            stream.set_write_timeout(Some(IO_TIMEOUT)).expect("timeout");
            let mut stream = stream;
            let started = Instant::now();
            // Fire the whole burst before reading a single byte.
            let mut sent = 0usize;
            for &(s, t) in burst {
                let frame = Request::Distance {
                    backend: BackendKind::Dijkstra.wire_id(),
                    s,
                    t,
                    deadline_ms: 0,
                }
                .encode();
                if write_frame(&mut stream, &frame).is_err() {
                    break; // the proxy severed the connection mid-burst
                }
                sent += 1;
            }
            // Read whatever prefix of the pipeline survives; each
            // response must be the exact in-order answer.
            let mut buf = Vec::new();
            for &(s, t) in &burst[..sent] {
                match read_frame(&mut stream, &mut buf) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => break, // killed: the prefix ends here
                }
                assert!(
                    started.elapsed() < HANG_BOUND,
                    "seed {seed:#x}: pipelined burst hung"
                );
                assert_eq!(buf.first(), Some(&STATUS_OK), "seed {seed:#x}");
                let got = u64::from_le_bytes(buf[1..9].try_into().unwrap());
                oracle.run_to_target(&net, s, t);
                let expected = oracle.distance(t).unwrap_or(UNREACHABLE);
                assert_eq!(
                    got, expected,
                    "seed {seed:#x}: out-of-order or wrong pipelined response for ({s}, {t})"
                );
                prefixes_verified += 1;
            }
        }
        let counters = proxy.counters();
        proxy.stop();
        assert!(
            counters.total_faults() > 0,
            "seed {seed:#x}: the chaos plan injected nothing"
        );
    }
    assert!(
        prefixes_verified > 32,
        "chaos killed nearly everything; only {prefixes_verified} responses checked"
    );

    let mut c = ServeClient::connect(addr).expect("connect for shutdown");
    let stats = c.stats().expect("stats");
    let pipelined: u64 = stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("pipelined_frames="))
        .and_then(|v| v.parse().ok())
        .expect("stats expose pipelined_frames");
    assert!(pipelined > 0, "bursts never pipelined:\n{stats}");
    c.shutdown_server().expect("shutdown");
    let stats = server.join();
    assert!(
        stats.contains("worker_restarts=0"),
        "a worker died to pipelined byte chaos:\n{stats}"
    );
}

/// Response-direction chaos: the *client* sees mangled bytes. The
/// client must fail typed/transport within its bounds — and the server
/// must shrug the aborted connections off.
#[test]
fn client_survives_byte_chaos_on_responses() {
    let net = test_net();
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    let server = Server::start(Arc::clone(&engine), &ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let plan = ByteFaultPlan {
        seed: 0xd01_5eed,
        split_prob: 0.5,
        stall_prob: 0.2,
        stall: Duration::from_millis(25),
        flip_prob: 0.3,
        dup_prob: 0.2,
        kill_prob: 0.2,
        fault_upstream: false,
        fault_downstream: true,
    };
    let proxy = ByteProxy::start(addr, plan).expect("start proxy");
    let via = proxy.local_addr();
    let qs = pairs(net.num_nodes(), 32);
    for (i, &(s, t)) in qs.iter().enumerate() {
        let Ok(mut c) = ServeClient::connect(via) else {
            continue;
        };
        c.set_io_timeout(Some(IO_TIMEOUT)).expect("set timeout");
        let started = Instant::now();
        let _ = c.distance(BackendKind::Dijkstra, s, t);
        assert!(
            started.elapsed() < HANG_BOUND,
            "request {i} hung on response chaos"
        );
    }
    proxy.stop();
    // The server is unharmed: a clean client still gets exact answers.
    let mut clean = ServeClient::connect(addr).expect("clean connect");
    let mut oracle = Dijkstra::new(net.num_nodes());
    for &(s, t) in qs.iter().take(8) {
        let got = clean
            .distance(BackendKind::Dijkstra, s, t)
            .expect("clean connection must answer");
        oracle.run_to_target(&net, s, t);
        assert_eq!(got, oracle.distance(t));
    }
    clean.shutdown_server().expect("shutdown");
    server.join();
}
