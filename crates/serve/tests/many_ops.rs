//! Socket-level coverage for the one-to-many / kNN / range wire ops.
//!
//! Everything here goes through a real TCP server — frame encoding,
//! dispatch, budget plumbing, and the epoch registry are all in the
//! loop. The invariants:
//!
//! 1. every answer served over the wire equals the Dijkstra oracle, on
//!    both the PHAST-backed CH engine and the brute-force default
//!    sessions (dijkstra), so the two implementations cross-check;
//! 2. malformed requests (unknown POI set, range on a backend without
//!    an enumeration kernel) come back as typed errors, not garbage;
//! 3. a request whose deadline expires mid-query surfaces as
//!    `ClientError::DeadlineExceeded` — for every one of the new ops —
//!    instead of an `UNREACHABLE` lie or a hang;
//! 4. a hot epoch swap mid-stream never yields a wrong answer and the
//!    POI registry survives the swap (kNN keeps serving).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_many::PoiSet;
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{
    BackendKind, ClientError, Engine, ReloadFactory, RetryPolicy, RetryingClient, ServeClient,
};
use spq_synth::SynthParams;

fn test_net(target: usize, seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(target),
        seed,
    ))
}

/// All-targets oracle tables for a handful of sources, computed once.
struct Oracle {
    sources: Vec<NodeId>,
    rows: Vec<Vec<Option<Dist>>>,
}

impl Oracle {
    fn build(net: &RoadNetwork, sources: Vec<NodeId>) -> Oracle {
        let mut dij = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as NodeId;
        let rows = sources
            .iter()
            .map(|&s| {
                dij.run(net, s);
                (0..n).map(|t| dij.distance(t)).collect()
            })
            .collect();
        Oracle { sources, rows }
    }

    fn row(&self, s: NodeId) -> &[Option<Dist>] {
        let i = self.sources.iter().position(|&x| x == s).expect("source");
        &self.rows[i]
    }

    /// Expected kNN answer: best `k` POIs by `(distance, vertex)`.
    fn knn(&self, s: NodeId, k: usize, poi: &[NodeId]) -> Vec<(NodeId, Dist)> {
        let row = self.row(s);
        let mut best: Vec<(Dist, NodeId)> = poi
            .iter()
            .filter_map(|&p| row[p as usize].map(|d| (d, p)))
            .collect();
        best.sort_unstable();
        best.truncate(k);
        best.into_iter().map(|(d, p)| (p, d)).collect()
    }

    /// Expected range answer: every vertex within `limit`, ascending.
    fn range(&self, s: NodeId, limit: Dist) -> Vec<(NodeId, Dist)> {
        self.row(s)
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.filter(|&d| d <= limit).map(|d| (v as NodeId, d)))
            .collect()
    }
}

/// A range limit that keeps a realistic fraction of the network in
/// scope: the ~30th percentile of finite distances from `s`.
fn range_limit(oracle: &Oracle, s: NodeId) -> Dist {
    let mut ds: Vec<Dist> = oracle.row(s).iter().filter_map(|&d| d).collect();
    ds.sort_unstable();
    ds[ds.len() * 3 / 10]
}

/// One-to-many / kNN / range served over the socket must equal the
/// Dijkstra oracle on both the PHAST-backed CH backend and the
/// brute-force default sessions, and bad requests must fail typed.
#[test]
fn many_ops_roundtrip_matches_oracle_over_the_socket() {
    let net = test_net(220, 0x00a1_10b5);
    let n = net.num_nodes() as NodeId;
    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch, BackendKind::Tnr],
    ));
    let poi = PoiSet::sample(&net, "cafes", 24, 0xcafe).expect("sample POI set");
    engine.register_pois(vec![poi.clone()]).expect("register");

    let sources: Vec<NodeId> = vec![0, n / 3, n / 2, n - 1];
    let oracle = Oracle::build(&net, sources.clone());

    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // The dijkstra backend exercises the default (brute-force) Session
    // implementations; ch exercises the PHAST sweep and bucket index.
    // Both must agree with the oracle bit-for-bit.
    let targets: Vec<NodeId> = (0..n).step_by(7).collect();
    for &s in &sources {
        let row = oracle.row(s);
        for backend in [BackendKind::Dijkstra, BackendKind::Ch] {
            let got = client.one_to_many(backend, s, &targets).expect("o2m");
            let expect: Vec<Option<Dist>> = targets.iter().map(|&t| row[t as usize]).collect();
            assert_eq!(got, expect, "{backend:?} one_to_many({s})");

            for k in [0usize, 5, 1000] {
                let got = client.knn(backend, s, k as u32, "cafes").expect("knn");
                assert_eq!(
                    got,
                    oracle.knn(s, k, poi.nodes()),
                    "{backend:?} knn({s}, {k})"
                );
            }

            let limit = range_limit(&oracle, s);
            let got = client.range(backend, s, limit).expect("range");
            assert_eq!(
                got,
                oracle.range(s, limit),
                "{backend:?} range({s}, {limit})"
            );
        }
    }

    // Unknown POI set: a typed request-level error naming the set.
    match client.knn(BackendKind::Ch, 0, 3, "nope") {
        Err(ClientError::Remote(msg)) => {
            assert!(msg.contains("unknown POI set 'nope'"), "got: {msg}")
        }
        other => panic!("unknown POI set must fail typed, got {other:?}"),
    }

    // Range on a backend without an enumeration kernel (TNR uses the
    // default Session::range): a typed "not served" error.
    match client.range(BackendKind::Tnr, 0, 1_000_000) {
        Err(ClientError::Remote(msg)) => {
            assert!(msg.contains("does not serve range queries"), "got: {msg}")
        }
        other => panic!("unsupported range must fail typed, got {other:?}"),
    }

    drop(client);
    server.request_shutdown();
    server.join();
}

/// A backend whose every query spins until its budget trips — a stand-in
/// for a query too expensive to finish inside any reasonable deadline.
/// A 10-second fuse keeps a buggy budget from hanging the suite.
struct StallBackend;
struct StallSession {
    budget: QueryBudget,
    tripped: bool,
}

impl Backend for StallBackend {
    fn backend_name(&self) -> &'static str {
        "Stall"
    }
    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(StallSession {
            budget: QueryBudget::unlimited(),
            tripped: false,
        })
    }
}

impl StallSession {
    /// Spins until the budget trips (sets `tripped`) or the fuse blows.
    fn stall(&mut self) {
        self.budget.reset();
        self.tripped = false;
        let fuse = Instant::now() + Duration::from_secs(10);
        while Instant::now() < fuse {
            if !self.budget.charge() {
                self.tripped = true;
                return;
            }
        }
    }
}

impl Session for StallSession {
    fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
        self.stall();
        None
    }
    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.distance(s, t).map(|d| (d, vec![s, t]))
    }
    // one_to_many and knn inherit the defaults, which route through
    // `distance` — exactly the path a budget-honoring engine takes.
    fn range(&mut self, _s: NodeId, _limit: Dist, _out: &mut Vec<(NodeId, Dist)>) -> bool {
        self.stall();
        true
    }
    fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }
    fn interrupted(&self) -> bool {
        self.tripped
    }
}

/// Every new op must surface an expired deadline as
/// `DeadlineExceeded` through the socket — never as an answer.
#[test]
fn deadline_expiry_surfaces_as_deadline_exceeded_on_many_ops() {
    let net = test_net(120, 0xdead);
    // A real CH slot so POI registration works; the stall backend rides
    // along under the TNR wire id and is the one we query.
    let engine = Arc::new(
        Engine::build(net.clone(), &[BackendKind::Ch])
            .with_backend(BackendKind::Tnr, Box::new(StallBackend)),
    );
    let poi = PoiSet::sample(&net, "cafes", 8, 0xcafe).expect("sample POI set");
    engine.register_pois(vec![poi]).expect("register");

    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.set_deadline_ms(1);

    let targets: Vec<NodeId> = (0..16).collect();
    match client.one_to_many(BackendKind::Tnr, 0, &targets) {
        Err(ClientError::DeadlineExceeded(_)) => {}
        other => panic!("one_to_many past deadline must trip, got {other:?}"),
    }
    match client.knn(BackendKind::Tnr, 0, 3, "cafes") {
        Err(ClientError::DeadlineExceeded(_)) => {}
        other => panic!("knn past deadline must trip, got {other:?}"),
    }
    match client.range(BackendKind::Tnr, 0, 1_000_000) {
        Err(ClientError::DeadlineExceeded(_)) => {}
        other => panic!("range past deadline must trip, got {other:?}"),
    }

    // The same connection, no deadline, real backend: still healthy —
    // an expired request must not poison the worker or the session.
    client.set_deadline_ms(0);
    let got = client
        .one_to_many(BackendKind::Ch, 0, &targets)
        .expect("ch o2m after deadline errors");
    let mut dij = Dijkstra::new(net.num_nodes());
    dij.run(&net, 0);
    let expect: Vec<Option<Dist>> = targets.iter().map(|&t| dij.distance(t)).collect();
    assert_eq!(got, expect);

    drop(client);
    server.request_shutdown();
    server.join();
}

/// Hot epoch swaps mid-stream: a client hammers the three new ops while
/// reloads publish fresh engines (same network, re-registered POI set).
/// Every answer must stay oracle-exact and kNN must keep serving across
/// the swap — the POI registry is per-epoch state.
#[test]
fn hot_swap_mid_stream_keeps_many_ops_exact() {
    let net = test_net(200, 0x5a97);
    let n = net.num_nodes() as NodeId;
    let poi = PoiSet::sample(&net, "cafes", 16, 0xcafe).expect("sample POI set");

    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch],
    ));
    engine.register_pois(vec![poi.clone()]).expect("register");

    // The factory rebuilds the same engine — the point is exercising the
    // swap under live many-op traffic, not changing the answers.
    let factory = {
        let net = net.clone();
        let poi = poi.clone();
        ReloadFactory::new(move || {
            let engine = Arc::new(Engine::build(
                net.clone(),
                &[BackendKind::Dijkstra, BackendKind::Ch],
            ));
            engine.register_pois(vec![poi.clone()])?;
            Ok(engine)
        })
    };
    let cfg = ServerConfig {
        workers: 3,
        reload_factory: Some(factory),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let sources: Vec<NodeId> = vec![1, n / 4, n / 2, n - 2];
    let oracle = Oracle::build(&net, sources.clone());
    let targets: Vec<NodeId> = (0..n).step_by(5).collect();

    let stop = AtomicBool::new(false);
    let swaps = std::thread::scope(|scope| {
        let hammer = scope.spawn(|| {
            let mut client = RetryingClient::new(
                addr,
                RetryPolicy {
                    max_retries: 10,
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(20),
                    seed: 0x7e57,
                    partial_retries: 10,
                },
            );
            let mut served = 0u64;
            for i in 0.. {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let s = sources[i % sources.len()];
                let backend = if i % 2 == 0 {
                    BackendKind::Ch
                } else {
                    BackendKind::Dijkstra
                };
                match i % 3 {
                    0 => {
                        let got = client.one_to_many(backend, s, &targets).expect("o2m");
                        let expect: Vec<Option<Dist>> =
                            targets.iter().map(|&t| oracle.row(s)[t as usize]).collect();
                        assert_eq!(got, expect, "o2m({s}) wrong mid-swap");
                    }
                    1 => {
                        let got = client.knn(backend, s, 4, "cafes").expect("knn");
                        assert_eq!(
                            got,
                            oracle.knn(s, 4, poi.nodes()),
                            "knn({s}) wrong mid-swap"
                        );
                    }
                    _ => {
                        let limit = range_limit(&oracle, s);
                        let got = client.range(backend, s, limit).expect("range");
                        assert_eq!(got, oracle.range(s, limit), "range({s}) wrong mid-swap");
                    }
                }
                served += 1;
            }
            served
        });

        // Drive reloads from the main thread while the hammer runs.
        let mut control = ServeClient::connect(addr).expect("connect control");
        let mut swaps = 0u64;
        let mut last_epoch = 0u64;
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(60));
            let epoch = control.reload().expect("reload");
            assert!(epoch > last_epoch, "epochs must advance");
            last_epoch = epoch;
            swaps += 1;
        }
        std::thread::sleep(Duration::from_millis(60));
        stop.store(true, Ordering::SeqCst);
        let served = hammer.join().expect("hammer thread");
        assert!(
            served >= 9,
            "hammer must exercise every op repeatedly, served only {served}"
        );
        swaps
    });
    assert!(swaps >= 1, "at least one hot swap must publish");

    server.request_shutdown();
    server.join();
}
