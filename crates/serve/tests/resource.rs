//! Resource-exhaustion suite: the server must survive slow readers,
//! file-descriptor exhaustion, admission overload, and memory-budget
//! pressure with *typed* shedding — bounded buffers, no hangs, and
//! never a wrong answer from a connection it chose to keep.
//!
//! The invariants under resource pressure:
//!
//! 1. a peer that stops reading its responses has its write backlog
//!    capped (backpressure: parsing and reading pause), and if it makes
//!    no progress for the write timeout it is force-closed and counted
//!    as `slow_closed` — while well-behaved clients on the same shard
//!    keep getting oracle-correct answers;
//! 2. injected fd exhaustion at accept sheds peers with one typed BUSY
//!    frame instead of hanging them in the listen queue;
//! 3. past `--max-connections` new peers are shed at the door and
//!    capacity returns as soon as a connection closes;
//! 4. past `--mem-budget` reads pause until flushed responses free
//!    memory, and the accounting refunds on close — the gauge returns
//!    under the budget instead of ratcheting.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{BackendKind, ClientError, Engine, FaultInjector, FaultPlan, ServeClient};
use spq_synth::SynthParams;

fn test_net(target: usize, seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(target),
        seed,
    ))
}

fn field(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
}

/// One length-prefixed DISTANCES frame whose response (n_sources ×
/// n_targets × 8 bytes) is far larger than the request — the
/// slow-reader amplification vector. Pick a backend with a native
/// many-to-many kernel (CH) when the batch is huge: the Dijkstra
/// fallback decomposes it into n_sources × n_targets point-to-point
/// runs, which would monopolise the worker pool instead of the write
/// path the amplification is meant to pressure.
fn big_distances_frame(
    net: &RoadNetwork,
    backend: BackendKind,
    n_sources: usize,
    n_targets: usize,
) -> Vec<u8> {
    let n = net.num_nodes() as NodeId;
    let sources: Vec<NodeId> = (0..n_sources as NodeId).map(|i| i % n).collect();
    let targets: Vec<NodeId> = (0..n_targets as NodeId).map(|i| (i * 7 + 1) % n).collect();
    let payload = spq_serve::protocol::Request::Distances {
        backend: backend.wire_id(),
        sources,
        targets,
        deadline_ms: 0,
    }
    .encode();
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Satellite (a): a never-reading peer pipelines responses worth
/// ~32MiB against a 32KiB write-backlog cap. Kernel socket buffers can
/// absorb a few MiB, never this much, so the server's own backlog must
/// fill, stay bounded (cap plus at most a pipeline's worth of
/// dispatched frames), and trip the typed `slow_closed` force-close —
/// while a concurrent well-behaved client keeps getting oracle answers.
#[test]
fn a_slow_reader_is_force_closed_while_the_shard_keeps_serving() {
    let net = test_net(300, 0x51033);
    let engine = Arc::new(Engine::build(
        net.clone(),
        &[BackendKind::Dijkstra, BackendKind::Ch],
    ));
    let cfg = ServerConfig {
        workers: 2,
        shards: 1, // one shard: the hoarder and the good client share it
        pipeline_depth: 2,
        wbuf_cap: 32 * 1024,
        write_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    // 8 pipelined 8×65536 batches ≈ 32MiB of responses from ~2MiB of
    // requests, computed by CH's many-to-many kernel in milliseconds so
    // the flood lands on the write path, not the worker pool the good
    // client shares. The backpressure may pause reads mid-stream (a
    // write error just means the server already stopped us — also fine).
    let frame = big_distances_frame(&net, BackendKind::Ch, 8, 65536);
    let mut hoarder = TcpStream::connect(addr).expect("connect hoarder");
    hoarder
        .set_write_timeout(Some(Duration::from_millis(200)))
        .expect("write timeout");
    for _ in 0..8 {
        if hoarder.write_all(&frame).is_err() {
            break;
        }
    }

    // The well-behaved client must not be starved by the hoarder.
    let mut good = ServeClient::connect(addr).expect("connect good client");
    good.set_io_timeout(Some(Duration::from_secs(10)))
        .expect("io timeout");
    let mut oracle = Dijkstra::new(net.num_nodes());
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        for &(s, t) in &[(0u32, 7u32), (3, 11), (5, 2)] {
            let got = good
                .distance(BackendKind::Dijkstra, s, t)
                .expect("good client must be served while the hoarder stalls");
            oracle.run_to_target(&net, s, t);
            assert_eq!(got, oracle.distance(t), "wrong answer beside a slow reader");
        }
        let stats = good.stats().expect("stats");
        if field(&stats, "slow_closed") >= 1 {
            // The backlog never grew past the cap plus the dispatched
            // pipeline (2 × 4MiB responses in flight past the cap check,
            // plus one being flushed) — far below the ~32MiB a peer
            // tried to park on us.
            assert!(
                field(&stats, "wbuf_peak") < 16 * 1024 * 1024,
                "write backlog must stay bounded:\n{stats}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the slow reader was never force-closed:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(hoarder);

    let _ = good.shutdown_server();
    server.join();
}

/// Satellite (d): injected EMFILE at accept. The first N peers are shed
/// with a typed BUSY frame (never hung, never crashed); the next peer is
/// served normally and STATS carries the `accept_emfile` count.
#[test]
fn injected_fd_exhaustion_sheds_accepts_with_typed_busy() {
    let net = test_net(200, 0xfd);
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        emfile_accepts: 3,
        ..FaultPlan::default()
    }));
    let cfg = ServerConfig {
        workers: 2,
        fault: Some(Arc::clone(&injector)),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let mut busy = 0usize;
    for i in 0..3 {
        let mut c = ServeClient::connect(addr).expect("TCP connect still succeeds");
        let _ = c.set_io_timeout(Some(Duration::from_secs(5)));
        match c.ping() {
            Err(ClientError::Busy(msg)) => {
                assert!(msg.contains("file descriptors"), "{msg}");
                busy += 1;
            }
            // The BUSY frame races the close; losing it surfaces as a
            // clean transport error, never a hang.
            Err(ClientError::Io(_)) => {}
            other => panic!("shed connection {i} got {other:?}"),
        }
    }
    assert!(busy >= 1, "no shed peer saw the typed BUSY frame");

    // Injection exhausted: the next peer is adopted and served.
    let mut c = ServeClient::connect(addr).expect("connect after injection");
    c.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    c.ping().expect("server serves once fds are back");
    let mut oracle = Dijkstra::new(net.num_nodes());
    oracle.run_to_target(&net, 1, 9);
    assert_eq!(
        c.distance(BackendKind::Dijkstra, 1, 9).expect("query"),
        oracle.distance(9)
    );
    let stats = c.stats().expect("stats");
    assert_eq!(field(&stats, "accept_emfile"), 3, "{stats}");
    let _ = c.shutdown_server();
    server.join();
}

/// `--max-connections`: the third peer is shed at the door with a typed
/// BUSY, and dropping one held connection returns capacity.
#[test]
fn the_connection_limit_sheds_at_the_door_and_recovers_capacity() {
    let net = test_net(128, 0xadd);
    let engine = Arc::new(Engine::build(net, &[BackendKind::Dijkstra]));
    let cfg = ServerConfig {
        workers: 2,
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let mut held1 = ServeClient::connect(addr).expect("conn 1");
    held1.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    held1.ping().expect("conn 1 adopted");
    let mut held2 = ServeClient::connect(addr).expect("conn 2");
    held2.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    held2.ping().expect("conn 2 adopted");

    let mut c3 = ServeClient::connect(addr).expect("TCP connect still succeeds");
    c3.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    match c3.ping() {
        Err(ClientError::Busy(msg)) => assert!(msg.contains("connection limit"), "{msg}"),
        Err(ClientError::Io(_)) => {} // BUSY frame lost to the close race
        other => panic!("over-limit peer got {other:?}"),
    }
    let stats_text = held1.stats().expect("stats");
    assert!(field(&stats_text, "accept_shed") >= 1, "{stats_text}");

    // Capacity returns once a held connection goes away (the shard has
    // to notice the close, so poll briefly).
    drop(held1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = ServeClient::connect(addr).expect("reconnect");
        c.set_io_timeout(Some(Duration::from_secs(2))).unwrap();
        if c.ping().is_ok() {
            let _ = c.shutdown_server();
            break;
        }
        assert!(
            Instant::now() < deadline,
            "capacity never returned after a close"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.join();
}

/// `--mem-budget`: a hoarder drives the global gauge over the budget;
/// the server survives by pausing reads (never OOM, never a crash), a
/// well-behaved client still gets oracle answers, and once the hoarder
/// is reclaimed the refunds bring the gauge back under the budget.
#[test]
fn the_memory_budget_applies_backpressure_and_refunds_on_close() {
    const BUDGET: usize = 256 * 1024;
    let net = test_net(300, 0x3e3);
    let engine = Arc::new(Engine::build(net.clone(), &[BackendKind::Dijkstra]));
    let cfg = ServerConfig {
        workers: 2,
        shards: 1,
        pipeline_depth: 4,
        mem_budget: BUDGET,
        write_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).expect("bind");
    let addr = server.local_addr();

    let frame = big_distances_frame(&net, BackendKind::Dijkstra, 128, 128);
    let mut hoarder = TcpStream::connect(addr).expect("connect hoarder");
    hoarder
        .set_write_timeout(Some(Duration::from_millis(200)))
        .expect("write timeout");
    for _ in 0..16 {
        if hoarder.write_all(&frame).is_err() {
            break;
        }
    }

    // The budget pauses reads while the hoarder's responses are owed;
    // the write-timeout reaper then reclaims it and refunds its bytes.
    // A patient well-behaved client must get through either way.
    let mut good = ServeClient::connect(addr).expect("connect good client");
    good.set_io_timeout(Some(Duration::from_secs(15)))
        .expect("io timeout");
    let mut oracle = Dijkstra::new(net.num_nodes());
    for &(s, t) in &[(2u32, 9u32), (4, 17), (1, 5)] {
        let got = good
            .distance(BackendKind::Dijkstra, s, t)
            .expect("budget pressure must not starve a reading client");
        oracle.run_to_target(&net, s, t);
        assert_eq!(
            got,
            oracle.distance(t),
            "wrong answer under memory pressure"
        );
    }
    drop(hoarder);

    // The gauge must come back under the budget once the hoarder's
    // accounted bytes are refunded — pressure is transient, not a
    // ratchet.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = good.stats().expect("stats");
        assert_eq!(field(&stats, "mem_budget"), BUDGET as u64, "{stats}");
        if field(&stats, "mem_used") <= BUDGET as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "mem_used never returned under the budget:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = good.shutdown_server();
    server.join();
}
