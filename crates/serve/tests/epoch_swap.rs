//! Property: a hot index swap is atomic from every client's point of
//! view. While a reload replaces the whole network mid-flight,
//!
//! * every point answer equals the old epoch's oracle value or the new
//!   epoch's — never anything else (a torn swap or a cross-epoch cache
//!   hit would surface as a third value);
//! * a batched DISTANCES response is answered entirely by one epoch —
//!   never a row-mix of both;
//! * after the swap, repeated queries (the second of which is a cache
//!   hit by construction) return only new-epoch answers, proving no
//!   stale cache entry survived the epoch purge.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use spq_dijkstra::Dijkstra;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{BackendKind, Engine, ReloadFactory, ServeClient};
use spq_synth::SynthParams;

fn synth(seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(96),
        seed,
    ))
}

fn oracle_distances(net: &RoadNetwork, pairs: &[(NodeId, NodeId)]) -> Vec<Option<Dist>> {
    let mut d = Dijkstra::new(net.num_nodes());
    pairs
        .iter()
        .map(|&(s, t)| {
            d.run_to_target(net, s, t);
            d.distance(t)
        })
        .collect()
}

/// The oracle table in the same row-major layout DISTANCES responds in.
fn oracle_batch(net: &RoadNetwork, sources: &[NodeId], targets: &[NodeId]) -> Vec<Option<Dist>> {
    let mut d = Dijkstra::new(net.num_nodes());
    let mut table = Vec::with_capacity(sources.len() * targets.len());
    for &s in sources {
        for &t in targets {
            d.run_to_target(net, s, t);
            table.push(d.distance(t));
        }
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn hot_swaps_are_atomic_and_cache_hits_stay_in_epoch(seed in any::<u64>()) {
        // Two genuinely different networks: distances disagree between
        // the epochs, so a stale or mixed answer is distinguishable.
        let net_a = synth(seed);
        let net_b = synth(seed ^ 0x5EED_CAFE_F00D_D1CE);
        let n = net_a.num_nodes().min(net_b.num_nodes()) as u64;
        prop_assert!(n >= 8, "synthetic networks are never this small");

        let pairs: Vec<(NodeId, NodeId)> = {
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % n) as NodeId
            };
            (0..12).map(|_| (next(), next())).collect()
        };
        let d_a = oracle_distances(&net_a, &pairs);
        let d_b = oracle_distances(&net_b, &pairs);
        let nn = n as NodeId;
        let sources: Vec<NodeId> = (0..3).map(|i| i * (nn / 3).max(1) % nn).collect();
        let targets: Vec<NodeId> = (0..3).map(|i| (i * 7 + 1) % nn).collect();
        let batch_a = oracle_batch(&net_a, &sources, &targets);
        let batch_b = oracle_batch(&net_b, &sources, &targets);

        let engine = Arc::new(Engine::build(
            net_a.clone(),
            &[BackendKind::Dijkstra, BackendKind::Ch],
        ));
        let factory_net = net_b.clone();
        let factory = ReloadFactory::new(move || {
            Ok(Arc::new(Engine::build(
                factory_net.clone(),
                &[BackendKind::Dijkstra, BackendKind::Ch],
            )))
        });
        let cfg = ServerConfig {
            workers: 3,
            reload_factory: Some(factory),
            ..ServerConfig::default()
        };
        let server = Server::start(engine, &cfg).expect("bind");
        let addr = server.local_addr();

        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let stop = &stop;
            let pairs = &pairs;
            let (d_a, d_b) = (&d_a, &d_b);
            let (sources, targets) = (&sources, &targets);
            let (batch_a, batch_b) = (&batch_a, &batch_b);
            // Point queries: every answer belongs to exactly one epoch.
            scope.spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                let mut i = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let k = i % pairs.len();
                    let (s, t) = pairs[k];
                    let kind = if i % 2 == 0 {
                        BackendKind::Dijkstra
                    } else {
                        BackendKind::Ch
                    };
                    let got = c.distance(kind, s, t).expect("distance across swap");
                    assert!(
                        got == d_a[k] || got == d_b[k],
                        "answer from no epoch: ({s},{t}) -> {got:?}, \
                         epoch A {:?}, epoch B {:?}",
                        d_a[k],
                        d_b[k]
                    );
                    i += 1;
                }
            });
            // Batches: one response never mixes epochs.
            scope.spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                while !stop.load(Ordering::SeqCst) {
                    let table = c
                        .distances(BackendKind::Ch, sources, targets)
                        .expect("batch across swap");
                    assert!(
                        table == *batch_a || table == *batch_b,
                        "a batch response mixed epochs:\n{table:?}\nA: {batch_a:?}\nB: {batch_b:?}"
                    );
                }
            });
            let mut rc = ServeClient::connect(addr).expect("connect reloader");
            std::thread::sleep(Duration::from_millis(30));
            let epoch = rc.reload().expect("reload");
            assert_eq!(epoch, 1);
            std::thread::sleep(Duration::from_millis(30));
            stop.store(true, Ordering::SeqCst);
        });

        // Post-swap: the first round may miss the cache, the second is
        // a hit by construction — both must answer from epoch B. A
        // stale epoch-A entry surviving the purge would answer d_a.
        let mut c = ServeClient::connect(addr).expect("connect");
        for round in 0..2 {
            for (k, &(s, t)) in pairs.iter().enumerate() {
                let got = c.distance(BackendKind::Ch, s, t).expect("post-swap");
                prop_assert_eq!(
                    got,
                    d_b[k],
                    "post-swap answer for ({}, {}) in round {} must come from the new epoch",
                    s,
                    t,
                    round
                );
            }
        }
        server.request_shutdown();
        server.join();
    }
}
