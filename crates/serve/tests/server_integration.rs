//! End-to-end tests of the serving subsystem over real TCP sockets:
//! every backend is exercised through the wire protocol and checked
//! against a locally computed Dijkstra oracle, concurrent clients hit
//! the shared cache without ever observing a stale or torn result, and
//! malformed traffic is rejected without taking the server down.

use std::net::SocketAddr;
use std::sync::Arc;

use spq_dijkstra::Dijkstra;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_serve::protocol::{self, STATUS_ERROR, STATUS_OK};
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{BackendKind, Engine, ServeClient};
use spq_synth::SynthParams;

fn test_net(target: usize, seed: u64) -> RoadNetwork {
    spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(target),
        seed,
    ))
}

/// Starts a self-checked server over a fresh synthetic network.
fn start_server(target: usize, kinds: &[BackendKind], workers: usize) -> (Server, SocketAddr) {
    let engine = Arc::new(Engine::build(test_net(target, 0xa11ce), kinds));
    engine.self_check(16, 3).expect("engine must be clean");
    let cfg = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

fn shutdown(server: Server, addr: SocketAddr) -> String {
    let mut client = ServeClient::connect(addr).expect("connect for shutdown");
    client.shutdown_server().expect("shutdown frame");
    server.join()
}

/// Deterministic sample pairs spread over the vertex range.
fn sample_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = n as u64;
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % n) as NodeId;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % n) as NodeId;
            (s, t)
        })
        .collect()
}

#[test]
fn every_backend_agrees_with_the_oracle_over_sockets() {
    let kinds = BackendKind::ALL; // including arc flags
    let (server, addr) = start_server(400, &kinds, 2);
    let net = test_net(400, 0xa11ce); // same seed → same network as the server's
    let mut oracle = Dijkstra::new(net.num_nodes());
    let mut client = ServeClient::connect(addr).expect("connect");
    client.ping().expect("ping");

    for (s, t) in sample_pairs(net.num_nodes(), 25) {
        oracle.run_to_target(&net, s, t);
        let expected = oracle.distance(t);
        for kind in kinds {
            let got = client.distance(kind, s, t).expect("distance");
            assert_eq!(got, expected, "{} disagrees on ({s}, {t})", kind.name());
            let path = client.shortest_path(kind, s, t).expect("path");
            match (expected, path) {
                (None, None) => {}
                (Some(d), Some((pd, p))) => {
                    assert_eq!(pd, d, "{}: wrong path length", kind.name());
                    assert_eq!(p.first().copied(), Some(s));
                    assert_eq!(p.last().copied(), Some(t));
                    assert_eq!(
                        net.path_length(&p),
                        Some(d),
                        "{}: invalid path",
                        kind.name()
                    );
                }
                (e, p) => panic!("{}: oracle {e:?} but server path {p:?}", kind.name()),
            }
        }
    }
    let stats = shutdown(server, addr);
    assert!(stats.contains("protocol_errors=0"), "{stats}");
}

#[test]
fn dense_batches_match_pointwise_answers() {
    let (server, addr) = start_server(300, &[BackendKind::Dijkstra, BackendKind::Ch], 2);
    let net = test_net(300, 0xa11ce);
    let n = net.num_nodes() as NodeId;
    let sources: Vec<NodeId> = (0..8).map(|i| i * (n / 8).max(1) % n).collect();
    let targets: Vec<NodeId> = (0..7).map(|i| (i * 37 + 5) % n).collect();

    let mut client = ServeClient::connect(addr).expect("connect");
    for kind in [BackendKind::Dijkstra, BackendKind::Ch] {
        let table = client
            .distances(kind, &sources, &targets)
            .expect("batched distances");
        assert_eq!(table.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                let single = client.distance(kind, s, t).expect("single distance");
                assert_eq!(
                    table[i * targets.len() + j],
                    single,
                    "{}: batch disagrees with single on ({s}, {t})",
                    kind.name()
                );
            }
        }
    }
    shutdown(server, addr);
}

/// N concurrent clients replay overlapping workloads (mixed cache hits
/// and misses by construction); every answer must equal the
/// precomputed oracle value — a stale or torn cache read would surface
/// as a mismatch here.
#[test]
fn concurrent_clients_never_observe_stale_or_torn_results() {
    let (server, addr) = start_server(300, &[BackendKind::Dijkstra, BackendKind::Ch], 8);
    let net = test_net(300, 0xa11ce);

    let pairs = sample_pairs(net.num_nodes(), 40);
    let mut oracle = Dijkstra::new(net.num_nodes());
    let expected: Vec<Option<Dist>> = pairs
        .iter()
        .map(|&(s, t)| {
            oracle.run_to_target(&net, s, t);
            oracle.distance(t)
        })
        .collect();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 30;
    std::thread::scope(|scope| {
        for worker in 0..CLIENTS {
            let pairs = &pairs;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                // Different starting offsets → different hit/miss mixes.
                for round in 0..ROUNDS {
                    let i = (worker * 7 + round * 3) % pairs.len();
                    let (s, t) = pairs[i];
                    let kind = if (worker + round) % 2 == 0 {
                        BackendKind::Dijkstra
                    } else {
                        BackendKind::Ch
                    };
                    let got = client.distance(kind, s, t).expect("distance");
                    assert_eq!(
                        got, expected[i],
                        "client {worker} got a wrong answer for ({s}, {t})"
                    );
                }
            });
        }
    });

    // The overlapping replay must have produced both hits and misses,
    // and the accounting must add up to the total distance queries.
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let field = |name: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.trim_end_matches('%').parse().ok())
            .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
    };
    let hits = field("hits");
    let misses = field("misses");
    assert!(
        hits > 0,
        "overlapping workload produced no cache hits:\n{stats}"
    );
    assert!(misses > 0, "first touches must miss:\n{stats}");
    assert_eq!(
        hits + misses,
        (CLIENTS * ROUNDS) as u64,
        "cache accounting out of balance:\n{stats}"
    );
    shutdown(server, addr);
}

/// Protocol pipelining: a burst of frames written before any response
/// is read comes back as one in-order response stream, and the stats
/// counters attribute the overlap.
#[test]
fn pipelined_frames_answer_in_request_order() {
    let (server, addr) = start_server(300, &[BackendKind::Dijkstra, BackendKind::Ch], 4);
    let net = test_net(300, 0xa11ce);
    let pairs = sample_pairs(net.num_nodes(), 48);
    let mut oracle = Dijkstra::new(net.num_nodes());

    let mut client = ServeClient::connect(addr).expect("connect");
    for burst in pairs.chunks(16) {
        let frames: Vec<Vec<u8>> = burst
            .iter()
            .map(|&(s, t)| {
                protocol::Request::Distance {
                    backend: BackendKind::Ch.wire_id(),
                    s,
                    t,
                    deadline_ms: 0,
                }
                .encode()
            })
            .collect();
        let responses = client.pipeline_raw(&frames).expect("pipelined burst");
        assert_eq!(responses.len(), burst.len());
        for (resp, &(s, t)) in responses.iter().zip(burst) {
            assert_eq!(resp.first(), Some(&STATUS_OK));
            let got = u64::from_le_bytes(resp[1..9].try_into().unwrap());
            oracle.run_to_target(&net, s, t);
            let expected = oracle.distance(t).unwrap_or(protocol::UNREACHABLE);
            assert_eq!(got, expected, "out-of-order response for ({s}, {t})");
        }
    }

    let stats = client.stats().expect("stats");
    let field = |name: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
    };
    assert!(field("shards") > 0, "{stats}");
    assert!(
        field("pipelined_frames") > 0,
        "bursts of 16 must overlap in flight:\n{stats}"
    );
    assert!(field("open_connections") >= 1, "{stats}");
    shutdown(server, addr);
}

#[test]
fn malformed_and_out_of_range_requests_get_errors_not_crashes() {
    let (server, addr) = start_server(200, &[BackendKind::Ch], 2);
    let net = test_net(200, 0xa11ce);
    let n = net.num_nodes() as NodeId;
    let mut client = ServeClient::connect(addr).expect("connect");

    // Unknown opcode.
    let resp = client.roundtrip_raw(&[0xEE]).expect("server answers");
    assert_eq!(resp.first(), Some(&STATUS_ERROR));
    // Empty payload.
    let resp = client.roundtrip_raw(&[]).expect("server answers");
    assert_eq!(resp.first(), Some(&STATUS_ERROR));
    // Truncated DISTANCE request.
    let resp = client
        .roundtrip_raw(&[protocol::op::DISTANCE, 1, 0, 0])
        .expect("server answers");
    assert_eq!(resp.first(), Some(&STATUS_ERROR));

    // Vertex out of range.
    match client.distance(BackendKind::Ch, n, 0) {
        Err(spq_serve::ClientError::Remote(msg)) => {
            assert!(msg.contains("out of range"), "{msg}")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    // Backend not served (TNR was not built into this engine).
    match client.distance(BackendKind::Tnr, 0, 1) {
        Err(spq_serve::ClientError::Remote(msg)) => {
            assert!(msg.contains("not served"), "{msg}")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }

    // The connection (and server) still works after all of that.
    let d = client
        .distance(BackendKind::Ch, 0, 1.min(n - 1))
        .expect("live");
    let mut oracle = Dijkstra::new(net.num_nodes());
    oracle.run_to_target(&net, 0, 1.min(n - 1));
    assert_eq!(d, oracle.distance(1.min(n - 1)));

    let stats = shutdown(server, addr);
    assert!(
        !stats.contains("protocol_errors=0"),
        "errors were counted: {stats}"
    );
}

#[test]
fn protocol_shutdown_stops_all_threads_and_dumps_stats() {
    let (server, addr) = start_server(200, &[BackendKind::Dijkstra], 3);
    let mut client = ServeClient::connect(addr).expect("connect");
    client.ping().expect("ping");
    let resp = client
        .roundtrip_raw(&protocol::Request::Shutdown.encode())
        .expect("shutdown ack");
    assert_eq!(resp.first(), Some(&STATUS_OK));
    // join() blocks until the acceptor and every worker exit; a hang
    // here (test timeout) is the failure mode this guards against.
    let stats = server.join();
    assert!(stats.contains("requests="), "{stats}");
    // New connections are refused once the listener is gone.
    assert!(
        ServeClient::connect(addr).is_err(),
        "listener survived shutdown"
    );
}
