//! Connection-scale smoke: the event loop must hold ~10k idle
//! connections at a cost of one fd each — never reaping them for being
//! quiet — while staying responsive on an active connection, and drain
//! all of them cleanly at shutdown (force_closed stays zero).
//!
//! Marked `#[ignore]`: opening 20k+ file descriptors wants a raised
//! NOFILE limit, so CI runs it as its own step
//! (`cargo test -p spq-serve --test scale_idle -- --ignored`).

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_serve::eventloop::raise_nofile_limit;
use spq_serve::server::{Server, ServerConfig};
use spq_serve::{BackendKind, Engine, ServeClient};
use spq_synth::SynthParams;

#[test]
#[ignore = "opens ~10k sockets; run explicitly (CI does) with a raised NOFILE limit"]
fn ten_thousand_idle_connections_hold_and_drain_cleanly() {
    // Each held connection costs two fds in-process (client + server
    // end); leave headroom for the suite's own files.
    let limit = raise_nofile_limit(32 * 1024);
    let target = (((limit.saturating_sub(512)) / 2) as usize).min(10_000);
    assert!(
        target >= 1_000,
        "NOFILE limit {limit} leaves no room to test connection scale"
    );

    let net = spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(200),
        21,
    ));
    let engine = Arc::new(Engine::build(net, &[BackendKind::Dijkstra]));
    let cfg = ServerConfig {
        workers: 2,
        shards: 4,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, &cfg).expect("bind");
    let addr = server.local_addr();

    let t0 = Instant::now();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(target);
    while idle.len() < target {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => panic!("connect #{} failed: {e}", idle.len()),
        }
    }
    eprintln!(
        "[scale_idle] opened {} idle connections in {:.2?}",
        idle.len(),
        t0.elapsed()
    );

    // Let the idle herd sit past the stall timeout: a quiet connection
    // at a frame boundary must never be reaped.
    std::thread::sleep(cfg.stall_timeout + Duration::from_millis(300));

    // An active client still gets prompt answers over the same shards.
    let mut client = ServeClient::connect(addr).expect("active connect");
    client
        .set_io_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for i in 0..32 {
        let t0 = Instant::now();
        client.ping().unwrap_or_else(|e| panic!("ping {i}: {e}"));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "ping {i} took {:?} with {} idle connections",
            t0.elapsed(),
            idle.len()
        );
    }
    let stats = client.stats().expect("stats");
    let field = |name: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("stats missing {name}:\n{stats}"))
    };
    assert!(
        field("open_connections") >= target as u64,
        "idle connections were reaped:\n{stats}"
    );
    assert_eq!(field("client_timeouts"), 0, "{stats}");

    // Graceful shutdown drains the whole herd without force-closing.
    client.shutdown_server().expect("shutdown");
    let t0 = Instant::now();
    let stats = server.join();
    eprintln!(
        "[scale_idle] drained {} connections in {:.2?}",
        idle.len(),
        t0.elapsed()
    );
    assert!(
        stats.contains("force_closed=0"),
        "idle connections were force-closed, not drained:\n{stats}"
    );
    drop(idle);
}
