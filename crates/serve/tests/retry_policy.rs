//! Retry-policy contract tests.
//!
//! Three properties, each load-bearing for chaos recovery:
//!
//! 1. **Backoff cap** — the jittered delay before retry `a` never
//!    exceeds `min(cap, base · 2^min(a, 20))`, for arbitrary policies.
//! 2. **Exact retry classification** — only BUSY push-back and
//!    transport loss retry; deadline, quarantine, and every other typed
//!    error surfaces immediately (retrying a deadline doubles the
//!    damage, retrying a quarantined backend hammers a known-bad slot).
//! 3. **Partial-retry budget** — a request that may already have
//!    executed (connection died mid-response) is only re-sent within
//!    the explicit `partial_retries` budget, and every such re-send is
//!    counted on `retried_after_partial`.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use spq_serve::client::{ClientError, RetryPolicy, RetryingClient};

/// Binds a listener whose accept loop either holds connections open
/// (connects succeed, nothing is ever answered) or slams them shut.
fn listener(hold_open: bool) -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for conn in l.incoming() {
            match conn {
                Ok(s) => {
                    if hold_open {
                        held.push(s);
                    } // else: dropped here — immediate close
                }
                Err(_) => break,
            }
        }
    });
    addr
}

fn policy(max_retries: u32, partial_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base: Duration::from_micros(50),
        cap: Duration::from_micros(500),
        seed: 11,
        partial_retries,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backoff_never_exceeds_the_documented_cap(
        base_us in 0u64..2_000,
        cap_us in 0u64..2_000,
        attempt in 0u32..64,
        seed in any::<u64>(),
    ) {
        let p = RetryPolicy {
            max_retries: 3,
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(cap_us),
            seed,
            partial_retries: 1,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let d = p.backoff(attempt, &mut rng);
        let exp = p.base.saturating_mul(1u32 << attempt.min(20)).min(p.cap);
        prop_assert!(d <= exp, "backoff {d:?} exceeds bound {exp:?}");
        // The zero-delay policy must never sleep at all.
        if base_us == 0 || cap_us == 0 {
            prop_assert_eq!(d, Duration::ZERO);
        }
    }

    #[test]
    fn classification_is_exact(variant in 0usize..8, msg_pick in 0usize..3) {
        let msg = ["", "shed", "a longer diagnostic message"][msg_pick].to_string();
        let (err, should_retry) = match variant {
            0 => (ClientError::Io(io::Error::from(io::ErrorKind::ConnectionReset)), true),
            1 => (ClientError::Busy(msg.clone()), true),
            2 => (ClientError::Remote(msg.clone()), false),
            3 => (ClientError::DeadlineExceeded(msg.clone()), false),
            4 => (ClientError::IndexInvalid(msg.clone()), false),
            5 => (ClientError::ReloadFailed(msg.clone()), false),
            6 => (ClientError::Quarantined(msg.clone()), false),
            _ => (ClientError::Protocol(msg.clone()), false),
        };
        prop_assert_eq!(err.is_retryable(), should_retry, "misclassified: {}", err);
    }
}

/// BUSY retries burn the main budget and eventually surface as BUSY —
/// with exactly `max_retries` recorded retries.
#[test]
fn busy_retries_exhaust_the_main_budget() {
    let addr = listener(true);
    let mut client = RetryingClient::new(addr, policy(3, 1));
    let out: Result<(), _> = client.with_retries(|_| Err(ClientError::Busy("shed".into())));
    assert!(matches!(out, Err(ClientError::Busy(_))), "got {out:?}");
    assert_eq!(client.retries, 3);
    assert_eq!(client.retried_after_partial, 0, "BUSY is never partial");
}

/// Every non-retryable typed error must surface on the first attempt,
/// spending nothing.
#[test]
fn typed_errors_surface_immediately() {
    let addr = listener(true);
    let errors: Vec<fn() -> ClientError> = vec![
        || ClientError::DeadlineExceeded("late".into()),
        || ClientError::Quarantined("bad slot".into()),
        || ClientError::IndexInvalid("stale epoch".into()),
        || ClientError::ReloadFailed("rebuild".into()),
        || ClientError::Remote("oops".into()),
        || ClientError::Protocol("garbage".into()),
    ];
    for make in errors {
        let mut client = RetryingClient::new(addr, policy(5, 5));
        let mut calls = 0u32;
        let out: Result<(), _> = client.with_retries(|_| {
            calls += 1;
            Err(make())
        });
        let err = out.expect_err("typed errors must not be swallowed");
        assert_eq!(calls, 1, "{err}: op must run exactly once");
        assert_eq!(client.retries, 0, "{err}: no retry may be spent");
        assert_eq!(client.retried_after_partial, 0);
    }
}

/// Transport loss with no request in flight retries on the main budget
/// without touching the partial counter.
#[test]
fn clean_transport_loss_is_not_partial() {
    let addr = listener(true);
    let mut client = RetryingClient::new(addr, policy(2, 0));
    let mut calls = 0u32;
    // The op never writes, so `in_flight` stays false: pure loss.
    let out: Result<(), _> = client.with_retries(|_| {
        calls += 1;
        Err(ClientError::Io(io::Error::from(
            io::ErrorKind::ConnectionReset,
        )))
    });
    assert!(matches!(out, Err(ClientError::Io(_))));
    assert_eq!(calls, 3, "initial attempt + 2 retries");
    assert_eq!(client.retries, 2);
    assert_eq!(
        client.retried_after_partial, 0,
        "a partial budget of zero must not block clean-loss retries"
    );
}

/// A connection that dies mid-response (request possibly executed) is
/// retried at most `partial_retries` times, each re-send counted, even
/// when the main budget has room left.
#[test]
fn partial_budget_is_enforced_and_counted() {
    // Connections are accepted and instantly closed: the ping's frame
    // is written (in-flight set), then the read sees EOF / reset.
    let addr = listener(false);
    let mut client = RetryingClient::new(addr, policy(10, 2));
    let out = client.ping();
    assert!(
        matches!(out, Err(ClientError::Io(_))),
        "mid-frame death must surface as transport loss, got {out:?}"
    );
    assert_eq!(
        client.retried_after_partial, 2,
        "exactly the partial budget may be re-sent"
    );
    assert!(
        client.retries < 10,
        "the partial budget must stop the loop before the main budget"
    );
}

/// `partial_retries = 0` turns at-least-once delivery off entirely.
#[test]
fn zero_partial_budget_never_resends() {
    let addr = listener(false);
    let mut client = RetryingClient::new(addr, policy(10, 0));
    let out = client.ping();
    assert!(matches!(out, Err(ClientError::Io(_))));
    assert_eq!(client.retried_after_partial, 0);
    assert_eq!(
        client.retries, 0,
        "the first partial failure must surface immediately"
    );
}
