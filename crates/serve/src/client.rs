//! A blocking wire client for the [`protocol`](crate::protocol).
//!
//! One client owns one connection; it is deliberately not thread-safe
//! (the protocol is strictly request/response per connection) — spawn
//! one client per load-generator thread instead.
//!
//! Server push-back is surfaced as typed errors: [`ClientError::Busy`]
//! (shed at the accept queue), [`ClientError::DeadlineExceeded`] (the
//! request's own deadline tripped), [`ClientError::IndexInvalid`]. Busy
//! and transport errors are transient by construction, which is what
//! [`RetryingClient`] automates: capped exponential backoff with full
//! jitter from a seeded PRNG, reconnecting on connection loss, with an
//! exact count of the retries it spent.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use spq_graph::types::{Dist, NodeId};

use crate::protocol::{
    read_frame, write_frame, Cursor, Request, STATUS_BUSY, STATUS_DEADLINE_EXCEEDED,
    STATUS_INDEX_INVALID, STATUS_OK, STATUS_QUARANTINED, STATUS_RELOAD_FAILED, UNREACHABLE,
};
use crate::BackendKind;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a generic error status (request-level).
    Remote(String),
    /// The server shed this connection at the overload high-water mark.
    Busy(String),
    /// The request's deadline tripped before the query finished.
    DeadlineExceeded(String),
    /// The server reported an invalid/unusable index for this backend.
    IndexInvalid(String),
    /// A requested hot reload was rejected; the old epoch kept serving.
    ReloadFailed(String),
    /// The backend was quarantined by the oracle auditor and failover
    /// is disabled (or exhausted).
    Quarantined(String),
    /// The response payload did not parse.
    Protocol(String),
}

impl ClientError {
    /// Whether retrying (with backoff) can plausibly succeed: overload
    /// shedding and transport loss are transient, everything else is a
    /// real answer.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Busy(_))
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(msg) => write!(f, "server error: {msg}"),
            ClientError::Busy(msg) => write!(f, "server busy: {msg}"),
            ClientError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            ClientError::IndexInvalid(msg) => write!(f, "index invalid: {msg}"),
            ClientError::ReloadFailed(msg) => write!(f, "reload failed: {msg}"),
            ClientError::Quarantined(msg) => write!(f, "backend quarantined: {msg}"),
            ClientError::Protocol(msg) => write!(f, "malformed response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct ServeClient {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Deadline attached to subsequent DISTANCE/PATH/DISTANCES requests
    /// (0: none).
    deadline_ms: u32,
    /// True from the moment request bytes start flowing until the full
    /// response is read. A transport error with this set means the
    /// server may have executed the request (the response was lost, not
    /// necessarily the request) — [`RetryingClient`] budgets such
    /// retries separately.
    in_flight: bool,
}

impl ServeClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            buf: Vec::new(),
            deadline_ms: 0,
            in_flight: false,
        })
    }

    /// Whether a request was sent (possibly partially) without its
    /// response having been fully read — i.e. whether a transport error
    /// now would leave the request in a possibly-executed state.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Sets the per-request deadline (milliseconds) attached to every
    /// subsequent query; 0 removes it.
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// Bounds every socket read and write. A client talking to a server
    /// (or a fault proxy) that stalls mid-frame gets `Io(WouldBlock |
    /// TimedOut)` instead of hanging forever — the torture harness's
    /// hang detector relies on this.
    pub fn set_io_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends a raw frame payload and returns the raw response payload
    /// (status byte included). Exists for protocol-robustness tests.
    pub fn roundtrip_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.in_flight = true;
        write_frame(&mut self.stream, payload)?;
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        self.in_flight = false;
        Ok(self.buf.clone())
    }

    /// Pipelines raw frame payloads: writes every request before
    /// reading any response, then reads exactly one response per
    /// request. The server guarantees responses arrive in request
    /// order, which is exactly what this returns (and what the
    /// pipelining chaos tests verify).
    pub fn pipeline_raw(&mut self, payloads: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ClientError> {
        self.in_flight = true;
        for payload in payloads {
            write_frame(&mut self.stream, payload)?;
        }
        let mut responses = Vec::with_capacity(payloads.len());
        for _ in 0..payloads.len() {
            if !read_frame(&mut self.stream, &mut self.buf)? {
                return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            responses.push(self.buf.clone());
        }
        self.in_flight = false;
        Ok(responses)
    }

    /// Sends a request and returns the OK body (status byte stripped),
    /// or the typed remote error.
    fn roundtrip(&mut self, request: &Request) -> Result<&[u8], ClientError> {
        self.in_flight = true;
        write_frame(&mut self.stream, &request.encode())?;
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        // A fully read response — even an error status — proves the
        // server finished with this request; nothing is in flight.
        self.in_flight = false;
        match self.buf.split_first() {
            Some((&STATUS_OK, body)) => Ok(body),
            Some((&status, body)) => {
                let msg = String::from_utf8_lossy(body).into_owned();
                Err(match status {
                    STATUS_BUSY => ClientError::Busy(msg),
                    STATUS_DEADLINE_EXCEEDED => ClientError::DeadlineExceeded(msg),
                    STATUS_INDEX_INVALID => ClientError::IndexInvalid(msg),
                    STATUS_RELOAD_FAILED => ClientError::ReloadFailed(msg),
                    STATUS_QUARANTINED => ClientError::Quarantined(msg),
                    _ => ClientError::Remote(msg),
                })
            }
            None => Err(ClientError::Protocol("empty response".into())),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Distance query.
    pub fn distance(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<Dist>, ClientError> {
        let deadline_ms = self.deadline_ms;
        let body = self.roundtrip(&Request::Distance {
            backend: backend.wire_id(),
            s,
            t,
            deadline_ms,
        })?;
        let mut c = Cursor::new(body);
        let d = c.u64().map_err(ClientError::Protocol)?;
        Ok(if d == UNREACHABLE { None } else { Some(d) })
    }

    /// Shortest-path query.
    pub fn shortest_path(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<(Dist, Vec<NodeId>)>, ClientError> {
        let deadline_ms = self.deadline_ms;
        let body = self.roundtrip(&Request::Path {
            backend: backend.wire_id(),
            s,
            t,
            deadline_ms,
        })?;
        let mut c = Cursor::new(body);
        let d = c.u64().map_err(ClientError::Protocol)?;
        let len = c.u32().map_err(ClientError::Protocol)? as usize;
        if d == UNREACHABLE {
            return Ok(None);
        }
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            path.push(c.u32().map_err(ClientError::Protocol)?);
        }
        Ok(Some((d, path)))
    }

    /// Batched sources × targets distances (row-major).
    pub fn distances(
        &mut self,
        backend: BackendKind,
        sources: &[NodeId],
        targets: &[NodeId],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let expect = sources.len() * targets.len();
        let deadline_ms = self.deadline_ms;
        let body = self.roundtrip(&Request::Distances {
            backend: backend.wire_id(),
            sources: sources.to_vec(),
            targets: targets.to_vec(),
            deadline_ms,
        })?;
        let mut c = Cursor::new(body);
        let mut out = Vec::with_capacity(expect);
        for _ in 0..expect {
            let d = c.u64().map_err(ClientError::Protocol)?;
            out.push(if d == UNREACHABLE { None } else { Some(d) });
        }
        Ok(out)
    }

    /// One-to-many distances from `s`, in target order.
    pub fn one_to_many(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        targets: &[NodeId],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let deadline_ms = self.deadline_ms;
        let body = self.roundtrip(&Request::OneToMany {
            backend: backend.wire_id(),
            s,
            targets: targets.to_vec(),
            deadline_ms,
        })?;
        let mut c = Cursor::new(body);
        let mut out = Vec::with_capacity(targets.len());
        for _ in 0..targets.len() {
            let d = c.u64().map_err(ClientError::Protocol)?;
            out.push(if d == UNREACHABLE { None } else { Some(d) });
        }
        Ok(out)
    }

    /// The `k` nearest members of the registered POI set `poi`, sorted
    /// by `(distance, vertex)`.
    pub fn knn(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        k: u32,
        poi: &str,
    ) -> Result<Vec<(NodeId, Dist)>, ClientError> {
        let deadline_ms = self.deadline_ms;
        let body = self.roundtrip(&Request::Knn {
            backend: backend.wire_id(),
            s,
            k,
            poi: poi.to_string(),
            deadline_ms,
        })?;
        Self::parse_nodes_dists(body)
    }

    /// Every vertex within `limit` of `s`, ascending by vertex id.
    pub fn range(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        limit: Dist,
    ) -> Result<Vec<(NodeId, Dist)>, ClientError> {
        let deadline_ms = self.deadline_ms;
        let body = self.roundtrip(&Request::Range {
            backend: backend.wire_id(),
            s,
            limit,
            deadline_ms,
        })?;
        Self::parse_nodes_dists(body)
    }

    fn parse_nodes_dists(body: &[u8]) -> Result<Vec<(NodeId, Dist)>, ClientError> {
        let mut c = Cursor::new(body);
        let count = c.u32().map_err(ClientError::Protocol)? as usize;
        if c.remaining() < count.saturating_mul(12) {
            return Err(ClientError::Protocol(format!(
                "body claims {count} entries but only {} bytes follow",
                c.remaining()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let v = c.u32().map_err(ClientError::Protocol)?;
            let d = c.u64().map_err(ClientError::Protocol)?;
            out.push((v, d));
        }
        Ok(out)
    }

    /// Fetches the server's observability snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.roundtrip(&Request::Stats)?;
        Ok(String::from_utf8_lossy(body).into_owned())
    }

    /// Requests a hot index reload and waits for the attempt's outcome.
    /// `Ok(epoch)` means the new epoch passed its self-check and is
    /// serving; [`ClientError::ReloadFailed`] means the old epoch kept
    /// serving and carries the typed reason.
    pub fn reload(&mut self) -> Result<u64, ClientError> {
        let body = self.roundtrip(&Request::Reload)?;
        let text = String::from_utf8_lossy(body);
        text.strip_prefix("epoch=")
            .and_then(|n| n.trim().parse::<u64>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("unexpected RELOAD body '{text}'")))
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }
}

/// Capped exponential backoff with full jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `k` is drawn uniformly from
    /// `[0, min(cap, base · 2^k)]`.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Seed for the jitter PRNG (a fixed seed makes retry timing
    /// deterministic in tests).
    pub seed: u64,
    /// Of the `max_retries` budget, how many may be spent on a request
    /// that was already (possibly partially) delivered when the
    /// transport failed — a mid-frame stall or reset after the frame
    /// went out. Such a request may have *executed*; re-sending it is a
    /// deliberate at-least-once decision, so it gets its own explicit
    /// budget (0 turns it off) and its own lifetime counter
    /// ([`RetryingClient::retried_after_partial`]).
    pub partial_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 0xB0FF,
            partial_retries: 1,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry `attempt` (0-based).
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.cap);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.random_range(0..=nanos))
    }
}

/// A self-healing client: retries `Busy` responses and transport errors
/// per its [`RetryPolicy`], reconnecting as needed, and counts every
/// retry it spends. Non-retryable errors (wrong answers would be worse)
/// pass straight through.
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: StdRng,
    client: Option<ServeClient>,
    deadline_ms: u32,
    /// Retries performed over this client's lifetime.
    pub retries: u64,
    /// Of those, retries of requests that were already in flight when
    /// the transport failed — requests the server may have executed.
    /// Surfaced in the loadgen CSV so an operator can see how often the
    /// at-least-once path was taken.
    pub retried_after_partial: u64,
}

impl RetryingClient {
    /// Creates a lazy-connecting retrying client.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RetryingClient {
        let rng = StdRng::seed_from_u64(policy.seed);
        RetryingClient {
            addr,
            policy,
            rng,
            client: None,
            deadline_ms: 0,
            retries: 0,
            retried_after_partial: 0,
        }
    }

    /// Sets the per-request deadline (milliseconds) attached to every
    /// subsequent query; 0 removes it.
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
        if let Some(c) = &mut self.client {
            c.set_deadline_ms(deadline_ms);
        }
    }

    /// Drops the current connection (if any); the next operation
    /// reconnects. Connection churn in the load generator is built on
    /// this.
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    /// Whether a connection is currently open.
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Runs `op` with retry/reconnect; the workhorse behind the typed
    /// query methods. Public so test harnesses can drive the retry loop
    /// with synthetic outcomes and assert its exact classification.
    pub fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        let mut partial_spent = 0u32;
        loop {
            // Connect (or reconnect) first, so the client's in-flight
            // state is still inspectable after a failed op.
            if self.client.is_none() {
                match ServeClient::connect(self.addr) {
                    Ok(mut c) => {
                        c.set_deadline_ms(self.deadline_ms);
                        self.client = Some(c);
                    }
                    Err(e) => {
                        // A failed connect never delivered anything —
                        // plain transport loss, retry on the main budget.
                        if attempt >= self.policy.max_retries {
                            return Err(ClientError::Io(e));
                        }
                        self.retries += 1;
                        std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
                        attempt += 1;
                        continue;
                    }
                }
            }
            let c = self.client.as_mut().expect("connected above");
            let result = op(c);
            // Read the flag before tearing the connection down: a
            // transport error with a request in flight means the server
            // may have executed it and only the response was lost.
            let was_in_flight = c.in_flight();
            match result {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    let partial = was_in_flight && matches!(e, ClientError::Io(_));
                    if partial {
                        // Re-sending a possibly-executed request is an
                        // explicit at-least-once decision with its own
                        // budget; exhausting it surfaces the error.
                        if partial_spent >= self.policy.partial_retries {
                            return Err(e);
                        }
                        partial_spent += 1;
                        self.retried_after_partial += 1;
                    }
                    // Busy answers arrive on a connection the server has
                    // already closed; transport errors leave it in an
                    // unknown state. Reconnect either way.
                    self.client = None;
                    self.retries += 1;
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Distance query with retry.
    pub fn distance(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<Dist>, ClientError> {
        self.with_retries(|c| c.distance(backend, s, t))
    }

    /// Shortest-path query with retry.
    pub fn shortest_path(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<(Dist, Vec<NodeId>)>, ClientError> {
        self.with_retries(|c| c.shortest_path(backend, s, t))
    }

    /// One-to-many query with retry.
    pub fn one_to_many(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        targets: &[NodeId],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        self.with_retries(|c| c.one_to_many(backend, s, targets))
    }

    /// kNN query with retry.
    pub fn knn(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        k: u32,
        poi: &str,
    ) -> Result<Vec<(NodeId, Dist)>, ClientError> {
        self.with_retries(|c| c.knn(backend, s, k, poi))
    }

    /// Range query with retry.
    pub fn range(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        limit: Dist,
    ) -> Result<Vec<(NodeId, Dist)>, ClientError> {
        self.with_retries(|c| c.range(backend, s, limit))
    }

    /// Liveness probe with retry.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_retries(|c| c.ping())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_is_typed() {
        assert!(ClientError::Io(io::ErrorKind::ConnectionReset.into()).is_retryable());
        assert!(ClientError::Busy("shed".into()).is_retryable());
        assert!(!ClientError::Remote("bad vertex".into()).is_retryable());
        assert!(!ClientError::DeadlineExceeded("late".into()).is_retryable());
        assert!(!ClientError::IndexInvalid("checksum".into()).is_retryable());
        assert!(!ClientError::ReloadFailed("self-check".into()).is_retryable());
        assert!(!ClientError::Quarantined("audit".into()).is_retryable());
        assert!(!ClientError::Protocol("truncated".into()).is_retryable());
    }

    #[test]
    fn backoff_is_jittered_capped_and_deterministic() {
        let policy = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            seed: 1,
            partial_retries: 8,
        };
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for attempt in 0..8 {
            let x = policy.backoff(attempt, &mut a);
            let y = policy.backoff(attempt, &mut b);
            assert_eq!(x, y, "same seed, same jitter");
            let exp = (policy.base * 2u32.pow(attempt)).min(policy.cap);
            assert!(x <= exp, "attempt {attempt}: {x:?} > {exp:?}");
        }
        // Far attempts are capped, never overflow.
        let far = policy.backoff(31, &mut a);
        assert!(far <= policy.cap);
    }
}
