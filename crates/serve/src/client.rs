//! A blocking wire client for the [`protocol`](crate::protocol).
//!
//! One client owns one connection; it is deliberately not thread-safe
//! (the protocol is strictly request/response per connection) — spawn
//! one client per load-generator thread instead.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use spq_graph::types::{Dist, NodeId};

use crate::protocol::{read_frame, write_frame, Cursor, Request, STATUS_OK, UNREACHABLE};
use crate::BackendKind;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with an error status (request-level).
    Remote(String),
    /// The response payload did not parse.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "malformed response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct ServeClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ServeClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends a raw frame payload and returns the raw response payload
    /// (status byte included). Exists for protocol-robustness tests.
    pub fn roundtrip_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, payload)?;
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        Ok(self.buf.clone())
    }

    /// Sends a request and returns the OK body (status byte stripped),
    /// or the remote error.
    fn roundtrip(&mut self, request: &Request) -> Result<&[u8], ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        match self.buf.split_first() {
            Some((&STATUS_OK, body)) => Ok(body),
            Some((_, body)) => Err(ClientError::Remote(
                String::from_utf8_lossy(body).into_owned(),
            )),
            None => Err(ClientError::Protocol("empty response".into())),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Distance query.
    pub fn distance(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<Dist>, ClientError> {
        let body = self.roundtrip(&Request::Distance {
            backend: backend.wire_id(),
            s,
            t,
        })?;
        let mut c = Cursor::new(body);
        let d = c.u64().map_err(ClientError::Protocol)?;
        Ok(if d == UNREACHABLE { None } else { Some(d) })
    }

    /// Shortest-path query.
    pub fn shortest_path(
        &mut self,
        backend: BackendKind,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<(Dist, Vec<NodeId>)>, ClientError> {
        let body = self.roundtrip(&Request::Path {
            backend: backend.wire_id(),
            s,
            t,
        })?;
        let mut c = Cursor::new(body);
        let d = c.u64().map_err(ClientError::Protocol)?;
        let len = c.u32().map_err(ClientError::Protocol)? as usize;
        if d == UNREACHABLE {
            return Ok(None);
        }
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            path.push(c.u32().map_err(ClientError::Protocol)?);
        }
        Ok(Some((d, path)))
    }

    /// Batched sources × targets distances (row-major).
    pub fn distances(
        &mut self,
        backend: BackendKind,
        sources: &[NodeId],
        targets: &[NodeId],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let expect = sources.len() * targets.len();
        let body = self.roundtrip(&Request::Distances {
            backend: backend.wire_id(),
            sources: sources.to_vec(),
            targets: targets.to_vec(),
        })?;
        let mut c = Cursor::new(body);
        let mut out = Vec::with_capacity(expect);
        for _ in 0..expect {
            let d = c.u64().map_err(ClientError::Protocol)?;
            out.push(if d == UNREACHABLE { None } else { Some(d) });
        }
        Ok(out)
    }

    /// Fetches the server's observability snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.roundtrip(&Request::Stats)?;
        Ok(String::from_utf8_lossy(body).into_owned())
    }

    /// Requests a graceful server shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }
}
