//! Server observability: atomic counters and log2-bucketed latency
//! histograms per backend and per operation.
//!
//! Recording is lock-free (one relaxed `fetch_add` per sample into the
//! matching power-of-two nanosecond bucket), so the hot path cost is
//! constant regardless of how many samples have accumulated. Quantiles
//! are estimated from the bucket counts with the geometric midpoint of
//! the containing bucket — at most a ~√2 relative error, plenty for a
//! throughput report spanning nanoseconds to seconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::cache::CacheStats;

/// Number of log2 nanosecond buckets: bucket 0 is `[0, 1)` ns, bucket
/// `i ≥ 1` is `[2^(i-1), 2^i)` ns; the last bucket (≈ 9 minutes and up)
/// absorbs everything slower.
pub const BUCKETS: usize = 40;

/// The operations the server distinguishes in its per-backend stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point-to-point distance queries.
    Distance = 0,
    /// Point-to-point shortest-path queries.
    Path = 1,
    /// Batched (many-to-many) distance queries.
    Batch = 2,
}

/// Number of [`Op`] variants.
pub const NUM_OPS: usize = 3;

impl Op {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Distance => "distance",
            Op::Path => "path",
            Op::Batch => "batch",
        }
    }

    /// All operations, in display order.
    pub const ALL: [Op; NUM_OPS] = [Op::Distance, Op::Path, Op::Batch];
}

/// Maps a nanosecond latency to its bucket.
pub fn bucket_of(nanos: u64) -> usize {
    ((64 - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Representative latency of a bucket in nanoseconds (geometric
/// midpoint of its range).
pub fn bucket_value_ns(bucket: usize) -> f64 {
    if bucket == 0 {
        0.5
    } else {
        // Bucket covers [2^(b-1), 2^b): midpoint 2^(b-1) · √2.
        2f64.powi(bucket as i32 - 1) * std::f64::consts::SQRT_2
    }
}

/// Estimates the `q`-quantile (`q` in `[0, 1]`) of a bucket-count
/// vector, in nanoseconds. Returns 0 with no samples.
pub fn percentile_ns(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (b, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_value_ns(b);
        }
    }
    bucket_value_ns(buckets.len() - 1)
}

/// A lock-free log2 latency histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts out.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Counters and latency histogram for one (backend, op) pair.
#[derive(Default)]
pub struct OpStats {
    /// Requests served (a batch counts once).
    pub count: AtomicU64,
    /// Individual (s, t) answers produced (≥ `count`; differs for
    /// batches).
    pub items: AtomicU64,
    /// Per-request service latency.
    pub hist: Histogram,
}

/// All server counters. One instance per server, shared by reference
/// with every worker.
pub struct ServerStats {
    /// `per_backend[i][op]` for the engine's i-th backend.
    per_backend: Vec<[OpStats; NUM_OPS]>,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames handled (any opcode, including failed ones).
    pub requests: AtomicU64,
    /// Requests rejected at the protocol layer.
    pub protocol_errors: AtomicU64,
    /// Connections turned away with BUSY past the queue high-water mark.
    pub shed: AtomicU64,
    /// Connections dropped for stalling mid-frame or timing out a write.
    pub client_timeouts: AtomicU64,
    /// Requests answered with DEADLINE_EXCEEDED.
    pub deadlines_exceeded: AtomicU64,
    /// In-flight queries aborted by the post-grace force-stop.
    pub force_closed: AtomicU64,
    /// Server start time (for the uptime line).
    started: Instant,
}

impl ServerStats {
    /// Creates zeroed counters for `num_backends` backends.
    pub fn new(num_backends: usize) -> Self {
        ServerStats {
            per_backend: (0..num_backends).map(|_| Default::default()).collect(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            client_timeouts: AtomicU64::new(0),
            deadlines_exceeded: AtomicU64::new(0),
            force_closed: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records one served request: `items` individual answers produced
    /// in `nanos` of service time.
    pub fn record(&self, backend: usize, op: Op, nanos: u64, items: u64) {
        let s = &self.per_backend[backend][op as usize];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.items.fetch_add(items, Ordering::Relaxed);
        s.hist.record(nanos);
    }

    /// Raw access for rendering.
    pub fn op_stats(&self, backend: usize, op: Op) -> &OpStats {
        &self.per_backend[backend][op as usize]
    }

    /// Renders the observability snapshot served by the STATS command
    /// and dumped at shutdown. `backend_names` must match the engine's
    /// backend order.
    pub fn render(&self, backend_names: &[&str], cache: &CacheStats) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let uptime_s = self.started.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "uptime_s={uptime_s:.1} connections={} requests={} protocol_errors={}",
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "faults: shed={} client_timeouts={} deadlines_exceeded={} force_closed={}",
            self.shed.load(Ordering::Relaxed),
            self.client_timeouts.load(Ordering::Relaxed),
            self.deadlines_exceeded.load(Ordering::Relaxed),
            self.force_closed.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "cache: hits={} misses={} hit_rate={:.1}% insertions={} evictions={} len={} capacity={}",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.insertions,
            cache.evictions,
            cache.len,
            cache.capacity,
        );
        let _ = writeln!(
            out,
            "{:<10} {:<9} {:>10} {:>12} {:>10} {:>10}",
            "backend", "op", "count", "items", "p50_us", "p99_us"
        );
        for (i, name) in backend_names.iter().enumerate() {
            for op in Op::ALL {
                let s = self.op_stats(i, op);
                let count = s.count.load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let snap = s.hist.snapshot();
                let _ = writeln!(
                    out,
                    "{:<10} {:<9} {:>10} {:>12} {:>10.2} {:>10.2}",
                    name,
                    op.name(),
                    count,
                    s.items.load(Ordering::Relaxed),
                    percentile_ns(&snap, 0.50) / 1_000.0,
                    percentile_ns(&snap, 0.99) / 1_000.0,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_latency_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for nanos in [5u64, 1_000, 1_000_000, 10_000_000_000] {
            let b = bucket_of(nanos);
            assert!(b < BUCKETS);
            if b < BUCKETS - 1 {
                // The representative value is within ~√2 of the sample.
                let rep = bucket_value_ns(b);
                assert!(rep / nanos as f64 <= std::f64::consts::SQRT_2 + 1e-9);
                assert!(nanos as f64 / rep <= std::f64::consts::SQRT_2 + 1e-9);
            }
        }
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let hist = Histogram::default();
        for _ in 0..99 {
            hist.record(1_000); // ~1 µs
        }
        hist.record(1_000_000); // one 1 ms outlier
        let snap = hist.snapshot();
        let p50 = percentile_ns(&snap, 0.50);
        let p99 = percentile_ns(&snap, 0.99);
        let p100 = percentile_ns(&snap, 1.0);
        assert!((500.0..2_000.0).contains(&p50), "p50 = {p50}");
        assert!(p99 <= p100);
        assert!(p100 > 500_000.0, "p100 sees the outlier: {p100}");
        assert_eq!(percentile_ns(&[0; BUCKETS], 0.5), 0.0);
    }

    #[test]
    fn render_reports_active_ops_only() {
        let stats = ServerStats::new(2);
        stats.record(0, Op::Distance, 1_500, 1);
        stats.record(0, Op::Distance, 1_500, 1);
        stats.record(1, Op::Batch, 80_000, 25);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
            len: 1,
            capacity: 64,
        };
        stats.shed.fetch_add(2, Ordering::Relaxed);
        stats.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
        let text = stats.render(&["CH", "TNR"], &cache);
        assert!(text.contains("shed=2"), "{text}");
        assert!(text.contains("deadlines_exceeded=1"), "{text}");
        assert!(text.contains("client_timeouts=0"), "{text}");
        assert!(text.contains("hits=3"));
        assert!(text.contains("hit_rate=75.0%"));
        assert!(text.contains("CH"));
        assert!(text.contains("batch"));
        assert!(!text.contains("path"), "unused ops are omitted:\n{text}");
    }
}
