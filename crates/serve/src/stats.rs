//! Server observability: atomic counters and log2-bucketed latency
//! histograms per backend and per operation.
//!
//! Recording is lock-free (one relaxed `fetch_add` per sample into the
//! matching power-of-two nanosecond bucket), so the hot path cost is
//! constant regardless of how many samples have accumulated. Quantiles
//! are estimated from the bucket counts with the geometric midpoint of
//! the containing bucket — at most a ~√2 relative error, plenty for a
//! throughput report spanning nanoseconds to seconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::cache::CacheStats;
use crate::sync::lock_unpoisoned;

/// Number of histogram buckets: bucket 0 is `[0, 1)` ns, bucket
/// `1 ≤ i < OVERFLOW_BUCKET` is `[2^(i-1), 2^i)` ns, and the final
/// [`OVERFLOW_BUCKET`] holds everything at or above
/// 2^([`OVERFLOW_BUCKET`] − 1) ns (≈ 9 minutes) — counted explicitly
/// instead of aliased into the top log2 bucket, so multi-second
/// outliers (e.g. during an index reload) stay visible.
pub const BUCKETS: usize = 41;

/// Index of the explicit overflow bucket.
pub const OVERFLOW_BUCKET: usize = BUCKETS - 1;

/// Stats slots are indexed by protocol wire id, not engine position:
/// a hot reload may change how many backends the engine holds, but the
/// wire ids clients query by are stable, so counters survive swaps.
/// The final slot absorbs any wire id past the known range.
pub const WIRE_SLOTS: usize = 9;

/// Display names for the wire-id slots, in slot order.
pub const WIRE_NAMES: [&str; WIRE_SLOTS] = [
    "dijkstra", "ch", "tnr", "silc", "pcpd", "alt", "arcflags", "hl", "other",
];

/// Maps a protocol wire id to its stats slot.
pub fn wire_slot(wire_id: u8) -> usize {
    (wire_id as usize).min(WIRE_SLOTS - 1)
}

/// The operations the server distinguishes in its per-backend stats.
/// Every served frame is recorded under exactly one `(slot, op)` pair —
/// frames that fail to decode land in [`Op::Other`] under the final
/// wire slot, so unknown-op accounting shares the same tables and code
/// path as real queries instead of a separate counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point-to-point distance queries.
    Distance = 0,
    /// Point-to-point shortest-path queries.
    Path = 1,
    /// Batched (many-to-many) distance queries.
    Batch = 2,
    /// One-to-many distance queries.
    OneToMany = 3,
    /// k-nearest-neighbour queries over a registered POI set.
    Knn = 4,
    /// Network range queries.
    Range = 5,
    /// Frames that decoded to no known operation (unknown opcode,
    /// malformed payload).
    Other = 6,
}

/// Number of [`Op`] variants.
pub const NUM_OPS: usize = 7;

impl Op {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Distance => "distance",
            Op::Path => "path",
            Op::Batch => "batch",
            Op::OneToMany => "o2m",
            Op::Knn => "knn",
            Op::Range => "range",
            Op::Other => "other",
        }
    }

    /// All operations, in display order.
    pub const ALL: [Op; NUM_OPS] = [
        Op::Distance,
        Op::Path,
        Op::Batch,
        Op::OneToMany,
        Op::Knn,
        Op::Range,
        Op::Other,
    ];
}

/// Open file descriptors of this process, counted from `/proc/self/fd`
/// at call time (0 when the proc filesystem is unavailable). A gauge,
/// not a counter: it is read once per STATS render, never on the hot
/// path.
pub fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .map(|entries| entries.count() as u64)
        .unwrap_or(0)
}

/// Maps a nanosecond latency to its bucket.
pub fn bucket_of(nanos: u64) -> usize {
    ((64 - nanos.leading_zeros()) as usize).min(OVERFLOW_BUCKET)
}

/// Representative latency of a bucket in nanoseconds (geometric
/// midpoint of its range; the overflow bucket reports its lower bound,
/// since its range is unbounded above).
pub fn bucket_value_ns(bucket: usize) -> f64 {
    if bucket == 0 {
        0.5
    } else if bucket >= OVERFLOW_BUCKET {
        2f64.powi(OVERFLOW_BUCKET as i32 - 1)
    } else {
        // Bucket covers [2^(b-1), 2^b): midpoint 2^(b-1) · √2.
        2f64.powi(bucket as i32 - 1) * std::f64::consts::SQRT_2
    }
}

/// Estimates the `q`-quantile (`q` in `[0, 1]`) of a bucket-count
/// vector, in nanoseconds. Returns 0 with no samples.
pub fn percentile_ns(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (b, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_value_ns(b);
        }
    }
    bucket_value_ns(buckets.len() - 1)
}

/// A lock-free log2 latency histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts out.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Samples that landed in the explicit overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.buckets[OVERFLOW_BUCKET].load(Ordering::Relaxed)
    }
}

/// Counters and latency histogram for one (backend, op) pair.
#[derive(Default)]
pub struct OpStats {
    /// Requests served (a batch counts once).
    pub count: AtomicU64,
    /// Individual (s, t) answers produced (≥ `count`; differs for
    /// batches).
    pub items: AtomicU64,
    /// Per-request service latency.
    pub hist: Histogram,
}

/// All server counters. One instance per server, shared by reference
/// with every worker.
pub struct ServerStats {
    /// `per_backend[i][op]` for the engine's i-th backend.
    per_backend: Vec<[OpStats; NUM_OPS]>,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames handled (any opcode, including failed ones).
    pub requests: AtomicU64,
    /// Requests rejected at the protocol layer.
    pub protocol_errors: AtomicU64,
    /// Event-loop shards serving connections (set once at startup).
    pub shards: AtomicU64,
    /// Currently open connections (gauge: incremented at registration,
    /// decremented at close).
    pub open_connections: AtomicU64,
    /// Frames dispatched while the same connection already had at least
    /// one request in flight — the wire-protocol pipelining counter.
    pub pipelined_frames: AtomicU64,
    /// Requests answered with BUSY past the work-queue high-water mark.
    pub shed: AtomicU64,
    /// Connections dropped for stalling mid-frame or timing out a write.
    pub client_timeouts: AtomicU64,
    /// Requests answered with DEADLINE_EXCEEDED.
    pub deadlines_exceeded: AtomicU64,
    /// In-flight queries aborted by the post-grace force-stop.
    pub force_closed: AtomicU64,
    /// Connections force-closed for hitting the per-connection write
    /// buffer cap while making no write progress — the typed accounting
    /// for slow (or never-) readers. Disjoint from `client_timeouts`
    /// (stalls below the cap) and `force_closed` (shutdown aborts).
    pub slow_closed: AtomicU64,
    /// Accepts refused because the process was out of file descriptors
    /// (real or injected EMFILE/ENFILE); each peer got a typed BUSY.
    pub accept_emfile: AtomicU64,
    /// Accepts refused by the `--max-connections` admission gate; each
    /// peer got a typed BUSY.
    pub accept_shed: AtomicU64,
    /// The configured global memory budget in bytes (0 = unlimited).
    pub mem_budget: AtomicU64,
    /// Live bytes accounted against the budget: per-connection
    /// read/write buffers, pipelined ready frames, and the LRU cache's
    /// static reservation.
    pub mem_used: AtomicU64,
    /// High-water mark of any one connection's pending write-buffer
    /// bytes (gauge via `fetch_max`; proves the wbuf cap held).
    pub wbuf_peak: AtomicU64,
    /// Index reloads that validated and published a new epoch.
    pub reloads_ok: AtomicU64,
    /// Index reloads rejected before publication (the old epoch kept
    /// serving).
    pub reloads_failed: AtomicU64,
    /// Worker panics recovered by the supervision loop (the worker
    /// rebuilt its sessions and kept serving).
    pub worker_restarts: AtomicU64,
    /// Completed audit rounds (one pass over every auditable backend).
    pub audit_rounds: AtomicU64,
    /// Individual audit queries compared against the oracle.
    pub audit_checked: AtomicU64,
    /// Audit queries that disagreed with the oracle.
    pub audit_mismatches: AtomicU64,
    /// Requests answered by the degradation chain because their backend
    /// was quarantined.
    pub quarantine_failovers: AtomicU64,
    /// The typed reason of the most recent failed reload (cleared by
    /// the next successful one).
    last_reload_error: Mutex<Option<String>>,
    /// Server start time (for the uptime line).
    started: Instant,
}

impl ServerStats {
    /// Creates zeroed counters for `num_backends` backends.
    pub fn new(num_backends: usize) -> Self {
        ServerStats {
            per_backend: (0..num_backends).map(|_| Default::default()).collect(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            shards: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            pipelined_frames: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            client_timeouts: AtomicU64::new(0),
            deadlines_exceeded: AtomicU64::new(0),
            force_closed: AtomicU64::new(0),
            slow_closed: AtomicU64::new(0),
            accept_emfile: AtomicU64::new(0),
            accept_shed: AtomicU64::new(0),
            mem_budget: AtomicU64::new(0),
            mem_used: AtomicU64::new(0),
            wbuf_peak: AtomicU64::new(0),
            reloads_ok: AtomicU64::new(0),
            reloads_failed: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            audit_rounds: AtomicU64::new(0),
            audit_checked: AtomicU64::new(0),
            audit_mismatches: AtomicU64::new(0),
            quarantine_failovers: AtomicU64::new(0),
            last_reload_error: Mutex::new(None),
            started: Instant::now(),
        }
    }

    /// Records the typed reason of a failed reload.
    pub fn set_reload_error(&self, reason: String) {
        *lock_unpoisoned(&self.last_reload_error) = Some(reason);
    }

    /// Clears the failed-reload reason (a later reload succeeded).
    pub fn clear_reload_error(&self) {
        *lock_unpoisoned(&self.last_reload_error) = None;
    }

    /// The most recent failed-reload reason, if any.
    pub fn reload_error(&self) -> Option<String> {
        lock_unpoisoned(&self.last_reload_error).clone()
    }

    /// Records one served request: `items` individual answers produced
    /// in `nanos` of service time.
    pub fn record(&self, backend: usize, op: Op, nanos: u64, items: u64) {
        let s = &self.per_backend[backend][op as usize];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.items.fetch_add(items, Ordering::Relaxed);
        s.hist.record(nanos);
    }

    /// Raw access for rendering.
    pub fn op_stats(&self, backend: usize, op: Op) -> &OpStats {
        &self.per_backend[backend][op as usize]
    }

    /// Renders the observability snapshot served by the STATS command
    /// and dumped at shutdown. `backend_names` must match the engine's
    /// backend order.
    pub fn render(&self, backend_names: &[&str], cache: &CacheStats) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let uptime_s = self.started.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "uptime_s={uptime_s:.1} connections={} requests={} protocol_errors={}",
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "serve: shards={} open_connections={} pipelined_frames={}",
            self.shards.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed),
            self.pipelined_frames.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "faults: shed={} client_timeouts={} deadlines_exceeded={} force_closed={} slow_closed={}",
            self.shed.load(Ordering::Relaxed),
            self.client_timeouts.load(Ordering::Relaxed),
            self.deadlines_exceeded.load(Ordering::Relaxed),
            self.force_closed.load(Ordering::Relaxed),
            self.slow_closed.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "resources: mem_budget={} mem_used={} wbuf_peak={} open_fds={} \
             accept_emfile={} accept_shed={} disk_degraded={}",
            self.mem_budget.load(Ordering::Relaxed),
            self.mem_used.load(Ordering::Relaxed),
            self.wbuf_peak.load(Ordering::Relaxed),
            open_fds(),
            self.accept_emfile.load(Ordering::Relaxed),
            self.accept_shed.load(Ordering::Relaxed),
            u64::from(spq_graph::atomic_io::disk_degraded()),
        );
        let _ = writeln!(
            out,
            "health: reloads_ok={} reloads_failed={} worker_restarts={}",
            self.reloads_ok.load(Ordering::Relaxed),
            self.reloads_failed.load(Ordering::Relaxed),
            self.worker_restarts.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "audit: audit_rounds={} audit_checked={} audit_mismatches={} quarantine_failovers={}",
            self.audit_rounds.load(Ordering::Relaxed),
            self.audit_checked.load(Ordering::Relaxed),
            self.audit_mismatches.load(Ordering::Relaxed),
            self.quarantine_failovers.load(Ordering::Relaxed),
        );
        if let Some(reason) = self.reload_error() {
            let _ = writeln!(out, "reload_error: RELOAD_FAILED {reason}");
        }
        let _ = writeln!(
            out,
            "cache: hits={} misses={} hit_rate={:.1}% insertions={} evictions={} purged={} len={} capacity={}",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.insertions,
            cache.evictions,
            cache.purged,
            cache.len,
            cache.capacity,
        );
        let _ = writeln!(
            out,
            "{:<10} {:<9} {:>10} {:>12} {:>10} {:>10} {:>9}",
            "backend", "op", "count", "items", "p50_us", "p99_us", "overflow"
        );
        for (i, name) in backend_names.iter().enumerate() {
            for op in Op::ALL {
                let s = self.op_stats(i, op);
                let count = s.count.load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let snap = s.hist.snapshot();
                let _ = writeln!(
                    out,
                    "{:<10} {:<9} {:>10} {:>12} {:>10.2} {:>10.2} {:>9}",
                    name,
                    op.name(),
                    count,
                    s.items.load(Ordering::Relaxed),
                    percentile_ns(&snap, 0.50) / 1_000.0,
                    percentile_ns(&snap, 0.99) / 1_000.0,
                    s.hist.overflow(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_latency_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), OVERFLOW_BUCKET);
        for nanos in [5u64, 1_000, 1_000_000, 10_000_000_000] {
            let b = bucket_of(nanos);
            assert!(b < OVERFLOW_BUCKET, "ordinary latencies never overflow");
            // The representative value is within ~√2 of the sample.
            let rep = bucket_value_ns(b);
            assert!(rep / nanos as f64 <= std::f64::consts::SQRT_2 + 1e-9);
            assert!(nanos as f64 / rep <= std::f64::consts::SQRT_2 + 1e-9);
        }
    }

    #[test]
    fn overflow_bucket_counts_extreme_outliers_explicitly() {
        let threshold = 1u64 << (OVERFLOW_BUCKET - 1);
        assert_eq!(bucket_of(threshold - 1), OVERFLOW_BUCKET - 1);
        assert_eq!(bucket_of(threshold), OVERFLOW_BUCKET);
        let hist = Histogram::default();
        hist.record(1_000);
        assert_eq!(hist.overflow(), 0);
        hist.record(threshold);
        hist.record(u64::MAX);
        assert_eq!(hist.overflow(), 2, "outliers counted, not aliased");
        // The overflow representative is its lower bound, so the
        // percentile estimate never understates an overflowing tail.
        assert!(bucket_value_ns(OVERFLOW_BUCKET) >= threshold as f64);
        let snap = hist.snapshot();
        assert_eq!(percentile_ns(&snap, 1.0), bucket_value_ns(OVERFLOW_BUCKET));
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let hist = Histogram::default();
        for _ in 0..99 {
            hist.record(1_000); // ~1 µs
        }
        hist.record(1_000_000); // one 1 ms outlier
        let snap = hist.snapshot();
        let p50 = percentile_ns(&snap, 0.50);
        let p99 = percentile_ns(&snap, 0.99);
        let p100 = percentile_ns(&snap, 1.0);
        assert!((500.0..2_000.0).contains(&p50), "p50 = {p50}");
        assert!(p99 <= p100);
        assert!(p100 > 500_000.0, "p100 sees the outlier: {p100}");
        assert_eq!(percentile_ns(&[0; BUCKETS], 0.5), 0.0);
    }

    #[test]
    fn render_reports_active_ops_only() {
        let stats = ServerStats::new(2);
        stats.record(0, Op::Distance, 1_500, 1);
        stats.record(0, Op::Distance, 1_500, 1);
        stats.record(1, Op::Batch, 80_000, 25);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
            purged: 0,
            len: 1,
            capacity: 64,
        };
        stats.shed.fetch_add(2, Ordering::Relaxed);
        stats.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
        stats.worker_restarts.fetch_add(3, Ordering::Relaxed);
        stats.audit_mismatches.fetch_add(4, Ordering::Relaxed);
        stats.shards.store(3, Ordering::Relaxed);
        stats.open_connections.fetch_add(5, Ordering::Relaxed);
        stats.pipelined_frames.fetch_add(7, Ordering::Relaxed);
        stats.slow_closed.fetch_add(6, Ordering::Relaxed);
        stats.accept_emfile.fetch_add(8, Ordering::Relaxed);
        stats.accept_shed.fetch_add(9, Ordering::Relaxed);
        stats.mem_budget.store(1 << 20, Ordering::Relaxed);
        stats.mem_used.store(4096, Ordering::Relaxed);
        stats.wbuf_peak.fetch_max(2048, Ordering::Relaxed);
        let text = stats.render(&["CH", "TNR"], &cache);
        assert!(text.contains("shards=3"), "{text}");
        assert!(text.contains("open_connections=5"), "{text}");
        assert!(text.contains("pipelined_frames=7"), "{text}");
        assert!(text.contains("shed=2"), "{text}");
        assert!(text.contains("deadlines_exceeded=1"), "{text}");
        assert!(text.contains("client_timeouts=0"), "{text}");
        assert!(text.contains("slow_closed=6"), "{text}");
        assert!(text.contains("mem_budget=1048576"), "{text}");
        assert!(text.contains("mem_used=4096"), "{text}");
        assert!(text.contains("wbuf_peak=2048"), "{text}");
        assert!(text.contains("accept_emfile=8"), "{text}");
        assert!(text.contains("accept_shed=9"), "{text}");
        assert!(text.contains("disk_degraded="), "{text}");
        assert!(text.contains("open_fds="), "{text}");
        assert!(text.contains("hits=3"));
        assert!(text.contains("hit_rate=75.0%"));
        assert!(text.contains("reloads_ok=0"), "{text}");
        assert!(text.contains("worker_restarts=3"), "{text}");
        assert!(text.contains("audit_mismatches=4"), "{text}");
        assert!(text.contains("overflow"), "{text}");
        assert!(
            !text.contains("reload_error"),
            "no failed reload, no reason line:\n{text}"
        );
        assert!(text.contains("CH"));
        assert!(text.contains("batch"));
        assert!(!text.contains("path"), "unused ops are omitted:\n{text}");

        stats.set_reload_error("self-check rejected the new index".into());
        let text = stats.render(&["CH", "TNR"], &cache);
        assert!(text.contains("reload_error: RELOAD_FAILED"), "{text}");
        stats.clear_reload_error();
        assert_eq!(stats.reload_error(), None);
    }
}
