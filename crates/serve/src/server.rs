//! The TCP query server: a fixed worker pool over the engine, with
//! bounded worst-case behavior under overload, slow clients, deadlines,
//! and forced shutdown.
//!
//! Architecture (std-only, no async runtime):
//!
//! * An **acceptor** thread owns the (non-blocking) listener and hands
//!   accepted connections to the pool through a **bounded** channel.
//!   Past the high-water mark ([`ServerConfig::max_pending`]) a new
//!   connection is answered with one `BUSY` frame and closed — load is
//!   shed at the door instead of growing an unbounded queue.
//! * `workers` **worker** threads each own one reusable query session
//!   per backend — created once, reused for every request the worker
//!   ever serves. A worker serves one connection at a time, frame by
//!   frame. Slow clients cannot pin a worker: reads carry an idle
//!   timeout, a mid-frame **stall timeout** bounds how long a partial
//!   frame may dribble in, writes carry a write timeout, and frames are
//!   capped at [`ServerConfig::max_frame_len`].
//! * Every query runs under a [`QueryBudget`]: the request's optional
//!   deadline plus the server's force-stop kill flag. A tripped budget
//!   yields a `DEADLINE_EXCEEDED` frame (never a cached or misreported
//!   "unreachable").
//! * **Shutdown** drains: a `SHUTDOWN` frame or SIGTERM/SIGINT stops
//!   the acceptor immediately (new connections are refused), lets
//!   in-flight requests finish within [`ServerConfig::grace`], then a
//!   monitor thread flips the force-stop flag — budgets trip, workers
//!   answer a final error and close, and [`Server::join`] returns with
//!   every thread joined.
//!
//! Per-request flow: decode → fault-injection hook (tests only) →
//! resolve backend (wire id or degraded alias) → consult the sharded
//! distance cache (DISTANCE only) → run the session under its budget →
//! cache + record latency → respond. Dense DISTANCES batches reach CH's
//! bucket-based many-to-many through the `Session::distances` override.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spq_graph::backend::{QueryBudget, Session};

use crate::cache::DistanceCache;
use crate::fault::FaultInjector;
use crate::protocol::{self, Request};
use crate::stats::{Op, ServerStats};
use crate::Engine;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (also the maximum number of concurrently served
    /// connections).
    pub workers: usize,
    /// Total distance-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Socket read timeout; bounds how long a quiet connection delays
    /// shutdown.
    pub read_timeout: Duration,
    /// Accepted connections waiting for a worker beyond which new ones
    /// are shed with BUSY.
    pub max_pending: usize,
    /// Socket write timeout; a peer that stops reading its responses is
    /// disconnected instead of blocking a worker.
    pub write_timeout: Duration,
    /// How long a started frame may take to arrive in full; a client
    /// stalling mid-frame past this is disconnected.
    pub stall_timeout: Duration,
    /// Largest accepted frame (clamped to the protocol's own cap).
    pub max_frame_len: usize,
    /// Drain window after shutdown is requested: in-flight requests may
    /// finish within it, then the force-stop flag aborts the rest.
    pub grace: Duration,
    /// Fault-injection hook for chaos tests (None in production).
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .max(2),
            cache_capacity: 1 << 16,
            cache_shards: 16,
            read_timeout: Duration::from_millis(50),
            max_pending: 64,
            write_timeout: Duration::from_secs(2),
            stall_timeout: Duration::from_secs(2),
            max_frame_len: protocol::MAX_FRAME,
            grace: Duration::from_secs(3),
            fault: None,
        }
    }
}

/// Process-wide flag flipped by SIGTERM/SIGINT (see
/// [`install_signal_handlers`]); polled alongside each server's own
/// shutdown flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that request a graceful
/// shutdown of every server in the process. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // libc is always linked on Unix; declaring `signal` directly
        // avoids a dependency for two syscalls.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// Whether a delivered signal has requested shutdown.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Everything a worker needs beyond its sessions, bundled so the
/// per-connection call chain stays readable.
struct WorkerCtx {
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
    fault: Option<Arc<FaultInjector>>,
    read_timeout: Duration,
    write_timeout: Duration,
    stall_timeout: Duration,
    max_frame: usize,
}

/// A running server. Dropping it without [`Server::join`] detaches the
/// threads; the intended lifecycle is `start` → (traffic) →
/// `request_shutdown` (or SIGTERM / a SHUTDOWN frame) → `join`.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    engine: Arc<Engine>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
}

impl Server {
    /// Binds and starts accepting. The engine should already be
    /// self-checked (see [`Engine::self_check`]).
    pub fn start(engine: Arc<Engine>, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let force_stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::new(engine.backends().len()));
        let cache = Arc::new(DistanceCache::new(cfg.cache_capacity, cfg.cache_shards));
        let active = Arc::new(AtomicUsize::new(cfg.workers.max(1)));

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.max_pending.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            let rx = Arc::clone(&rx);
            let active = Arc::clone(&active);
            let ctx = WorkerCtx {
                shutdown: Arc::clone(&shutdown),
                force_stop: Arc::clone(&force_stop),
                stats: Arc::clone(&stats),
                cache: Arc::clone(&cache),
                fault: cfg.fault.clone(),
                read_timeout: cfg.read_timeout,
                write_timeout: cfg.write_timeout,
                stall_timeout: cfg.stall_timeout,
                max_frame: cfg.max_frame_len.min(protocol::MAX_FRAME),
            };
            workers.push(std::thread::spawn(move || {
                worker_loop(&engine, &rx, &ctx);
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || accept_loop(listener, tx, &shutdown, &stats))
        };

        // The grace monitor: once shutdown is requested, give in-flight
        // work `grace` to drain, then trip every budget's kill flag.
        let monitor = {
            let shutdown = Arc::clone(&shutdown);
            let force_stop = Arc::clone(&force_stop);
            let grace = cfg.grace;
            std::thread::spawn(move || {
                while !stopping(&shutdown) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                let deadline = Instant::now() + grace;
                while Instant::now() < deadline && active.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                force_stop.store(true, Ordering::SeqCst);
            })
        };

        Ok(Server {
            addr,
            shutdown,
            force_stop,
            acceptor: Some(acceptor),
            monitor: Some(monitor),
            workers,
            engine,
            stats,
            cache,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent): stop accepting, drain
    /// in-flight work within the configured grace, then force-close.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by any path).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signalled()
    }

    /// Whether the post-grace force-stop has fired.
    pub fn force_stopped(&self) -> bool {
        self.force_stop.load(Ordering::SeqCst)
    }

    /// Renders the current observability snapshot.
    pub fn stats_text(&self) -> String {
        let mut text = String::new();
        for d in self.engine.degradations() {
            text.push_str(&format!(
                "degraded: {} -> {} ({})\n",
                d.requested.name(),
                d.served_by.name(),
                d.reason
            ));
        }
        text.push_str(
            &self
                .stats
                .render(&self.engine.backend_names(), &self.cache.stats()),
        );
        text
    }

    /// Waits for every thread to finish (requires shutdown to have been
    /// requested via flag, frame, or signal) and returns the final
    /// stats dump.
    pub fn join(mut self) -> String {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        self.stats_text()
    }
}

fn stopping(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst) || signalled()
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    while !stopping(shutdown) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Shed at the door: one BUSY frame, best-effort
                        // (a peer that won't read it gets dropped by the
                        // short write timeout), then close.
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                        let busy = protocol::encode_busy(
                            "server overloaded; retry with exponential backoff",
                        );
                        let _ = protocol::write_frame(&mut stream, &busy);
                    }
                    Err(TrySendError::Disconnected(_)) => break, // every worker is gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here lets idle workers observe the disconnect, and
    // dropping the listener makes new connections fail fast.
}

fn worker_loop(engine: &Engine, rx: &Mutex<Receiver<TcpStream>>, ctx: &WorkerCtx) {
    // One reusable session per backend for this worker's whole life —
    // this is what keeps the per-request path allocation-free.
    let mut sessions: Vec<Box<dyn Session + '_>> = engine
        .backends()
        .iter()
        .map(|b| b.backend.session(engine.net()))
        .collect();
    let mut scratch = Scratch::default();
    loop {
        let stream = {
            let guard = rx.lock().unwrap();
            match guard.recv_timeout(Duration::from_millis(50)) {
                Ok(stream) => stream,
                Err(RecvTimeoutError::Timeout) => {
                    if stopping(&ctx.shutdown) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let _ = serve_connection(stream, engine, &mut sessions, &mut scratch, ctx);
        if stopping(&ctx.shutdown) {
            return;
        }
    }
}

/// Reusable per-worker buffers.
#[derive(Default)]
struct Scratch {
    frame: Vec<u8>,
    batch: Vec<Option<spq_graph::types::Dist>>,
}

/// Outcome of an interruptible exact read.
enum ReadOutcome {
    /// The buffer was filled.
    Filled,
    /// Clean EOF before the first byte.
    Eof,
    /// Shutdown (or force-stop) was requested; the caller should close.
    Stopped,
    /// The peer stalled mid-frame past the stall timeout.
    Stalled,
}

/// `read_exact` that tolerates the read timeout. At a frame boundary,
/// timeouts poll the shutdown flag and retry (a quiet connection is
/// fine). Mid-frame, the sender is supposedly mid-write, so waiting is
/// bounded by the stall timeout instead — a peer that dribbles half a
/// frame and stops is disconnected, not waited on forever. The
/// force-stop flag aborts reads in either position.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    ctx: &WorkerCtx,
    at_frame_boundary: bool,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    let mut stall_deadline: Option<Instant> = None;
    while filled < buf.len() {
        // Deliberately not `stopping()`: a delivered signal starts the
        // graceful drain, only the post-grace force-stop aborts reads.
        if ctx.force_stop.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Stopped);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_frame_boundary {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => {
                filled += n;
                // Progress restarts the stall clock: the cap is on how
                // long the peer may sit silent mid-frame, not on total
                // transfer time for a large batch.
                stall_deadline = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let idle_at_boundary = filled == 0 && at_frame_boundary;
                if idle_at_boundary {
                    if stopping(&ctx.shutdown) {
                        return Ok(ReadOutcome::Stopped);
                    }
                } else {
                    let deadline =
                        *stall_deadline.get_or_insert_with(|| Instant::now() + ctx.stall_timeout);
                    if Instant::now() >= deadline {
                        return Ok(ReadOutcome::Stalled);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Filled)
}

fn serve_connection(
    mut stream: TcpStream,
    engine: &Engine,
    sessions: &mut [Box<dyn Session + '_>],
    scratch: &mut Scratch,
    ctx: &WorkerCtx,
) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    stream.set_write_timeout(Some(ctx.write_timeout))?;
    loop {
        let mut header = [0u8; 4];
        match read_exact_interruptible(&mut stream, &mut header, ctx, true)? {
            ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
            ReadOutcome::Stalled => {
                ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            ReadOutcome::Filled => {}
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > ctx.max_frame {
            // Unrecoverable: framing is lost. Answer and drop the link
            // without ever allocating the claimed length.
            ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let resp = protocol::encode_error("frame exceeds the size limit");
            let _ = protocol::write_frame(&mut stream, &resp);
            return Ok(());
        }
        // A frame header was read, so its payload must follow; the
        // buffer is taken out of the scratch so the payload stays
        // readable by `handle_request` while the scratch's batch buffer
        // stays writable.
        let mut payload = std::mem::take(&mut scratch.frame);
        payload.resize(len, 0);
        let read = read_exact_interruptible(&mut stream, &mut payload, ctx, false);
        match read {
            Ok(ReadOutcome::Filled) => {}
            Ok(ReadOutcome::Stalled) => {
                ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Ok(ReadOutcome::Eof) | Ok(ReadOutcome::Stopped) => return Ok(()),
            Err(e) => return Err(e),
        }

        ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
        let action = match &ctx.fault {
            Some(f) => f.on_request(),
            None => crate::fault::FaultAction::NONE,
        };
        if let Some(delay) = action.delay {
            std::thread::sleep(delay);
        }
        let response = handle_request(&payload, engine, sessions, scratch, ctx);
        scratch.frame = payload;
        if action.drop_connection {
            // Injected mid-request connection loss: the query ran (and
            // possibly warmed the cache), but the peer never hears back.
            return Ok(());
        }
        if let Err(e) = protocol::write_frame(&mut stream, &response) {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                // The peer stopped reading; disconnect it rather
                // than blocking this worker.
                ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            return Err(e);
        }
        if stopping(&ctx.shutdown) {
            return Ok(()); // graceful: last response delivered, then close
        }
    }
}

/// Builds the budget one query runs under: the request deadline (if
/// any) plus the server's force-stop kill flag.
fn request_budget(deadline_ms: u32, ctx: &WorkerCtx) -> QueryBudget {
    let mut budget = QueryBudget::unlimited().with_kill_flag(Arc::clone(&ctx.force_stop));
    if deadline_ms > 0 {
        budget = budget.with_deadline(Instant::now() + Duration::from_millis(deadline_ms as u64));
    }
    budget
}

/// The response for a budget-tripped query: force-stop wins (the
/// connection is about to die anyway), otherwise the deadline frame.
fn interrupted_response(ctx: &WorkerCtx) -> Vec<u8> {
    if ctx.force_stop.load(Ordering::SeqCst) {
        ctx.stats.force_closed.fetch_add(1, Ordering::Relaxed);
        protocol::encode_error("server shutting down")
    } else {
        ctx.stats.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
        protocol::encode_deadline_exceeded("deadline exceeded before the query finished")
    }
}

fn handle_request(
    payload: &[u8],
    engine: &Engine,
    sessions: &mut [Box<dyn Session + '_>],
    scratch: &mut Scratch,
    ctx: &WorkerCtx,
) -> Vec<u8> {
    let stats = &ctx.stats;
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(msg) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return protocol::encode_error(&msg);
        }
    };
    let n = engine.net().num_nodes() as u32;
    let resolve = |backend: u8| -> Result<usize, Vec<u8>> {
        engine.position_of_wire(backend).ok_or_else(|| {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            protocol::encode_error(&format!("backend {backend} not served"))
        })
    };
    let check_range = |vs: &mut dyn Iterator<Item = u32>| -> Result<(), Vec<u8>> {
        for v in vs {
            if v >= n {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Err(protocol::encode_error(&format!(
                    "vertex out of range (network has {n} vertices)"
                )));
            }
        }
        Ok(())
    };
    let response = match request {
        Request::Ping => protocol::encode_text_response("pong"),
        Request::Stats => {
            let mut text = String::new();
            for d in engine.degradations() {
                text.push_str(&format!(
                    "degraded: {} -> {} ({})\n",
                    d.requested.name(),
                    d.served_by.name(),
                    d.reason
                ));
            }
            text.push_str(&stats.render(&engine.backend_names(), &ctx.cache.stats()));
            protocol::encode_text_response(&text)
        }
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            protocol::encode_empty_response()
        }
        Request::Distance {
            backend,
            s,
            t,
            deadline_ms,
        } => {
            let pos = match resolve(backend) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s, t].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            let d = match ctx.cache.get(backend, s, t) {
                Some(cached) => cached,
                None => {
                    sessions[pos].set_budget(request_budget(deadline_ms, ctx));
                    let d = sessions[pos].distance(s, t);
                    if sessions[pos].interrupted() {
                        // An interrupted None is an abort, not an
                        // answer: never cache it, never report it as
                        // "unreachable".
                        return interrupted_response(ctx);
                    }
                    ctx.cache.insert(backend, s, t, d);
                    d
                }
            };
            stats.record(pos, Op::Distance, t0.elapsed().as_nanos() as u64, 1);
            protocol::encode_distance_response(d)
        }
        Request::Path {
            backend,
            s,
            t,
            deadline_ms,
        } => {
            let pos = match resolve(backend) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s, t].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            let p = sessions[pos].shortest_path(s, t);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(pos, Op::Path, t0.elapsed().as_nanos() as u64, 1);
            protocol::encode_path_response(p)
        }
        Request::Distances {
            backend,
            sources,
            targets,
            deadline_ms,
        } => {
            let pos = match resolve(backend) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut sources.iter().chain(targets.iter()).copied()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].distances(&sources, &targets, &mut scratch.batch);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            let pairs = (sources.len() * targets.len()) as u64;
            stats.record(pos, Op::Batch, t0.elapsed().as_nanos() as u64, pairs);
            protocol::encode_distances_response(&scratch.batch)
        }
    };
    response
}
