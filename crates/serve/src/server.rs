//! The TCP query server: a fixed worker pool over the engine, with
//! bounded worst-case behavior under overload, slow clients, deadlines,
//! forced shutdown, worker panics, and live index swaps.
//!
//! Architecture (std-only, no async runtime):
//!
//! * An **acceptor** thread owns the (non-blocking) listener and hands
//!   accepted connections to the pool through a **bounded** channel.
//!   Past the high-water mark ([`ServerConfig::max_pending`]) a new
//!   connection is answered with one `BUSY` frame and closed — load is
//!   shed at the door instead of growing an unbounded queue.
//! * `workers` **worker** threads each pin the current
//!   [`EpochState`](crate::epoch::EpochState) and own one reusable
//!   query session per backend — rebuilt only when a reload publishes a
//!   new epoch or a panic forces a fresh start. A worker serves one
//!   connection at a time, frame by frame, inside a `catch_unwind`
//!   supervision shell: a panicking query kills only its own
//!   connection, the worker rebuilds its sessions and keeps serving.
//!   Past [`ServerConfig::restart_cap`] panics within
//!   [`ServerConfig::restart_window`] the worker retires; when the last
//!   worker retires the server shuts down instead of lingering as a
//!   zombie acceptor.
//! * A **reloader** thread (present when a reload source is configured)
//!   watches for `RELOAD` frames, `SIGHUP`, and content changes to the
//!   reload file; it builds the replacement engine, self-checks it
//!   against the Dijkstra oracle, and only then publishes the new
//!   epoch. See [`crate::epoch`].
//! * An **auditor** thread (see [`crate::audit`]) replays a seeded
//!   trickle of queries against the oracle and quarantines backends
//!   that keep disagreeing.
//! * Every query runs under a [`QueryBudget`]: the request's optional
//!   deadline plus the server's force-stop kill flag. A tripped budget
//!   yields a `DEADLINE_EXCEEDED` frame (never a cached or misreported
//!   "unreachable").
//! * **Shutdown** drains: a `SHUTDOWN` frame or SIGTERM/SIGINT stops
//!   the acceptor immediately (new connections are refused), lets
//!   in-flight requests finish within [`ServerConfig::grace`], then a
//!   monitor thread flips the force-stop flag — budgets trip, workers
//!   answer a final error and close, and [`Server::join`] returns with
//!   every thread joined.
//!
//! Per-request flow: decode → fault-injection hook (tests only) →
//! resolve backend (wire id, degraded alias, or quarantine failover) →
//! consult the sharded epoch-keyed distance cache (DISTANCE only) → run
//! the session under its budget → cache + record latency → respond.
//! Dense DISTANCES batches reach CH's bucket-based many-to-many through
//! the `Session::distances` override.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spq_dijkstra::Baseline;
use spq_graph::backend::{Backend, QueryBudget, Session};

use crate::audit::{self, AuditConfig};
use crate::cache::DistanceCache;
use crate::epoch::{EpochRegistry, EpochState, ReloadFactory, ReloadSpec};
use crate::fault::FaultInjector;
use crate::protocol::{self, Request};
use crate::stats::{wire_slot, Op, ServerStats, WIRE_NAMES, WIRE_SLOTS};
use crate::sync::lock_unpoisoned;
use crate::{BackendKind, Engine};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (also the maximum number of concurrently served
    /// connections).
    pub workers: usize,
    /// Total distance-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Socket read timeout; bounds how long a quiet connection delays
    /// shutdown.
    pub read_timeout: Duration,
    /// Accepted connections waiting for a worker beyond which new ones
    /// are shed with BUSY.
    pub max_pending: usize,
    /// Socket write timeout; a peer that stops reading its responses is
    /// disconnected instead of blocking a worker.
    pub write_timeout: Duration,
    /// How long a started frame may take to arrive in full; a client
    /// stalling mid-frame past this is disconnected.
    pub stall_timeout: Duration,
    /// Largest accepted frame (clamped to the protocol's own cap).
    pub max_frame_len: usize,
    /// Drain window after shutdown is requested: in-flight requests may
    /// finish within it, then the force-stop flag aborts the rest.
    pub grace: Duration,
    /// Fault-injection hook for chaos tests (None in production).
    pub fault: Option<Arc<FaultInjector>>,
    /// Programmatic reload source: invoked by the reloader to build the
    /// replacement engine (tests and embedders; the CLI uses
    /// [`ServerConfig::reload_file`]).
    pub reload_factory: Option<ReloadFactory>,
    /// Watched reload file (see [`ReloadSpec`]): a content change
    /// triggers a reload, and `RELOAD` frames / `SIGHUP` rebuild from
    /// its current contents.
    pub reload_file: Option<PathBuf>,
    /// How often the reload file is polled for content changes.
    pub reload_poll: Duration,
    /// How long a `RELOAD` frame may wait for its attempt's outcome.
    pub reload_timeout: Duration,
    /// Random pairs the pre-publication self-check (and any startup
    /// self-check the caller runs) compares against the oracle.
    pub selfcheck_queries: usize,
    /// Seed of the self-check sampler.
    pub selfcheck_seed: u64,
    /// Continuous oracle auditing (None disables the auditor thread).
    pub audit: Option<AuditConfig>,
    /// Worker panics tolerated within [`ServerConfig::restart_window`]
    /// before the worker retires.
    pub restart_cap: usize,
    /// The sliding window [`ServerConfig::restart_cap`] counts over.
    pub restart_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .max(2),
            cache_capacity: 1 << 16,
            cache_shards: 16,
            read_timeout: Duration::from_millis(50),
            max_pending: 64,
            write_timeout: Duration::from_secs(2),
            stall_timeout: Duration::from_secs(2),
            max_frame_len: protocol::MAX_FRAME,
            grace: Duration::from_secs(3),
            fault: None,
            reload_factory: None,
            reload_file: None,
            reload_poll: Duration::from_millis(500),
            reload_timeout: Duration::from_secs(120),
            selfcheck_queries: 32,
            selfcheck_seed: 7,
            audit: None,
            restart_cap: 5,
            restart_window: Duration::from_secs(10),
        }
    }
}

/// Process-wide flag flipped by SIGTERM/SIGINT (see
/// [`install_signal_handlers`]); polled alongside each server's own
/// shutdown flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Process-wide flag flipped by SIGHUP: the operator's "reload your
/// indexes" signal, consumed by the reloader thread.
static SIGHUP_RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_sighup(_signum: i32) {
    SIGHUP_RELOAD.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that request a graceful
/// shutdown of every server in the process, and a SIGHUP handler that
/// requests an index reload. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // libc is always linked on Unix; declaring `signal` directly
        // avoids a dependency for three syscalls.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGHUP: i32 = 1;
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGHUP, on_sighup as extern "C" fn(i32) as usize);
        }
    }
}

/// Whether a delivered signal has requested shutdown.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Consumes a pending SIGHUP reload request, if any.
pub fn take_sighup() -> bool {
    SIGHUP_RELOAD.swap(false, Ordering::SeqCst)
}

/// Everything a worker needs beyond its sessions, bundled so the
/// per-connection call chain stays readable.
struct WorkerCtx {
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
    registry: Arc<EpochRegistry>,
    fault: Option<Arc<FaultInjector>>,
    read_timeout: Duration,
    write_timeout: Duration,
    stall_timeout: Duration,
    max_frame: usize,
    reload_timeout: Duration,
    has_reload_source: bool,
    /// Whether quarantined wire ids fail over down the degradation
    /// chain (from the audit config; irrelevant without an auditor).
    failover: bool,
    restart_cap: usize,
    restart_window: Duration,
}

/// A running server. Dropping it without [`Server::join`] detaches the
/// threads; the intended lifecycle is `start` → (traffic) →
/// `request_shutdown` (or SIGTERM / a SHUTDOWN frame) → `join`.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
    auditor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<EpochRegistry>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
}

impl Server {
    /// Binds and starts accepting. The engine should already be
    /// self-checked (see [`Engine::self_check`]); engines published
    /// later by reloads are self-checked by the reloader before they
    /// serve.
    pub fn start(engine: Arc<Engine>, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let force_stop = Arc::new(AtomicBool::new(false));
        // Stats are sized by wire id, not by this engine's backend
        // count: a reload may publish an engine with a different set.
        let stats = Arc::new(ServerStats::new(WIRE_SLOTS));
        let cache = Arc::new(DistanceCache::new(cfg.cache_capacity, cfg.cache_shards));
        let registry = Arc::new(EpochRegistry::new(engine));
        let active = Arc::new(AtomicUsize::new(cfg.workers.max(1)));
        let has_reload_source = cfg.reload_factory.is_some() || cfg.reload_file.is_some();

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.max_pending.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers);
        for worker_id in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let active = Arc::clone(&active);
            let ctx = WorkerCtx {
                shutdown: Arc::clone(&shutdown),
                force_stop: Arc::clone(&force_stop),
                stats: Arc::clone(&stats),
                cache: Arc::clone(&cache),
                registry: Arc::clone(&registry),
                fault: cfg.fault.clone(),
                read_timeout: cfg.read_timeout,
                write_timeout: cfg.write_timeout,
                stall_timeout: cfg.stall_timeout,
                max_frame: cfg.max_frame_len.min(protocol::MAX_FRAME),
                reload_timeout: cfg.reload_timeout,
                has_reload_source,
                failover: cfg.audit.as_ref().map_or(true, |a| a.failover),
                restart_cap: cfg.restart_cap.max(1),
                restart_window: cfg.restart_window,
            };
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &ctx, worker_id);
                // The last worker to leave — retirement or shutdown —
                // turns the lights off, so a fully retired pool shuts
                // the server down instead of leaving a zombie acceptor.
                if active.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ctx.shutdown.store(true, Ordering::SeqCst);
                }
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || accept_loop(listener, tx, &shutdown, &stats))
        };

        // The grace monitor: once shutdown is requested, give in-flight
        // work `grace` to drain, then trip every budget's kill flag.
        let monitor = {
            let shutdown = Arc::clone(&shutdown);
            let force_stop = Arc::clone(&force_stop);
            let active = Arc::clone(&active);
            let grace = cfg.grace;
            std::thread::spawn(move || {
                while !stopping(&shutdown) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                let deadline = Instant::now() + grace;
                while Instant::now() < deadline && active.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                force_stop.store(true, Ordering::SeqCst);
            })
        };

        let reloader = has_reload_source.then(|| {
            let reloader = Reloader {
                registry: Arc::clone(&registry),
                cache: Arc::clone(&cache),
                stats: Arc::clone(&stats),
                factory: cfg.reload_factory.clone(),
                reload_file: cfg.reload_file.clone(),
                poll: cfg.reload_poll,
                selfcheck_queries: cfg.selfcheck_queries,
                selfcheck_seed: cfg.selfcheck_seed,
                shutdown: Arc::clone(&shutdown),
            };
            std::thread::spawn(move || reloader.run())
        });

        let auditor = cfg.audit.clone().map(|audit_cfg| {
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let force_stop = Arc::clone(&force_stop);
            std::thread::spawn(move || {
                audit::auditor_loop(
                    &registry,
                    &cache,
                    &stats,
                    &audit_cfg,
                    &shutdown,
                    &force_stop,
                )
            })
        });

        Ok(Server {
            addr,
            shutdown,
            force_stop,
            acceptor: Some(acceptor),
            monitor: Some(monitor),
            reloader,
            auditor,
            workers,
            registry,
            stats,
            cache,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The epoch registry (tests inspect and trigger swaps through it).
    pub fn registry(&self) -> &Arc<EpochRegistry> {
        &self.registry
    }

    /// Requests a graceful shutdown (idempotent): stop accepting, drain
    /// in-flight work within the configured grace, then force-close.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by any path).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signalled()
    }

    /// Whether the post-grace force-stop has fired.
    pub fn force_stopped(&self) -> bool {
        self.force_stop.load(Ordering::SeqCst)
    }

    /// Renders the current observability snapshot.
    pub fn stats_text(&self) -> String {
        render_status(&self.registry.current(), &self.stats, &self.cache)
    }

    /// Waits for every thread to finish (requires shutdown to have been
    /// requested via flag, frame, or signal) and returns the final
    /// stats dump.
    pub fn join(mut self) -> String {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        if let Some(reloader) = self.reloader.take() {
            let _ = reloader.join();
        }
        if let Some(auditor) = self.auditor.take() {
            let _ = auditor.join();
        }
        self.stats_text()
    }
}

/// The STATS body: epoch, startup degradations, live quarantines, then
/// the counter tables.
fn render_status(state: &EpochState, stats: &ServerStats, cache: &DistanceCache) -> String {
    let mut text = format!("epoch: {}\n", state.epoch);
    for d in state.engine.degradations() {
        text.push_str(&format!(
            "degraded: {} -> {} ({})\n",
            d.requested.name(),
            d.served_by.name(),
            d.reason
        ));
    }
    for q in state.quarantine_lines() {
        text.push_str(&format!("quarantined: {q}\n"));
    }
    text.push_str(&stats.render(&WIRE_NAMES, &cache.stats()));
    text
}

fn stopping(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst) || signalled()
}

/// The reloader thread: waits for a trigger (RELOAD frame, SIGHUP, or
/// a content change to the watched reload file), builds and
/// self-checks the replacement engine, and publishes it as a new
/// epoch. Failure publishes nothing; the old epoch keeps serving.
struct Reloader {
    registry: Arc<EpochRegistry>,
    cache: Arc<DistanceCache>,
    stats: Arc<ServerStats>,
    factory: Option<ReloadFactory>,
    reload_file: Option<PathBuf>,
    poll: Duration,
    selfcheck_queries: usize,
    selfcheck_seed: u64,
    shutdown: Arc<AtomicBool>,
}

impl Reloader {
    fn run(&self) {
        // The file's startup contents are the baseline: only a *change*
        // triggers, so restarting the server next to an existing reload
        // file does not immediately rebuild.
        let mut baseline: Option<Vec<u8>> = self
            .reload_file
            .as_ref()
            .and_then(|p| std::fs::read(p).ok());
        let mut next_file_check = Instant::now() + self.poll;
        loop {
            if stopping(&self.shutdown) {
                return;
            }
            let mut triggered = self.registry.take_request();
            if take_sighup() {
                triggered = true;
            }
            if !triggered && Instant::now() >= next_file_check {
                next_file_check = Instant::now() + self.poll;
                if let Some(path) = &self.reload_file {
                    if let Ok(bytes) = std::fs::read(path) {
                        if baseline.as_deref() != Some(&bytes[..]) {
                            baseline = Some(bytes);
                            triggered = true;
                        }
                    }
                }
            }
            if !triggered {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let outcome = self.perform();
            match &outcome {
                Ok(epoch) => {
                    self.stats.reloads_ok.fetch_add(1, Ordering::Relaxed);
                    self.stats.clear_reload_error();
                    eprintln!("[reload] epoch {epoch} published");
                }
                Err(reason) => {
                    self.stats.reloads_failed.fetch_add(1, Ordering::Relaxed);
                    self.stats.set_reload_error(reason.clone());
                    eprintln!("[reload] FAILED (old epoch keeps serving): {reason}");
                }
            }
            self.registry.complete(outcome);
        }
    }

    /// One reload attempt: build → self-check → publish → purge stale
    /// cache epochs. Every step before `publish` leaves serving state
    /// untouched.
    fn perform(&self) -> Result<u64, String> {
        let current = self.registry.current();
        let engine: Arc<Engine> = if let Some(factory) = &self.factory {
            (factory.0)()?
        } else if let Some(path) = &self.reload_file {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let spec = ReloadSpec::parse(&text)?;
            spec.build(&current.engine)?
        } else {
            return Err("no reload source configured".into());
        };
        engine
            .self_check(self.selfcheck_queries, self.selfcheck_seed)
            .map_err(|e| format!("refusing to publish: {e}"))?;
        let epoch = self.registry.publish(engine);
        let purged = self.cache.purge_stale_epochs(epoch);
        if purged > 0 {
            eprintln!("[reload] purged {purged} cached answers from superseded epochs");
        }
        Ok(epoch)
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    while !stopping(shutdown) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Shed at the door: one BUSY frame, best-effort
                        // (a peer that won't read it gets dropped by the
                        // short write timeout), then close.
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                        let busy = protocol::encode_busy(
                            "server overloaded; retry with exponential backoff",
                        );
                        let _ = protocol::write_frame(&mut stream, &busy);
                    }
                    Err(TrySendError::Disconnected(_)) => break, // every worker is gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here lets idle workers observe the disconnect, and
    // dropping the listener makes new connections fail fast.
}

/// How one served connection ended, from the worker's perspective.
enum ConnOutcome {
    /// The connection is finished (EOF, error, shutdown, or dropped).
    Done,
    /// A fresh epoch was published after this frame was read: the
    /// worker must rebuild its sessions and then answer the carried
    /// frame on the new epoch — the frame is never dropped.
    EpochStale { stream: TcpStream, payload: Vec<u8> },
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &WorkerCtx, worker_id: usize) {
    let mut scratch = Scratch::default();
    // Panic timestamps within the restart window (the supervision cap).
    let mut panics: Vec<Instant> = Vec::new();
    // A connection (plus its already-read frame) carried across an
    // epoch swap, resumed first thing on the new epoch's sessions.
    let mut carry: Option<(TcpStream, Vec<u8>)> = None;
    'epochs: loop {
        // Pin the current epoch: sessions borrow this state's engine,
        // so every query this worker runs until the next swap (or
        // panic) is answered by one consistent index set.
        let state = ctx.registry.current();
        let engine = &state.engine;
        let baseline = Baseline;
        let mut sessions: Vec<Box<dyn Session + '_>> = engine
            .backends()
            .iter()
            .map(|b| b.backend.session(engine.net()))
            .collect();
        // The worker-local end of the quarantine failover chain: an
        // index-free Dijkstra session that exists even when the engine
        // serves no dijkstra slot.
        sessions.push(baseline.session(engine.net()));
        let fallback = sessions.len() - 1;
        loop {
            let (stream, pending) = match carry.take() {
                Some((stream, payload)) => (stream, Some(payload)),
                None => {
                    let received = {
                        let guard = lock_unpoisoned(rx);
                        guard.recv_timeout(Duration::from_millis(50))
                    };
                    match received {
                        Ok(stream) => (stream, None),
                        Err(RecvTimeoutError::Timeout) => {
                            if stopping(&ctx.shutdown) {
                                return;
                            }
                            if ctx.registry.epoch() != state.epoch {
                                continue 'epochs;
                            }
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            };
            // The supervision shell: a panic inside the request path —
            // injected by the chaos suite or a real backend defect —
            // kills only this connection. The worker records it,
            // rebuilds its sessions (the panicking one may be mid-query
            // garbage), and keeps serving.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                serve_connection(
                    stream,
                    &state,
                    &mut sessions,
                    fallback,
                    &mut scratch,
                    ctx,
                    pending,
                )
            }));
            match outcome {
                Ok(Ok(ConnOutcome::Done)) | Ok(Err(_)) => {}
                Ok(Ok(ConnOutcome::EpochStale { stream, payload })) => {
                    carry = Some((stream, payload));
                    continue 'epochs;
                }
                Err(_) => {
                    ctx.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    let now = Instant::now();
                    panics.retain(|&at| now.duration_since(at) <= ctx.restart_window);
                    panics.push(now);
                    if panics.len() >= ctx.restart_cap {
                        eprintln!(
                            "[worker {worker_id}] RETIRED: {} panics within {:?} (cap {})",
                            panics.len(),
                            ctx.restart_window,
                            ctx.restart_cap
                        );
                        return;
                    }
                    eprintln!(
                        "[worker {worker_id}] recovered from a panic; sessions rebuilt \
                         ({}/{} within {:?})",
                        panics.len(),
                        ctx.restart_cap,
                        ctx.restart_window
                    );
                    continue 'epochs;
                }
            }
            if stopping(&ctx.shutdown) {
                return;
            }
            if ctx.registry.epoch() != state.epoch {
                continue 'epochs;
            }
        }
    }
}

/// Reusable per-worker buffers.
#[derive(Default)]
struct Scratch {
    frame: Vec<u8>,
    batch: Vec<Option<spq_graph::types::Dist>>,
    entries: Vec<(spq_graph::types::NodeId, spq_graph::types::Dist)>,
}

/// Outcome of an interruptible exact read.
enum ReadOutcome {
    /// The buffer was filled.
    Filled,
    /// Clean EOF before the first byte.
    Eof,
    /// Shutdown (or force-stop) was requested; the caller should close.
    Stopped,
    /// The peer stalled mid-frame past the stall timeout.
    Stalled,
}

/// `read_exact` that tolerates the read timeout. At a frame boundary,
/// timeouts poll the shutdown flag and retry (a quiet connection is
/// fine). Mid-frame, the sender is supposedly mid-write, so waiting is
/// bounded by the stall timeout instead — a peer that dribbles half a
/// frame and stops is disconnected, not waited on forever. The
/// force-stop flag aborts reads in either position.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    ctx: &WorkerCtx,
    at_frame_boundary: bool,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    let mut stall_deadline: Option<Instant> = None;
    while filled < buf.len() {
        // Deliberately not `stopping()`: a delivered signal starts the
        // graceful drain, only the post-grace force-stop aborts reads.
        if ctx.force_stop.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Stopped);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_frame_boundary {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => {
                filled += n;
                // Progress restarts the stall clock: the cap is on how
                // long the peer may sit silent mid-frame, not on total
                // transfer time for a large batch.
                stall_deadline = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let idle_at_boundary = filled == 0 && at_frame_boundary;
                if idle_at_boundary {
                    if stopping(&ctx.shutdown) {
                        return Ok(ReadOutcome::Stopped);
                    }
                } else {
                    let deadline =
                        *stall_deadline.get_or_insert_with(|| Instant::now() + ctx.stall_timeout);
                    if Instant::now() >= deadline {
                        return Ok(ReadOutcome::Stalled);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Filled)
}

fn serve_connection(
    mut stream: TcpStream,
    state: &EpochState,
    sessions: &mut [Box<dyn Session + '_>],
    fallback: usize,
    scratch: &mut Scratch,
    ctx: &WorkerCtx,
    mut pending: Option<Vec<u8>>,
) -> io::Result<ConnOutcome> {
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    stream.set_write_timeout(Some(ctx.write_timeout))?;
    loop {
        let payload = match pending.take() {
            // A frame carried across an epoch swap: already read,
            // answered now by the new epoch's sessions.
            Some(p) => p,
            None => {
                let mut header = [0u8; 4];
                match read_exact_interruptible(&mut stream, &mut header, ctx, true)? {
                    ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(ConnOutcome::Done),
                    ReadOutcome::Stalled => {
                        ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                        return Ok(ConnOutcome::Done);
                    }
                    ReadOutcome::Filled => {}
                }
                let len = u32::from_le_bytes(header) as usize;
                if len > ctx.max_frame {
                    // Unrecoverable: framing is lost. Answer and drop the
                    // link without ever allocating the claimed length.
                    ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let resp = protocol::encode_error("frame exceeds the size limit");
                    let _ = protocol::write_frame(&mut stream, &resp);
                    return Ok(ConnOutcome::Done);
                }
                // A frame header was read, so its payload must follow;
                // the buffer is taken out of the scratch so the payload
                // stays readable by `handle_request` while the
                // scratch's batch buffer stays writable.
                let mut payload = std::mem::take(&mut scratch.frame);
                payload.resize(len, 0);
                match read_exact_interruptible(&mut stream, &mut payload, ctx, false)? {
                    ReadOutcome::Filled => {}
                    ReadOutcome::Stalled => {
                        ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                        return Ok(ConnOutcome::Done);
                    }
                    ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(ConnOutcome::Done),
                }
                // The epoch pin point: this frame arrived after a newer
                // epoch was published, so it (and everything after it)
                // belongs to the new engine. Hand the frame back intact.
                if ctx.registry.epoch() != state.epoch {
                    return Ok(ConnOutcome::EpochStale { stream, payload });
                }
                payload
            }
        };

        ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
        let action = match &ctx.fault {
            Some(f) => f.on_request(),
            None => crate::fault::FaultAction::NONE,
        };
        if let Some(delay) = action.delay {
            std::thread::sleep(delay);
        }
        if action.panic {
            // Stands in for a defect in a backend's query code: the
            // unwind is caught by the worker's supervision shell and
            // must kill only this connection.
            panic!("injected fault: panic while serving a request");
        }
        let response = handle_request(&payload, state, sessions, fallback, scratch, ctx);
        scratch.frame = payload;
        if action.drop_connection {
            // Injected mid-request connection loss: the query ran (and
            // possibly warmed the cache), but the peer never hears back.
            return Ok(ConnOutcome::Done);
        }
        if let Err(e) = protocol::write_frame(&mut stream, &response) {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                // The peer stopped reading; disconnect it rather
                // than blocking this worker.
                ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                return Ok(ConnOutcome::Done);
            }
            return Err(e);
        }
        if stopping(&ctx.shutdown) {
            return Ok(ConnOutcome::Done); // graceful: last response delivered, then close
        }
    }
}

/// Builds the budget one query runs under: the request deadline (if
/// any) plus the server's force-stop kill flag.
fn request_budget(deadline_ms: u32, ctx: &WorkerCtx) -> QueryBudget {
    let mut budget = QueryBudget::unlimited().with_kill_flag(Arc::clone(&ctx.force_stop));
    if deadline_ms > 0 {
        budget = budget.with_deadline(Instant::now() + Duration::from_millis(deadline_ms as u64));
    }
    budget
}

/// The response for a budget-tripped query: force-stop wins (the
/// connection is about to die anyway), otherwise the deadline frame.
fn interrupted_response(ctx: &WorkerCtx) -> Vec<u8> {
    if ctx.force_stop.load(Ordering::SeqCst) {
        ctx.stats.force_closed.fetch_add(1, Ordering::Relaxed);
        protocol::encode_error("server shutting down")
    } else {
        ctx.stats.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
        protocol::encode_deadline_exceeded("deadline exceeded before the query finished")
    }
}

/// Resolves which session position actually answers `backend`:
/// normally the engine position behind the wire id (or its degraded
/// alias), but a quarantined position fails over down the degradation
/// chain — CH, then Dijkstra, then the worker-local baseline at
/// `fallback` — or, with failover disabled, gets the typed
/// `QUARANTINED` response.
fn resolve_serving(
    backend: u8,
    state: &EpochState,
    fallback: usize,
    ctx: &WorkerCtx,
) -> Result<usize, Vec<u8>> {
    let engine = &state.engine;
    let pos = match engine.position_of_wire(backend) {
        Some(pos) => pos,
        None => {
            ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Err(protocol::encode_error(&format!(
                "backend {backend} not served"
            )));
        }
    };
    if !state.is_quarantined(pos) {
        return Ok(pos);
    }
    if !ctx.failover {
        return Err(protocol::encode_quarantined(&format!(
            "backend {backend} is quarantined by the oracle auditor and failover is disabled"
        )));
    }
    let next = engine
        .position_of_wire(BackendKind::Ch.wire_id())
        .filter(|&p| p != pos && !state.is_quarantined(p))
        .or_else(|| {
            engine
                .position_of_wire(BackendKind::Dijkstra.wire_id())
                .filter(|&p| p != pos && !state.is_quarantined(p))
        })
        .unwrap_or(fallback);
    ctx.stats
        .quarantine_failovers
        .fetch_add(1, Ordering::Relaxed);
    Ok(next)
}

fn handle_request(
    payload: &[u8],
    state: &EpochState,
    sessions: &mut [Box<dyn Session + '_>],
    fallback: usize,
    scratch: &mut Scratch,
    ctx: &WorkerCtx,
) -> Vec<u8> {
    let stats = &ctx.stats;
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(msg) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            // Undecodable frames land in the shared op-indexed tables
            // (final wire slot, op "other") — the same accounting path
            // as every real query, not a side channel.
            stats.record(wire_slot(u8::MAX), Op::Other, 0, 0);
            return protocol::encode_error(&msg);
        }
    };
    let engine = &state.engine;
    let n = engine.net().num_nodes() as u32;
    let check_range = |vs: &mut dyn Iterator<Item = u32>| -> Result<(), Vec<u8>> {
        for v in vs {
            if v >= n {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Err(protocol::encode_error(&format!(
                    "vertex out of range (network has {n} vertices)"
                )));
            }
        }
        Ok(())
    };
    let response = match request {
        Request::Ping => protocol::encode_text_response("pong"),
        Request::Stats => protocol::encode_text_response(&render_status(state, stats, &ctx.cache)),
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            protocol::encode_empty_response()
        }
        Request::Reload => {
            if !ctx.has_reload_source {
                protocol::encode_reload_failed(
                    "no reload source configured (start with --reload-file or a reload factory)",
                )
            } else {
                // Blocks this worker until the attempt completes; the
                // registry coalesces concurrent requests into one
                // rebuild, and shutdown cancels the wait.
                match ctx
                    .registry
                    .reload_and_wait(ctx.reload_timeout, &ctx.shutdown)
                {
                    Ok(epoch) => protocol::encode_text_response(&format!("epoch={epoch}")),
                    Err(reason) => protocol::encode_reload_failed(&reason),
                }
            }
        }
        Request::Distance {
            backend,
            s,
            t,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s, t].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            let d = match ctx.cache.get(state.epoch, backend, s, t) {
                Some(cached) => cached,
                None => {
                    sessions[pos].set_budget(request_budget(deadline_ms, ctx));
                    let d = sessions[pos].distance(s, t);
                    if sessions[pos].interrupted() {
                        // An interrupted None is an abort, not an
                        // answer: never cache it, never report it as
                        // "unreachable".
                        return interrupted_response(ctx);
                    }
                    // Re-checked at insert time: if the auditor
                    // quarantined this position while the query ran,
                    // its answer must not outlive the purge.
                    if !state.is_quarantined(pos) {
                        ctx.cache.insert(state.epoch, backend, s, t, d);
                    }
                    d
                }
            };
            stats.record(
                wire_slot(backend),
                Op::Distance,
                t0.elapsed().as_nanos() as u64,
                1,
            );
            protocol::encode_distance_response(d)
        }
        Request::Path {
            backend,
            s,
            t,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s, t].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            let p = sessions[pos].shortest_path(s, t);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(
                wire_slot(backend),
                Op::Path,
                t0.elapsed().as_nanos() as u64,
                1,
            );
            protocol::encode_path_response(p)
        }
        Request::Distances {
            backend,
            sources,
            targets,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut sources.iter().chain(targets.iter()).copied()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].distances(&sources, &targets, &mut scratch.batch);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            let pairs = (sources.len() * targets.len()) as u64;
            stats.record(
                wire_slot(backend),
                Op::Batch,
                t0.elapsed().as_nanos() as u64,
                pairs,
            );
            protocol::encode_distances_response(&scratch.batch)
        }
        Request::OneToMany {
            backend,
            s,
            targets,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s].into_iter().chain(targets.iter().copied())) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].one_to_many(s, &targets, &mut scratch.batch);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(
                wire_slot(backend),
                Op::OneToMany,
                t0.elapsed().as_nanos() as u64,
                targets.len() as u64,
            );
            protocol::encode_distances_response(&scratch.batch)
        }
        Request::Knn {
            backend,
            s,
            k,
            poi,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s].into_iter()) {
                return resp;
            }
            // The epoch's registry resolves the name so every session —
            // including the index-free quarantine fallback, which
            // brute-forces over the set — answers the same queries.
            let Some(entry) = engine.poi_set(&poi) else {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!("unknown POI set '{poi}'"));
            };
            let poi_ref = spq_graph::backend::PoiRef {
                name: entry.set.name(),
                nodes: entry.set.nodes(),
            };
            if (k as usize).min(entry.set.len()) > protocol::MAX_RESULT_ENTRIES {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!(
                    "kNN result of {k} entries exceeds the response limit"
                ));
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].knn(s, k as usize, poi_ref, &mut scratch.entries);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(
                wire_slot(backend),
                Op::Knn,
                t0.elapsed().as_nanos() as u64,
                scratch.entries.len() as u64,
            );
            protocol::encode_nodes_dists_response(&scratch.entries)
        }
        Request::Range {
            backend,
            s,
            limit,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            let supported = sessions[pos].range(s, limit, &mut scratch.entries);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            if !supported {
                return protocol::encode_error(&format!(
                    "backend {backend} does not serve range queries"
                ));
            }
            if scratch.entries.len() > protocol::MAX_RESULT_ENTRIES {
                return protocol::encode_error(&format!(
                    "range result of {} vertices exceeds the response limit; lower the limit",
                    scratch.entries.len()
                ));
            }
            stats.record(
                wire_slot(backend),
                Op::Range,
                t0.elapsed().as_nanos() as u64,
                scratch.entries.len() as u64,
            );
            protocol::encode_nodes_dists_response(&scratch.entries)
        }
    };
    response
}
