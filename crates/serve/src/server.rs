//! The TCP query server: sharded epoll event loop in front of a fixed
//! worker pool, with bounded worst-case behavior under overload, slow
//! clients, deadlines, forced shutdown, worker panics, and live index
//! swaps.
//!
//! Architecture (std-only, no async runtime; the epoll/eventfd shims
//! live in [`crate::eventloop`]):
//!
//! * An **acceptor** thread owns the (non-blocking) listener and deals
//!   accepted connections round-robin to the shards. Accepting is
//!   cheap: connection count is bounded by file descriptors, not
//!   threads, so tens of thousands of idle connections cost one fd and
//!   a few hundred bytes each.
//! * [`ServerConfig::shards`] **shard** threads each run an epoll loop
//!   over their connections: non-blocking reads into a growing buffer,
//!   frame parsing, and a per-connection write queue. Clients may
//!   **pipeline** requests (several frames in flight on one
//!   connection, up to [`ServerConfig::pipeline_depth`]); responses are
//!   sequenced and flushed strictly in request order. Parsed frames are
//!   dispatched to a **bounded** work queue; past the high-water mark
//!   ([`ServerConfig::max_pending`]) a request is answered with one
//!   `BUSY` frame in its response slot — load is shed per request
//!   instead of growing an unbounded queue. A peer that stalls
//!   mid-frame past [`ServerConfig::stall_timeout`] or stops reading
//!   its responses past [`ServerConfig::write_timeout`] is
//!   disconnected; a quietly idle connection is never reaped.
//! * `workers` **worker** threads pop requests from the work queue.
//!   Each pins the current [`EpochState`](crate::epoch::EpochState) and
//!   owns one reusable query session per backend — rebuilt when a
//!   reload publishes a new epoch (checked before every request, so a
//!   request arriving after a `RELOAD` acknowledgement is answered by
//!   the new epoch) or when a panic forces a fresh start. Queries run
//!   inside a `catch_unwind` supervision shell: a panicking query kills
//!   only its own connection, the worker rebuilds its sessions and
//!   keeps serving. Past [`ServerConfig::restart_cap`] panics within
//!   [`ServerConfig::restart_window`] the worker retires; when the last
//!   worker retires the server shuts down instead of lingering as a
//!   zombie acceptor.
//! * A **reloader** thread (present when a reload source is configured)
//!   watches for `RELOAD` frames, `SIGHUP`, and content changes to the
//!   reload file; it builds the replacement engine, self-checks it
//!   against the Dijkstra oracle, and only then publishes the new
//!   epoch. See [`crate::epoch`].
//! * An **auditor** thread (see [`crate::audit`]) replays a seeded
//!   trickle of queries against the oracle and quarantines backends
//!   that keep disagreeing.
//! * Every query runs under a [`QueryBudget`]: the request's optional
//!   deadline plus the server's force-stop kill flag. A tripped budget
//!   yields a `DEADLINE_EXCEEDED` frame (never a cached or misreported
//!   "unreachable").
//! * **Resource exhaustion is survived, not crashed on.** Every
//!   per-connection buffer is capped ([`ServerConfig::wbuf_cap`], one
//!   max frame of unparsed bytes) and an optional global byte budget
//!   ([`ServerConfig::mem_budget`]) pauses read interest across
//!   connections when buffered bytes exceed it — backpressure through
//!   TCP, never OOM. A peer that fills its write backlog and then
//!   makes no read progress is force-closed (`slow_closed`). `accept`
//!   returning `EMFILE`/`ENFILE` trips a reserved-emergency-fd path
//!   that sheds one waiting peer with a typed BUSY and backs off;
//!   [`ServerConfig::max_connections`] sheds at the door before fds
//!   run out. Disk-full during index writes latches the sticky
//!   `disk_degraded` gauge (see `spq_graph::atomic_io`) while query
//!   serving continues.
//! * **Shutdown** drains: a `SHUTDOWN` frame or SIGTERM/SIGINT stops
//!   the acceptor immediately (new connections are refused) and stops
//!   frame parsing; queued and in-flight requests finish within
//!   [`ServerConfig::grace`], their responses are flushed, then a
//!   monitor thread flips the force-stop flag — budgets trip, workers
//!   answer a final error, shards flush and close what they can inside
//!   a short hard-stop window, and [`Server::join`] returns with every
//!   thread joined.
//!
//! Per-request flow: parse (shard) → dispatch → fault-injection hook
//! (tests only) → resolve backend (wire id, degraded alias, or
//! quarantine failover) → consult the sharded epoch-keyed distance
//! cache (DISTANCE only) → run the session under its budget → cache +
//! record latency → sequence the response back through the owning
//! shard. Dense DISTANCES batches reach the CH batch kernel through the
//! `Session::distances` override.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spq_dijkstra::Baseline;
use spq_graph::backend::{Backend, QueryBudget, Session};

use crate::audit::{self, AuditConfig};
use crate::cache::DistanceCache;
use crate::epoch::{EpochRegistry, EpochState, ReloadFactory, ReloadSpec};
use crate::eventloop::{Event, Poller, Waker};
use crate::fault::FaultInjector;
use crate::protocol::{self, Request};
use crate::stats::{wire_slot, Op, ServerStats, WIRE_NAMES, WIRE_SLOTS};
use crate::sync::lock_unpoisoned;
use crate::{BackendKind, Engine};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing queries (CPU-bound concurrency).
    pub workers: usize,
    /// Event-loop shards owning connections (0 = auto: a small number
    /// scaled to the machine; connection capacity is not limited by
    /// this, it only spreads readiness handling).
    pub shards: usize,
    /// Most requests one connection may have in flight (parsed but not
    /// yet responded). Parsing pauses past this, so a pipelining client
    /// is backpressured through TCP instead of ballooning memory.
    pub pipeline_depth: usize,
    /// Total distance-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Legacy knob from the thread-per-connection server; the event
    /// loop waits on readiness instead of read timeouts. Retained so
    /// existing configs keep compiling.
    pub read_timeout: Duration,
    /// Parsed requests waiting for a worker beyond which new ones are
    /// answered with BUSY.
    pub max_pending: usize,
    /// A peer that accepts no response bytes for this long is
    /// disconnected instead of holding buffered responses forever.
    pub write_timeout: Duration,
    /// How long a started frame may take to arrive in full; a client
    /// stalling mid-frame past this is disconnected. (An idle
    /// connection at a frame boundary is never disconnected.)
    pub stall_timeout: Duration,
    /// Largest accepted frame (clamped to the protocol's own cap).
    pub max_frame_len: usize,
    /// Per-connection cap on buffered response bytes. A connection
    /// whose write backlog reaches the cap stops being parsed *and*
    /// read (backpressure through TCP); if it then makes no write
    /// progress for [`ServerConfig::write_timeout`] it is force-closed
    /// and counted as `slow_closed`. Responses already dispatched may
    /// overshoot the cap by at most a pipeline's worth of frames.
    pub wbuf_cap: usize,
    /// Global byte budget for connection buffers, sequenced responses,
    /// and the distance cache's static reservation (0 = unlimited).
    /// Past the budget every connection's read interest is paused until
    /// flushed responses free memory — backpressure, never OOM. The
    /// cache is clamped so its reservation never exceeds half the
    /// budget.
    pub mem_budget: usize,
    /// Most concurrently open connections (0 = unlimited). Beyond the
    /// cap a new peer is answered with one typed BUSY frame at the door
    /// and closed instead of being adopted by a shard.
    pub max_connections: usize,
    /// Drain window after shutdown is requested: in-flight requests may
    /// finish within it, then the force-stop flag aborts the rest.
    pub grace: Duration,
    /// Fault-injection hook for chaos tests (None in production).
    pub fault: Option<Arc<FaultInjector>>,
    /// Programmatic reload source: invoked by the reloader to build the
    /// replacement engine (tests and embedders; the CLI uses
    /// [`ServerConfig::reload_file`]).
    pub reload_factory: Option<ReloadFactory>,
    /// Watched reload file (see [`ReloadSpec`]): a content change
    /// triggers a reload, and `RELOAD` frames / `SIGHUP` rebuild from
    /// its current contents.
    pub reload_file: Option<PathBuf>,
    /// How often the reload file is polled for content changes.
    pub reload_poll: Duration,
    /// How long a `RELOAD` frame may wait for its attempt's outcome.
    pub reload_timeout: Duration,
    /// Random pairs the pre-publication self-check (and any startup
    /// self-check the caller runs) compares against the oracle.
    pub selfcheck_queries: usize,
    /// Seed of the self-check sampler.
    pub selfcheck_seed: u64,
    /// Continuous oracle auditing (None disables the auditor thread).
    pub audit: Option<AuditConfig>,
    /// Worker panics tolerated within [`ServerConfig::restart_window`]
    /// before the worker retires.
    pub restart_cap: usize,
    /// The sliding window [`ServerConfig::restart_cap`] counts over.
    pub restart_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .max(2),
            shards: 0,
            pipeline_depth: 32,
            cache_capacity: 1 << 16,
            cache_shards: 16,
            read_timeout: Duration::from_millis(50),
            max_pending: 64,
            write_timeout: Duration::from_secs(2),
            stall_timeout: Duration::from_secs(2),
            max_frame_len: protocol::MAX_FRAME,
            wbuf_cap: 4 << 20,
            mem_budget: 0,
            max_connections: 0,
            grace: Duration::from_secs(3),
            fault: None,
            reload_factory: None,
            reload_file: None,
            reload_poll: Duration::from_millis(500),
            reload_timeout: Duration::from_secs(120),
            selfcheck_queries: 32,
            selfcheck_seed: 7,
            audit: None,
            restart_cap: 5,
            restart_window: Duration::from_secs(10),
        }
    }
}

/// Process-wide flag flipped by SIGTERM/SIGINT (see
/// [`install_signal_handlers`]); polled alongside each server's own
/// shutdown flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Process-wide flag flipped by SIGHUP: the operator's "reload your
/// indexes" signal, consumed by the reloader thread.
static SIGHUP_RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_sighup(_signum: i32) {
    SIGHUP_RELOAD.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that request a graceful
/// shutdown of every server in the process, and a SIGHUP handler that
/// requests an index reload. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // libc is always linked on Unix; declaring `signal` directly
        // avoids a dependency for three syscalls.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGHUP: i32 = 1;
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGHUP, on_sighup as extern "C" fn(i32) as usize);
        }
    }
}

/// Whether a delivered signal has requested shutdown.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Consumes a pending SIGHUP reload request, if any.
pub fn take_sighup() -> bool {
    SIGHUP_RELOAD.swap(false, Ordering::SeqCst)
}

/// One parsed request travelling from a shard to a worker.
struct WorkItem {
    /// Index of the shard that owns the connection.
    shard: usize,
    /// Generation-tagged connection token within that shard.
    token: u64,
    /// Position of this request in its connection's response order.
    seq: u64,
    /// The frame payload (without the length prefix).
    payload: Vec<u8>,
}

/// What a worker hands back for one [`WorkItem`].
enum Completion {
    /// A response payload, to be flushed in `seq` order.
    Respond(Vec<u8>),
    /// Close the connection without responding (injected connection
    /// drop, or a panic that killed the request).
    Close,
}

/// Messages into a shard's ingress queue.
enum ShardMsg {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A finished request for one of this shard's connections.
    Done {
        token: u64,
        seq: u64,
        completion: Completion,
    },
}

/// The cross-thread face of a shard: a locked ingress queue plus the
/// eventfd that pulls the shard out of `epoll_wait`.
struct ShardHandle {
    ingress: Mutex<VecDeque<ShardMsg>>,
    waker: Waker,
}

impl ShardHandle {
    fn send(&self, msg: ShardMsg) {
        lock_unpoisoned(&self.ingress).push_back(msg);
        self.waker.wake();
    }
}

/// The bounded queue of parsed requests awaiting a worker.
struct WorkQueue {
    q: Mutex<VecDeque<WorkItem>>,
    cv: Condvar,
    cap: usize,
}

impl WorkQueue {
    fn new(cap: usize) -> Self {
        WorkQueue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues unless the high-water mark is reached (the caller sheds
    /// with BUSY then).
    fn try_push(&self, item: WorkItem) -> bool {
        {
            let mut q = lock_unpoisoned(&self.q);
            if q.len() >= self.cap {
                return false;
            }
            q.push_back(item);
        }
        self.cv.notify_one();
        true
    }

    fn pop(&self, timeout: Duration) -> Option<WorkItem> {
        let mut q = lock_unpoisoned(&self.q);
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        let (mut q, _timed_out) = self
            .cv
            .wait_timeout(q, timeout)
            .unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }

    fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.q).is_empty()
    }
}

/// Everything a worker needs beyond its sessions, bundled so the
/// per-request call chain stays readable.
struct WorkerCtx {
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
    registry: Arc<EpochRegistry>,
    fault: Option<Arc<FaultInjector>>,
    reload_timeout: Duration,
    has_reload_source: bool,
    /// Whether quarantined wire ids fail over down the degradation
    /// chain (from the audit config; irrelevant without an auditor).
    failover: bool,
    restart_cap: usize,
    restart_window: Duration,
}

/// A running server. Dropping it without [`Server::join`] detaches the
/// threads; the intended lifecycle is `start` → (traffic) →
/// `request_shutdown` (or SIGTERM / a SHUTDOWN frame) → `join`.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
    auditor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<EpochRegistry>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
}

impl Server {
    /// Binds and starts accepting. The engine should already be
    /// self-checked (see [`Engine::self_check`]); engines published
    /// later by reloads are self-checked by the reloader before they
    /// serve.
    pub fn start(engine: Arc<Engine>, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let force_stop = Arc::new(AtomicBool::new(false));
        // Stats are sized by wire id, not by this engine's backend
        // count: a reload may publish an engine with a different set.
        let stats = Arc::new(ServerStats::new(WIRE_SLOTS));
        // Under a memory budget the distance cache is clamped so its
        // static reservation never eats more than half the budget; the
        // reservation is charged up front so `mem_used` reflects the
        // worst case, not the warm-up state.
        let mut cache_capacity = cfg.cache_capacity;
        if cfg.mem_budget > 0 {
            cache_capacity =
                cache_capacity.min((cfg.mem_budget / 2) / crate::cache::APPROX_ENTRY_BYTES);
        }
        let cache = Arc::new(DistanceCache::new(cache_capacity, cfg.cache_shards));
        stats
            .mem_budget
            .store(cfg.mem_budget as u64, Ordering::Relaxed);
        stats.mem_used.store(
            (cache_capacity * crate::cache::APPROX_ENTRY_BYTES) as u64,
            Ordering::Relaxed,
        );
        let registry = Arc::new(EpochRegistry::new(engine));
        let active = Arc::new(AtomicUsize::new(cfg.workers.max(1)));
        let has_reload_source = cfg.reload_factory.is_some() || cfg.reload_file.is_some();

        let num_shards = if cfg.shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get() / 4)
                .unwrap_or(1)
                .clamp(1, 4)
        } else {
            cfg.shards
        };
        stats.shards.store(num_shards as u64, Ordering::Relaxed);

        let handles: Arc<Vec<ShardHandle>> = Arc::new(
            (0..num_shards)
                .map(|_| {
                    Ok(ShardHandle {
                        ingress: Mutex::new(VecDeque::new()),
                        waker: Waker::new()?,
                    })
                })
                .collect::<io::Result<Vec<_>>>()?,
        );
        let work = Arc::new(WorkQueue::new(cfg.max_pending));

        let mut shard_threads = Vec::with_capacity(num_shards);
        for shard_id in 0..num_shards {
            let ctx = ShardCtx {
                shutdown: Arc::clone(&shutdown),
                force_stop: Arc::clone(&force_stop),
                stats: Arc::clone(&stats),
                max_frame: cfg.max_frame_len.min(protocol::MAX_FRAME),
                stall_timeout: cfg.stall_timeout,
                write_timeout: cfg.write_timeout,
                pipeline_depth: cfg.pipeline_depth.max(1),
                wbuf_cap: cfg.wbuf_cap.max(4096),
                rbuf_cap: cfg.max_frame_len.min(protocol::MAX_FRAME) + 4 + 64 * 1024,
                mem_budget: cfg.mem_budget,
            };
            let handles = Arc::clone(&handles);
            let work = Arc::clone(&work);
            shard_threads.push(std::thread::spawn(move || {
                match Shard::new(shard_id, handles, work, ctx) {
                    Ok(mut shard) => shard.run(),
                    Err(e) => eprintln!("[shard {shard_id}] failed to start epoll: {e}"),
                }
            }));
        }

        let mut workers = Vec::with_capacity(cfg.workers);
        for worker_id in 0..cfg.workers.max(1) {
            let work = Arc::clone(&work);
            let handles = Arc::clone(&handles);
            let active = Arc::clone(&active);
            let ctx = WorkerCtx {
                shutdown: Arc::clone(&shutdown),
                force_stop: Arc::clone(&force_stop),
                stats: Arc::clone(&stats),
                cache: Arc::clone(&cache),
                registry: Arc::clone(&registry),
                fault: cfg.fault.clone(),
                reload_timeout: cfg.reload_timeout,
                has_reload_source,
                failover: cfg.audit.as_ref().map_or(true, |a| a.failover),
                restart_cap: cfg.restart_cap.max(1),
                restart_window: cfg.restart_window,
            };
            workers.push(std::thread::spawn(move || {
                worker_loop(&work, &handles, &ctx, worker_id);
                // The last worker to leave — retirement or shutdown —
                // turns the lights off, so a fully retired pool shuts
                // the server down instead of leaving a zombie acceptor.
                if active.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ctx.shutdown.store(true, Ordering::SeqCst);
                }
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let handles = Arc::clone(&handles);
            let fault = cfg.fault.clone();
            let max_connections = cfg.max_connections;
            std::thread::spawn(move || {
                accept_loop(
                    listener,
                    &handles,
                    &shutdown,
                    &stats,
                    fault.as_deref(),
                    max_connections,
                )
            })
        };

        // The grace monitor: once shutdown is requested, give in-flight
        // work `grace` to drain, then trip every budget's kill flag.
        let monitor = {
            let shutdown = Arc::clone(&shutdown);
            let force_stop = Arc::clone(&force_stop);
            let active = Arc::clone(&active);
            let grace = cfg.grace;
            std::thread::spawn(move || {
                while !stopping(&shutdown) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                let deadline = Instant::now() + grace;
                while Instant::now() < deadline && active.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                force_stop.store(true, Ordering::SeqCst);
            })
        };

        let reloader = has_reload_source.then(|| {
            let reloader = Reloader {
                registry: Arc::clone(&registry),
                cache: Arc::clone(&cache),
                stats: Arc::clone(&stats),
                factory: cfg.reload_factory.clone(),
                reload_file: cfg.reload_file.clone(),
                poll: cfg.reload_poll,
                selfcheck_queries: cfg.selfcheck_queries,
                selfcheck_seed: cfg.selfcheck_seed,
                shutdown: Arc::clone(&shutdown),
            };
            std::thread::spawn(move || reloader.run())
        });

        let auditor = cfg.audit.clone().map(|audit_cfg| {
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let force_stop = Arc::clone(&force_stop);
            std::thread::spawn(move || {
                audit::auditor_loop(
                    &registry,
                    &cache,
                    &stats,
                    &audit_cfg,
                    &shutdown,
                    &force_stop,
                )
            })
        });

        Ok(Server {
            addr,
            shutdown,
            force_stop,
            acceptor: Some(acceptor),
            monitor: Some(monitor),
            reloader,
            auditor,
            shards: shard_threads,
            workers,
            registry,
            stats,
            cache,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The epoch registry (tests inspect and trigger swaps through it).
    pub fn registry(&self) -> &Arc<EpochRegistry> {
        &self.registry
    }

    /// Requests a graceful shutdown (idempotent): stop accepting, drain
    /// in-flight work within the configured grace, then force-close.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by any path).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signalled()
    }

    /// Whether the post-grace force-stop has fired.
    pub fn force_stopped(&self) -> bool {
        self.force_stop.load(Ordering::SeqCst)
    }

    /// Renders the current observability snapshot.
    pub fn stats_text(&self) -> String {
        render_status(&self.registry.current(), &self.stats, &self.cache)
    }

    /// Waits for every thread to finish (requires shutdown to have been
    /// requested via flag, frame, or signal) and returns the final
    /// stats dump.
    pub fn join(mut self) -> String {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for s in self.shards.drain(..) {
            let _ = s.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        if let Some(reloader) = self.reloader.take() {
            let _ = reloader.join();
        }
        if let Some(auditor) = self.auditor.take() {
            let _ = auditor.join();
        }
        self.stats_text()
    }
}

/// The STATS body: epoch, startup degradations, live quarantines, then
/// the counter tables.
fn render_status(state: &EpochState, stats: &ServerStats, cache: &DistanceCache) -> String {
    let mut text = format!("epoch: {}\n", state.epoch);
    for d in state.engine.degradations() {
        text.push_str(&format!(
            "degraded: {} -> {} ({})\n",
            d.requested.name(),
            d.served_by.name(),
            d.reason
        ));
    }
    for q in state.quarantine_lines() {
        text.push_str(&format!("quarantined: {q}\n"));
    }
    text.push_str(&stats.render(&WIRE_NAMES, &cache.stats()));
    text
}

fn stopping(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst) || signalled()
}

/// The reloader thread: waits for a trigger (RELOAD frame, SIGHUP, or
/// a content change to the watched reload file), builds and
/// self-checks the replacement engine, and publishes it as a new
/// epoch. Failure publishes nothing; the old epoch keeps serving.
struct Reloader {
    registry: Arc<EpochRegistry>,
    cache: Arc<DistanceCache>,
    stats: Arc<ServerStats>,
    factory: Option<ReloadFactory>,
    reload_file: Option<PathBuf>,
    poll: Duration,
    selfcheck_queries: usize,
    selfcheck_seed: u64,
    shutdown: Arc<AtomicBool>,
}

impl Reloader {
    fn run(&self) {
        // The file's startup contents are the baseline: only a *change*
        // triggers, so restarting the server next to an existing reload
        // file does not immediately rebuild.
        let mut baseline: Option<Vec<u8>> = self
            .reload_file
            .as_ref()
            .and_then(|p| std::fs::read(p).ok());
        let mut next_file_check = Instant::now() + self.poll;
        loop {
            if stopping(&self.shutdown) {
                return;
            }
            let mut triggered = self.registry.take_request();
            if take_sighup() {
                triggered = true;
            }
            if !triggered && Instant::now() >= next_file_check {
                next_file_check = Instant::now() + self.poll;
                if let Some(path) = &self.reload_file {
                    if let Ok(bytes) = std::fs::read(path) {
                        if baseline.as_deref() != Some(&bytes[..]) {
                            baseline = Some(bytes);
                            triggered = true;
                        }
                    }
                }
            }
            if !triggered {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let outcome = self.perform();
            match &outcome {
                Ok(epoch) => {
                    self.stats.reloads_ok.fetch_add(1, Ordering::Relaxed);
                    self.stats.clear_reload_error();
                    eprintln!("[reload] epoch {epoch} published");
                }
                Err(reason) => {
                    self.stats.reloads_failed.fetch_add(1, Ordering::Relaxed);
                    self.stats.set_reload_error(reason.clone());
                    eprintln!("[reload] FAILED (old epoch keeps serving): {reason}");
                }
            }
            self.registry.complete(outcome);
        }
    }

    /// One reload attempt: build → self-check → publish → purge stale
    /// cache epochs. Every step before `publish` leaves serving state
    /// untouched.
    fn perform(&self) -> Result<u64, String> {
        let current = self.registry.current();
        let engine: Arc<Engine> = if let Some(factory) = &self.factory {
            (factory.0)()?
        } else if let Some(path) = &self.reload_file {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let spec = ReloadSpec::parse(&text)?;
            spec.build(&current.engine)?
        } else {
            return Err("no reload source configured".into());
        };
        engine
            .self_check(self.selfcheck_queries, self.selfcheck_seed)
            .map_err(|e| format!("refusing to publish: {e}"))?;
        let epoch = self.registry.publish(engine);
        let purged = self.cache.purge_stale_epochs(epoch);
        if purged > 0 {
            eprintln!("[reload] purged {purged} cached answers from superseded epochs");
        }
        Ok(epoch)
    }
}

/// Answers a peer the server cannot adopt with one typed BUSY frame,
/// best-effort, then closes. The socket is switched to blocking with a
/// short write timeout so a dead peer cannot stall the acceptor.
fn shed_at_door(stream: TcpStream, msg: &str) {
    let payload = protocol::encode_busy(msg);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut stream = stream;
    let _ = stream.write_all(&frame);
    // Dropping the stream closes it.
}

/// Whether an `accept` error means the process (or system) is out of
/// file descriptors. EMFILE = 24, ENFILE = 23 on Linux.
fn fd_exhausted(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(24) | Some(23))
}

fn accept_loop(
    listener: TcpListener,
    handles: &[ShardHandle],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    fault: Option<&FaultInjector>,
    max_connections: usize,
) {
    let mut next = 0usize;
    // One reserved fd: when accept hits EMFILE, dropping this lets the
    // acceptor accept exactly one waiting peer, answer it with a typed
    // BUSY, and close — the peer learns "back off" instead of hanging
    // in the listen queue until its own timeout.
    let mut emergency = std::fs::File::open("/dev/null").ok();
    const BACKOFF_FLOOR: Duration = Duration::from_millis(10);
    const BACKOFF_CEIL: Duration = Duration::from_millis(500);
    let mut backoff = BACKOFF_FLOOR;
    while !stopping(shutdown) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = BACKOFF_FLOOR;
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if fault.is_some_and(|f| f.on_accept()) {
                    // Injected fd exhaustion: behave exactly as if
                    // accept had returned EMFILE and the emergency-fd
                    // path had fired.
                    stats.accept_emfile.fetch_add(1, Ordering::Relaxed);
                    shed_at_door(
                        stream,
                        "server out of file descriptors; retry with exponential backoff",
                    );
                    continue;
                }
                if max_connections > 0
                    && stats.open_connections.load(Ordering::Relaxed) >= max_connections as u64
                {
                    // Admission control: shed at the door instead of
                    // adopting a connection the budget cannot hold.
                    stats.accept_shed.fetch_add(1, Ordering::Relaxed);
                    shed_at_door(stream, "connection limit reached; retry later");
                    continue;
                }
                // Round-robin: connection count is bounded by fds, not
                // by a queue — overload is shed per *request* at the
                // work queue, not per connection at the door.
                handles[next % handles.len()].send(ShardMsg::Conn(stream));
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                backoff = BACKOFF_FLOOR;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if fd_exhausted(&e) => {
                stats.accept_emfile.fetch_add(1, Ordering::Relaxed);
                // Give back the reserved fd, drain one waiting peer
                // with a typed BUSY, then re-arm the reserve. If even
                // that fails the backoff alone bounds the spin.
                drop(emergency.take());
                if let Ok((stream, _peer)) = listener.accept() {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    shed_at_door(
                        stream,
                        "server out of file descriptors; retry with exponential backoff",
                    );
                }
                emergency = std::fs::File::open("/dev/null").ok();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEIL);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping the listener makes new connections fail fast.
    drop(emergency);
}

/// Token under which every shard registers its own waker.
const WAKER_TOKEN: u64 = u64::MAX;

fn conn_token(gen: u32, idx: usize) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn token_parts(token: u64) -> (u32, usize) {
    ((token >> 32) as u32, (token & 0xffff_ffff) as usize)
}

/// Immutable shard environment.
struct ShardCtx {
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    max_frame: usize,
    stall_timeout: Duration,
    write_timeout: Duration,
    pipeline_depth: usize,
    /// Per-connection write-backlog cap (see [`ServerConfig::wbuf_cap`]).
    wbuf_cap: usize,
    /// Per-connection unparsed-bytes cap: one max frame plus slack. A
    /// peer flooding bytes faster than they parse is paused, not
    /// buffered without bound.
    rbuf_cap: usize,
    /// Global byte budget (0 = unlimited); checked against
    /// `stats.mem_used`.
    mem_budget: usize,
}

/// Per-connection state owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Received-but-unparsed bytes; `rstart` is the consumed prefix.
    /// Only bytes actually received are ever buffered — a corrupted
    /// length header can never make the server allocate the claimed
    /// size.
    rbuf: Vec<u8>,
    rstart: usize,
    /// Bytes queued to write; `wstart` is the flushed prefix.
    wbuf: Vec<u8>,
    wstart: usize,
    /// Sequence number assigned to the next parsed frame.
    next_seq: u64,
    /// Sequence number of the next response to append to `wbuf` —
    /// responses flush strictly in request order.
    next_flush: u64,
    /// Out-of-order completions waiting for their turn.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Dispatched requests not yet completed.
    inflight: usize,
    /// When the trailing partial frame stopped growing (None at a clean
    /// frame boundary or while a complete frame waits on backpressure).
    partial_since: Option<Instant>,
    /// Last instant write() made progress (meaningful while `wbuf` is
    /// non-empty).
    last_write_progress: Instant,
    /// Whether EPOLLOUT interest is currently registered.
    write_interest: bool,
    /// Whether EPOLLIN interest is currently registered; dropped while
    /// this connection's buffers (or the global budget) are full, so a
    /// firehose peer is backpressured through TCP instead of buffered.
    read_interest: bool,
    /// Buffered bytes last charged against the global `mem_used` gauge;
    /// the service pass settles the delta, close refunds the rest.
    accounted: usize,
    /// Flush what is queued, then close (protocol framing is lost).
    close_after_flush: bool,
    /// Peer sent EOF; close once everything in flight has flushed.
    eof: bool,
    /// Hard failure (socket error / hangup): close immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Conn {
        Conn {
            stream,
            token,
            rbuf: Vec::new(),
            rstart: 0,
            wbuf: Vec::new(),
            wstart: 0,
            next_seq: 0,
            next_flush: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            partial_since: None,
            last_write_progress: Instant::now(),
            write_interest: false,
            read_interest: true,
            accounted: 0,
            close_after_flush: false,
            eof: false,
            dead: false,
        }
    }

    fn write_drained(&self) -> bool {
        self.wstart == self.wbuf.len() && self.ready.is_empty()
    }
}

/// Whether the unparsed bytes start with a complete (or oversized, and
/// therefore immediately actionable) frame.
fn has_full_frame(conn: &Conn, max_frame: usize) -> bool {
    let avail = &conn.rbuf[conn.rstart..];
    if avail.len() < 4 {
        return false;
    }
    let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
    len > max_frame || avail.len() >= 4 + len
}

/// Appends one length-prefixed frame to the connection's write queue.
fn enqueue_frame(conn: &mut Conn, payload: &[u8]) {
    if conn.wstart == conn.wbuf.len() {
        // Transitioning from drained to pending restarts the
        // write-stall clock.
        conn.last_write_progress = Instant::now();
    }
    conn.wbuf
        .extend_from_slice(&(payload.len() as u32).to_le_bytes());
    conn.wbuf.extend_from_slice(payload);
}

/// Moves completed responses into the write queue, in sequence order.
fn flush_ready(conn: &mut Conn) {
    while let Some(payload) = conn.ready.remove(&conn.next_flush) {
        enqueue_frame(conn, &payload);
        conn.next_flush += 1;
    }
}

/// Parses complete frames out of the read buffer and dispatches them,
/// shedding with BUSY when the work queue is full.
fn parse_and_dispatch(
    conn: &mut Conn,
    shard_id: usize,
    work: &WorkQueue,
    ctx: &ShardCtx,
    stopping_now: bool,
) {
    // Once shutdown is requested no new work is started; buffered
    // bytes of unparsed frames are simply dropped at close.
    if stopping_now || conn.close_after_flush || conn.dead {
        return;
    }
    loop {
        if conn.inflight + conn.ready.len() >= ctx.pipeline_depth {
            break; // backpressure: stop parsing, let TCP flow control push back
        }
        if conn.wbuf.len() - conn.wstart >= ctx.wbuf_cap {
            break; // write backlog full: no new work until the peer reads
        }
        let avail = &conn.rbuf[conn.rstart..];
        if avail.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > ctx.max_frame {
            // Unrecoverable: framing is lost. Answer in sequence and
            // drop the link without ever allocating the claimed length.
            ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.ready
                .insert(seq, protocol::encode_error("frame exceeds the size limit"));
            conn.close_after_flush = true;
            break;
        }
        if avail.len() < 4 + len {
            break;
        }
        let payload = avail[4..4 + len].to_vec();
        conn.rstart += 4 + len;
        ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
        let seq = conn.next_seq;
        conn.next_seq += 1;
        if conn.inflight > 0 {
            ctx.stats.pipelined_frames.fetch_add(1, Ordering::Relaxed);
        }
        let item = WorkItem {
            shard: shard_id,
            token: conn.token,
            seq,
            payload,
        };
        if work.try_push(item) {
            conn.inflight += 1;
        } else {
            // Per-request shedding: the BUSY frame takes this request's
            // response slot so pipelined siblings stay correctly
            // ordered.
            ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
            conn.ready.insert(
                seq,
                protocol::encode_busy("server overloaded; retry with exponential backoff"),
            );
        }
    }
    // Compact the consumed prefix once it dominates the buffer, and
    // return capacity a past burst grew once it is no longer needed.
    if conn.rstart == conn.rbuf.len() {
        conn.rbuf.clear();
        conn.rstart = 0;
        if conn.rbuf.capacity() > 256 * 1024 {
            conn.rbuf.shrink_to(64 * 1024);
        }
    } else if conn.rstart > 64 * 1024 {
        conn.rbuf.drain(..conn.rstart);
        conn.rstart = 0;
    }
}

/// Non-blocking read into the connection's buffer. Returns whether any
/// bytes arrived; flags EOF and hard errors on the connection.
fn on_read(conn: &mut Conn) -> bool {
    let mut progressed = false;
    let mut tmp = [0u8; 16 * 1024];
    // Bounded per readiness event so one firehose connection cannot
    // starve its shard; level-triggered epoll re-fires for the rest.
    for _ in 0..8 {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&tmp[..n]);
                progressed = true;
                if n < tmp.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progressed
}

/// Flushes as much of the write queue as the socket accepts. Returns
/// false on a hard write error.
fn try_write(conn: &mut Conn) -> bool {
    while conn.wstart < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wstart..]) {
            Ok(0) => {
                conn.dead = true;
                return false;
            }
            Ok(n) => {
                conn.wstart += n;
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return false;
            }
        }
    }
    if conn.wstart == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wstart = 0;
        if conn.wbuf.capacity() > 256 * 1024 {
            conn.wbuf.shrink_to(64 * 1024);
        }
    } else if conn.wstart > 64 * 1024 {
        conn.wbuf.drain(..conn.wstart);
        conn.wstart = 0;
    }
    true
}

/// One event-loop shard: owns a set of connections, parses and
/// sequences their frames, and exchanges work with the worker pool.
struct Shard {
    id: usize,
    poller: Poller,
    handles: Arc<Vec<ShardHandle>>,
    work: Arc<WorkQueue>,
    ctx: ShardCtx,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    /// When the force-stop flag was first observed (bounds the hard
    /// shutdown window).
    force_seen: Option<Instant>,
}

/// How long a shard keeps flushing after force-stop before it closes
/// whatever is left (covers responses produced by budgets tripping).
const FORCE_STOP_LINGER: Duration = Duration::from_millis(400);

impl Shard {
    fn new(
        id: usize,
        handles: Arc<Vec<ShardHandle>>,
        work: Arc<WorkQueue>,
        ctx: ShardCtx,
    ) -> io::Result<Shard> {
        let poller = Poller::new(256)?;
        poller.add(handles[id].waker.raw_fd(), WAKER_TOKEN, false)?;
        Ok(Shard {
            id,
            poller,
            handles,
            work,
            ctx,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            open: 0,
            force_seen: None,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            let _ = self.poller.wait(&mut events, 25);
            self.handles[self.id].waker.drain();
            let stopping_now = stopping(&self.ctx.shutdown);

            // Ingress: adopted connections and finished requests.
            let msgs: VecDeque<ShardMsg> = {
                let mut q = lock_unpoisoned(&self.handles[self.id].ingress);
                std::mem::take(&mut *q)
            };
            for msg in msgs {
                match msg {
                    ShardMsg::Conn(stream) => self.register(stream, stopping_now),
                    ShardMsg::Done {
                        token,
                        seq,
                        completion,
                    } => self.complete(token, seq, completion),
                }
            }

            // Readiness: pull bytes in, note hangups; all the actual
            // frame work happens in the service pass below.
            let mut any_read = false;
            for ev in &events {
                if ev.token == WAKER_TOKEN {
                    continue;
                }
                let (gen, idx) = token_parts(ev.token);
                let Some(slot) = self.conns.get_mut(idx) else {
                    continue;
                };
                let Some(conn) = slot.as_mut() else { continue };
                if self.gens[idx] != gen {
                    continue; // stale event for a recycled slot
                }
                if ev.hangup {
                    conn.dead = true;
                    continue;
                }
                if ev.readable && on_read(conn) {
                    any_read = true;
                    // New bytes restart the mid-frame stall clock.
                    conn.partial_since = None;
                }
            }
            let _ = any_read;

            // Service pass: parse, dispatch, flush, sequence, reap.
            let now = Instant::now();
            let force = self.ctx.force_stop.load(Ordering::SeqCst);
            if force && self.force_seen.is_none() {
                self.force_seen = Some(now);
            }
            let force_expired = self
                .force_seen
                .is_some_and(|t0| now.duration_since(t0) >= FORCE_STOP_LINGER);
            for idx in 0..self.conns.len() {
                let close = {
                    let Some(conn) = self.conns[idx].as_mut() else {
                        continue;
                    };
                    service_conn(conn, self.id, &self.poller, &self.work, &self.ctx, now)
                        || should_close(conn, &self.ctx, now, stopping_now)
                        || force_expired
                };
                if close {
                    self.close(idx);
                }
            }

            if stopping_now && self.open == 0 {
                // Graceful exit: nothing left to serve. (Force-stop
                // funnels here too once the linger window closes every
                // remaining connection.)
                return;
            }
        }
    }

    fn register(&mut self, stream: TcpStream, stopping_now: bool) {
        if stopping_now || stream.set_nonblocking(true).is_err() {
            return; // refused at the edge: dropping the stream closes it
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let token = conn_token(self.gens[idx], idx);
        if self.poller.add(stream.as_raw_fd(), token, false).is_err() {
            self.free.push(idx);
            return;
        }
        self.ctx
            .stats
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        self.open += 1;
        self.conns[idx] = Some(Conn::new(stream, token));
    }

    fn complete(&mut self, token: u64, seq: u64, completion: Completion) {
        let (gen, idx) = token_parts(token);
        let Some(slot) = self.conns.get_mut(idx) else {
            return;
        };
        let Some(conn) = slot.as_mut() else { return };
        if self.gens[idx] != gen {
            return; // the connection died while this request ran
        }
        conn.inflight = conn.inflight.saturating_sub(1);
        match completion {
            Completion::Respond(payload) => {
                conn.ready.insert(seq, payload);
            }
            Completion::Close => {
                // Injected drop or a panic: the request dies with its
                // connection, pipelined siblings included.
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.open -= 1;
            self.ctx
                .stats
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            // Refund whatever the service pass last charged; closing a
            // hoarding connection is what frees budget under pressure.
            self.ctx
                .stats
                .mem_used
                .fetch_sub(conn.accounted as u64, Ordering::Relaxed);
        }
    }
}

/// One connection's service step. Returns true if the connection must
/// close because of a hard failure.
fn service_conn(
    conn: &mut Conn,
    shard_id: usize,
    poller: &Poller,
    work: &WorkQueue,
    ctx: &ShardCtx,
    now: Instant,
) -> bool {
    let stopping_now = stopping(&ctx.shutdown);
    parse_and_dispatch(conn, shard_id, work, ctx, stopping_now);
    flush_ready(conn);
    if !try_write(conn) || conn.dead {
        return true;
    }
    // Track the trailing partial frame for the stall timeout. A
    // complete frame waiting on pipeline backpressure is not a stall,
    // and progress (handled at read time) restarts the clock.
    let leftover = conn.rbuf.len() - conn.rstart;
    if leftover > 0 && !has_full_frame(conn, ctx.max_frame) && !conn.close_after_flush {
        conn.partial_since.get_or_insert(now);
    } else {
        conn.partial_since = None;
    }
    // Settle this connection's buffered bytes against the global
    // memory gauge: rbuf pending + wbuf pending + sequenced responses
    // waiting their turn. Deltas only, so the gauge is exact across
    // thousands of connections without a global recount.
    let wpending = conn.wbuf.len() - conn.wstart;
    let rpending = conn.rbuf.len() - conn.rstart;
    let live = rpending + wpending + conn.ready.values().map(Vec::len).sum::<usize>();
    if live > conn.accounted {
        ctx.stats
            .mem_used
            .fetch_add((live - conn.accounted) as u64, Ordering::Relaxed);
    } else if live < conn.accounted {
        ctx.stats
            .mem_used
            .fetch_sub((conn.accounted - live) as u64, Ordering::Relaxed);
    }
    conn.accounted = live;
    if wpending as u64 > ctx.stats.wbuf_peak.load(Ordering::Relaxed) {
        ctx.stats
            .wbuf_peak
            .fetch_max(wpending as u64, Ordering::Relaxed);
    }
    // Keep epoll interest in sync: EPOLLOUT tracks pending output;
    // EPOLLIN is dropped while this connection's buffers — or the
    // global budget — are full, so the kernel backpressures the peer
    // through TCP. Flushing re-arms it; a paused connection still
    // learns of hangups (EPOLLERR/EPOLLHUP are unmaskable).
    let want_write = conn.wstart < conn.wbuf.len();
    let over_budget =
        ctx.mem_budget > 0 && ctx.stats.mem_used.load(Ordering::Relaxed) > ctx.mem_budget as u64;
    let want_read = !conn.close_after_flush
        && rpending < ctx.rbuf_cap
        && wpending < ctx.wbuf_cap
        && !over_budget;
    if (want_write != conn.write_interest || want_read != conn.read_interest)
        && poller
            .modify(conn.stream.as_raw_fd(), conn.token, want_read, want_write)
            .is_ok()
    {
        conn.write_interest = want_write;
        conn.read_interest = want_read;
    }
    false
}

/// Whether a connection should close now (orderly paths; hard failures
/// are handled by [`service_conn`]).
fn should_close(conn: &Conn, ctx: &ShardCtx, now: Instant, stopping_now: bool) -> bool {
    let drained = conn.inflight == 0 && conn.write_drained();
    if drained && conn.close_after_flush {
        return true;
    }
    if drained && stopping_now {
        return true; // graceful shutdown: last responses delivered, then close
    }
    if drained && conn.eof && !has_full_frame(conn, ctx.max_frame) {
        return true; // peer finished and everything owed was flushed
    }
    // Mid-frame stall: only once nothing is owed (a slow-loris with
    // responses still in flight is reaped after they flush).
    if conn.inflight == 0 && conn.ready.is_empty() {
        if let Some(t0) = conn.partial_since {
            if now.duration_since(t0) >= ctx.stall_timeout {
                ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
    }
    // Write stall: the peer stopped reading its responses. A peer that
    // also filled its write-backlog cap is the typed slow-reader case —
    // its buffers are force-reclaimed and the close is accounted as
    // `slow_closed`, distinct from an ordinary client timeout.
    if conn.wstart < conn.wbuf.len()
        && now.duration_since(conn.last_write_progress) >= ctx.write_timeout
    {
        if conn.wbuf.len() - conn.wstart >= ctx.wbuf_cap {
            ctx.stats.slow_closed.fetch_add(1, Ordering::Relaxed);
        } else {
            ctx.stats.client_timeouts.fetch_add(1, Ordering::Relaxed);
        }
        return true;
    }
    false
}

fn worker_loop(
    work: &Arc<WorkQueue>,
    handles: &Arc<Vec<ShardHandle>>,
    ctx: &WorkerCtx,
    worker_id: usize,
) {
    let mut scratch = Scratch::default();
    // Panic timestamps within the restart window (the supervision cap).
    let mut panics: Vec<Instant> = Vec::new();
    // A request carried across an epoch swap, answered first thing on
    // the new epoch's sessions — never dropped.
    let mut carry: Option<WorkItem> = None;
    'epochs: loop {
        // Pin the current epoch: sessions borrow this state's engine,
        // so every query this worker runs until the next swap (or
        // panic) is answered by one consistent index set.
        let state = ctx.registry.current();
        let engine = &state.engine;
        let baseline = Baseline;
        let mut sessions: Vec<Box<dyn Session + '_>> = engine
            .backends()
            .iter()
            .map(|b| b.backend.session(engine.net()))
            .collect();
        // The worker-local end of the quarantine failover chain: an
        // index-free Dijkstra session that exists even when the engine
        // serves no dijkstra slot.
        sessions.push(baseline.session(engine.net()));
        let fallback = sessions.len() - 1;
        loop {
            let item = match carry.take() {
                Some(item) => item,
                None => match work.pop(Duration::from_millis(50)) {
                    Some(item) => item,
                    None => {
                        if stopping(&ctx.shutdown) && work.is_empty() {
                            return; // drained: queued requests were answered first
                        }
                        if ctx.registry.epoch() != state.epoch {
                            continue 'epochs;
                        }
                        continue;
                    }
                },
            };
            // Re-pin before every request: a request dispatched after a
            // reload acknowledgement must be answered by the new epoch.
            if ctx.registry.epoch() != state.epoch {
                carry = Some(item);
                continue 'epochs;
            }
            let action = match &ctx.fault {
                Some(f) => f.on_request(),
                None => crate::fault::FaultAction::NONE,
            };
            if let Some(delay) = action.delay {
                std::thread::sleep(delay);
            }
            // The supervision shell: a panic inside the request path —
            // injected by the chaos suite or a real backend defect —
            // kills only this request's connection. The worker records
            // it, rebuilds its sessions (the panicking one may be
            // mid-query garbage), and keeps serving.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if action.panic {
                    // Stands in for a defect in a backend's query code.
                    panic!("injected fault: panic while serving a request");
                }
                handle_request(
                    &item.payload,
                    &state,
                    &mut sessions,
                    fallback,
                    &mut scratch,
                    ctx,
                )
            }));
            match outcome {
                Ok(response) => {
                    let completion = if action.drop_connection {
                        // Injected mid-request connection loss: the
                        // query ran (and possibly warmed the cache),
                        // but the peer never hears back.
                        Completion::Close
                    } else {
                        Completion::Respond(response)
                    };
                    handles[item.shard].send(ShardMsg::Done {
                        token: item.token,
                        seq: item.seq,
                        completion,
                    });
                }
                Err(_) => {
                    ctx.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    handles[item.shard].send(ShardMsg::Done {
                        token: item.token,
                        seq: item.seq,
                        completion: Completion::Close,
                    });
                    let now = Instant::now();
                    panics.retain(|&at| now.duration_since(at) <= ctx.restart_window);
                    panics.push(now);
                    if panics.len() >= ctx.restart_cap {
                        eprintln!(
                            "[worker {worker_id}] RETIRED: {} panics within {:?} (cap {})",
                            panics.len(),
                            ctx.restart_window,
                            ctx.restart_cap
                        );
                        return;
                    }
                    eprintln!(
                        "[worker {worker_id}] recovered from a panic; sessions rebuilt \
                         ({}/{} within {:?})",
                        panics.len(),
                        ctx.restart_cap,
                        ctx.restart_window
                    );
                    continue 'epochs;
                }
            }
        }
    }
}

/// Reusable per-worker buffers.
#[derive(Default)]
struct Scratch {
    batch: Vec<Option<spq_graph::types::Dist>>,
    entries: Vec<(spq_graph::types::NodeId, spq_graph::types::Dist)>,
}

/// Builds the budget one query runs under: the request deadline (if
/// any) plus the server's force-stop kill flag.
fn request_budget(deadline_ms: u32, ctx: &WorkerCtx) -> QueryBudget {
    let mut budget = QueryBudget::unlimited().with_kill_flag(Arc::clone(&ctx.force_stop));
    if deadline_ms > 0 {
        budget = budget.with_deadline(Instant::now() + Duration::from_millis(deadline_ms as u64));
    }
    budget
}

/// The response for a budget-tripped query: force-stop wins (the
/// connection is about to die anyway), otherwise the deadline frame.
fn interrupted_response(ctx: &WorkerCtx) -> Vec<u8> {
    if ctx.force_stop.load(Ordering::SeqCst) {
        ctx.stats.force_closed.fetch_add(1, Ordering::Relaxed);
        protocol::encode_error("server shutting down")
    } else {
        ctx.stats.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
        protocol::encode_deadline_exceeded("deadline exceeded before the query finished")
    }
}

/// Resolves which session position actually answers `backend`:
/// normally the engine position behind the wire id (or its degraded
/// alias), but a quarantined position fails over down the degradation
/// chain — CH, then Dijkstra, then the worker-local baseline at
/// `fallback` — or, with failover disabled, gets the typed
/// `QUARANTINED` response.
fn resolve_serving(
    backend: u8,
    state: &EpochState,
    fallback: usize,
    ctx: &WorkerCtx,
) -> Result<usize, Vec<u8>> {
    let engine = &state.engine;
    let pos = match engine.position_of_wire(backend) {
        Some(pos) => pos,
        None => {
            ctx.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Err(protocol::encode_error(&format!(
                "backend {backend} not served"
            )));
        }
    };
    if !state.is_quarantined(pos) {
        return Ok(pos);
    }
    if !ctx.failover {
        return Err(protocol::encode_quarantined(&format!(
            "backend {backend} is quarantined by the oracle auditor and failover is disabled"
        )));
    }
    let next = engine
        .position_of_wire(BackendKind::Ch.wire_id())
        .filter(|&p| p != pos && !state.is_quarantined(p))
        .or_else(|| {
            engine
                .position_of_wire(BackendKind::Dijkstra.wire_id())
                .filter(|&p| p != pos && !state.is_quarantined(p))
        })
        .unwrap_or(fallback);
    ctx.stats
        .quarantine_failovers
        .fetch_add(1, Ordering::Relaxed);
    Ok(next)
}

fn handle_request(
    payload: &[u8],
    state: &EpochState,
    sessions: &mut [Box<dyn Session + '_>],
    fallback: usize,
    scratch: &mut Scratch,
    ctx: &WorkerCtx,
) -> Vec<u8> {
    let stats = &ctx.stats;
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(msg) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            // Undecodable frames land in the shared op-indexed tables
            // (final wire slot, op "other") — the same accounting path
            // as every real query, not a side channel.
            stats.record(wire_slot(u8::MAX), Op::Other, 0, 0);
            return protocol::encode_error(&msg);
        }
    };
    let engine = &state.engine;
    let n = engine.net().num_nodes() as u32;
    let check_range = |vs: &mut dyn Iterator<Item = u32>| -> Result<(), Vec<u8>> {
        for v in vs {
            if v >= n {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Err(protocol::encode_error(&format!(
                    "vertex out of range (network has {n} vertices)"
                )));
            }
        }
        Ok(())
    };
    let response = match request {
        Request::Ping => protocol::encode_text_response("pong"),
        Request::Stats => protocol::encode_text_response(&render_status(state, stats, &ctx.cache)),
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            protocol::encode_empty_response()
        }
        Request::Reload => {
            if !ctx.has_reload_source {
                protocol::encode_reload_failed(
                    "no reload source configured (start with --reload-file or a reload factory)",
                )
            } else {
                // Blocks this worker until the attempt completes; the
                // registry coalesces concurrent requests into one
                // rebuild, and shutdown cancels the wait.
                match ctx
                    .registry
                    .reload_and_wait(ctx.reload_timeout, &ctx.shutdown)
                {
                    Ok(epoch) => protocol::encode_text_response(&format!("epoch={epoch}")),
                    Err(reason) => protocol::encode_reload_failed(&reason),
                }
            }
        }
        Request::Distance {
            backend,
            s,
            t,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s, t].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            let d = match ctx.cache.get(state.epoch, backend, s, t) {
                Some(cached) => cached,
                None => {
                    sessions[pos].set_budget(request_budget(deadline_ms, ctx));
                    let d = sessions[pos].distance(s, t);
                    if sessions[pos].interrupted() {
                        // An interrupted None is an abort, not an
                        // answer: never cache it, never report it as
                        // "unreachable".
                        return interrupted_response(ctx);
                    }
                    // Re-checked at insert time: if the auditor
                    // quarantined this position while the query ran,
                    // its answer must not outlive the purge.
                    if !state.is_quarantined(pos) {
                        ctx.cache.insert(state.epoch, backend, s, t, d);
                    }
                    d
                }
            };
            stats.record(
                wire_slot(backend),
                Op::Distance,
                t0.elapsed().as_nanos() as u64,
                1,
            );
            protocol::encode_distance_response(d)
        }
        Request::Path {
            backend,
            s,
            t,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s, t].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            let p = sessions[pos].shortest_path(s, t);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(
                wire_slot(backend),
                Op::Path,
                t0.elapsed().as_nanos() as u64,
                1,
            );
            protocol::encode_path_response(p)
        }
        Request::Distances {
            backend,
            sources,
            targets,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut sources.iter().chain(targets.iter()).copied()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].distances(&sources, &targets, &mut scratch.batch);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            let pairs = (sources.len() * targets.len()) as u64;
            stats.record(
                wire_slot(backend),
                Op::Batch,
                t0.elapsed().as_nanos() as u64,
                pairs,
            );
            protocol::encode_distances_response(&scratch.batch)
        }
        Request::OneToMany {
            backend,
            s,
            targets,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s].into_iter().chain(targets.iter().copied())) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].one_to_many(s, &targets, &mut scratch.batch);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(
                wire_slot(backend),
                Op::OneToMany,
                t0.elapsed().as_nanos() as u64,
                targets.len() as u64,
            );
            protocol::encode_distances_response(&scratch.batch)
        }
        Request::Knn {
            backend,
            s,
            k,
            poi,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s].into_iter()) {
                return resp;
            }
            // The epoch's registry resolves the name so every session —
            // including the index-free quarantine fallback, which
            // brute-forces over the set — answers the same queries.
            let Some(entry) = engine.poi_set(&poi) else {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!("unknown POI set '{poi}'"));
            };
            let poi_ref = spq_graph::backend::PoiRef {
                name: entry.set.name(),
                nodes: entry.set.nodes(),
            };
            if (k as usize).min(entry.set.len()) > protocol::MAX_RESULT_ENTRIES {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!(
                    "kNN result of {k} entries exceeds the response limit"
                ));
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            sessions[pos].knn(s, k as usize, poi_ref, &mut scratch.entries);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            stats.record(
                wire_slot(backend),
                Op::Knn,
                t0.elapsed().as_nanos() as u64,
                scratch.entries.len() as u64,
            );
            protocol::encode_nodes_dists_response(&scratch.entries)
        }
        Request::Range {
            backend,
            s,
            limit,
            deadline_ms,
        } => {
            let pos = match resolve_serving(backend, state, fallback, ctx) {
                Ok(pos) => pos,
                Err(resp) => return resp,
            };
            if let Err(resp) = check_range(&mut [s].into_iter()) {
                return resp;
            }
            let t0 = Instant::now();
            sessions[pos].set_budget(request_budget(deadline_ms, ctx));
            let supported = sessions[pos].range(s, limit, &mut scratch.entries);
            if sessions[pos].interrupted() {
                return interrupted_response(ctx);
            }
            if !supported {
                return protocol::encode_error(&format!(
                    "backend {backend} does not serve range queries"
                ));
            }
            if scratch.entries.len() > protocol::MAX_RESULT_ENTRIES {
                return protocol::encode_error(&format!(
                    "range result of {} vertices exceeds the response limit; lower the limit",
                    scratch.entries.len()
                ));
            }
            stats.record(
                wire_slot(backend),
                Op::Range,
                t0.elapsed().as_nanos() as u64,
                scratch.entries.len() as u64,
            );
            protocol::encode_nodes_dists_response(&scratch.entries)
        }
    };
    response
}
