//! The TCP query server: a fixed worker pool over the engine.
//!
//! Architecture (std-only, no async runtime):
//!
//! * An **acceptor** thread owns the (non-blocking) listener and hands
//!   accepted connections to the pool through an mpsc channel.
//! * `workers` **worker** threads each own one reusable query session
//!   per backend — created once, reused for every request the worker
//!   ever serves, so the per-query hot path performs no allocation
//!   beyond what the technique itself needs. A worker serves one
//!   connection at a time, frame by frame; idle workers block on the
//!   channel. With more concurrent connections than workers, the excess
//!   queues in the channel (bounded fairness is the client's problem —
//!   this mirrors a fixed-size thread-per-connection deployment).
//! * **Shutdown** is cooperative: a `SHUTDOWN` frame or a delivered
//!   SIGTERM/SIGINT flips a flag that the acceptor polls between
//!   accepts and the workers poll between frames (reads use a short
//!   timeout so a quiet connection cannot pin a worker). In-flight
//!   requests finish and get their response before the connection
//!   closes.
//!
//! Per-request flow: decode → resolve backend → consult the sharded
//! distance cache (DISTANCE only) → run the session → cache + record
//! latency → respond. Dense DISTANCES batches reach CH's bucket-based
//! many-to-many through the `Session::distances` override.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spq_graph::backend::Session;

use crate::cache::DistanceCache;
use crate::protocol::{self, Request};
use crate::stats::{Op, ServerStats};
use crate::Engine;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (also the maximum number of concurrently served
    /// connections).
    pub workers: usize,
    /// Total distance-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Socket read timeout; bounds how long a quiet connection delays
    /// shutdown.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .max(2),
            cache_capacity: 1 << 16,
            cache_shards: 16,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// Process-wide flag flipped by SIGTERM/SIGINT (see
/// [`install_signal_handlers`]); polled alongside each server's own
/// shutdown flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that request a graceful
/// shutdown of every server in the process. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // libc is always linked on Unix; declaring `signal` directly
        // avoids a dependency for two syscalls.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// Whether a delivered signal has requested shutdown.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// A running server. Dropping it without [`Server::join`] detaches the
/// threads; the intended lifecycle is `start` → (traffic) →
/// `request_shutdown` (or SIGTERM / a SHUTDOWN frame) → `join`.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    engine: Arc<Engine>,
    stats: Arc<ServerStats>,
    cache: Arc<DistanceCache>,
}

impl Server {
    /// Binds and starts accepting. The engine should already be
    /// self-checked (see [`Engine::self_check`]).
    pub fn start(engine: Arc<Engine>, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::new(engine.backends().len()));
        let cache = Arc::new(DistanceCache::new(cfg.cache_capacity, cfg.cache_shards));

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            let rx = Arc::clone(&rx);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let cache = Arc::clone(&cache);
            let read_timeout = cfg.read_timeout;
            workers.push(std::thread::spawn(move || {
                worker_loop(&engine, &rx, &shutdown, &stats, &cache, read_timeout)
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || accept_loop(listener, tx, &shutdown, &stats))
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            engine,
            stats,
            cache,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by any path).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signalled()
    }

    /// Renders the current observability snapshot.
    pub fn stats_text(&self) -> String {
        self.stats
            .render(&self.engine.backend_names(), &self.cache.stats())
    }

    /// Waits for every thread to finish (requires shutdown to have been
    /// requested via flag, frame, or signal) and returns the final
    /// stats dump.
    pub fn join(mut self) -> String {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats_text()
    }
}

fn stopping(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst) || signalled()
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    while !stopping(shutdown) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if tx.send(stream).is_err() {
                    break; // every worker is gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here lets idle workers observe the disconnect.
}

fn worker_loop(
    engine: &Engine,
    rx: &Mutex<Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    cache: &DistanceCache,
    read_timeout: Duration,
) {
    // One reusable session per backend for this worker's whole life —
    // this is what keeps the per-request path allocation-free.
    let mut sessions: Vec<Box<dyn Session + '_>> = engine
        .backends()
        .iter()
        .map(|b| b.backend.session(engine.net()))
        .collect();
    let mut scratch = Scratch::default();
    loop {
        let stream = {
            let guard = rx.lock().unwrap();
            match guard.recv_timeout(Duration::from_millis(50)) {
                Ok(stream) => stream,
                Err(RecvTimeoutError::Timeout) => {
                    if stopping(shutdown) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let _ = serve_connection(
            stream,
            engine,
            &mut sessions,
            &mut scratch,
            shutdown,
            stats,
            cache,
            read_timeout,
        );
        if stopping(shutdown) {
            return;
        }
    }
}

/// Reusable per-worker buffers.
#[derive(Default)]
struct Scratch {
    frame: Vec<u8>,
    batch: Vec<Option<spq_graph::types::Dist>>,
}

/// Outcome of an interruptible exact read.
enum ReadOutcome {
    /// The buffer was filled.
    Filled,
    /// Clean EOF before the first byte.
    Eof,
    /// Shutdown was requested while idle (no partial frame pending).
    Stopped,
}

/// `read_exact` that tolerates the read timeout: timeouts poll the
/// shutdown flag and retry, preserving stream framing across retries.
/// A timeout mid-frame keeps waiting (the frame's sender is mid-write);
/// only an idle boundary reacts to shutdown.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_frame_boundary: bool,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_frame_boundary {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 && at_frame_boundary && stopping(shutdown) {
                    return Ok(ReadOutcome::Stopped);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: TcpStream,
    engine: &Engine,
    sessions: &mut [Box<dyn Session + '_>],
    scratch: &mut Scratch,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    cache: &DistanceCache,
    read_timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    loop {
        let mut header = [0u8; 4];
        match read_exact_interruptible(&mut stream, &mut header, shutdown, true)? {
            ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
            ReadOutcome::Filled => {}
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > protocol::MAX_FRAME {
            // Unrecoverable: framing is lost. Answer and drop the link.
            let resp = protocol::encode_error("frame exceeds the size limit");
            protocol::write_frame(&mut stream, &resp)?;
            return Ok(());
        }
        // A frame header was read, so its payload must follow; shutdown
        // waits for it. The buffer is taken out of the scratch so the
        // payload can be read by `handle_request` while the scratch's
        // batch buffer stays writable.
        let mut payload = std::mem::take(&mut scratch.frame);
        payload.resize(len, 0);
        match read_exact_interruptible(&mut stream, &mut payload, shutdown, false)? {
            ReadOutcome::Filled => {}
            ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
        }

        stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = handle_request(&payload, engine, sessions, scratch, shutdown, stats, cache);
        scratch.frame = payload;
        protocol::write_frame(&mut stream, &response)?;
        if stopping(shutdown) {
            return Ok(()); // graceful: last response delivered, then close
        }
    }
}

fn handle_request(
    payload: &[u8],
    engine: &Engine,
    sessions: &mut [Box<dyn Session + '_>],
    scratch: &mut Scratch,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    cache: &DistanceCache,
) -> Vec<u8> {
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(msg) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return protocol::encode_error(&msg);
        }
    };
    let n = engine.net().num_nodes() as u32;
    match request {
        Request::Ping => protocol::encode_text_response("pong"),
        Request::Stats => {
            protocol::encode_text_response(&stats.render(&engine.backend_names(), &cache.stats()))
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            protocol::encode_empty_response()
        }
        Request::Distance { backend, s, t } => {
            let Some(pos) = engine.position_of_wire(backend) else {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!("backend {backend} not served"));
            };
            if s >= n || t >= n {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!(
                    "vertex out of range (network has {n} vertices)"
                ));
            }
            let t0 = Instant::now();
            let d = match cache.get(backend, s, t) {
                Some(cached) => cached,
                None => {
                    let d = sessions[pos].distance(s, t);
                    cache.insert(backend, s, t, d);
                    d
                }
            };
            stats.record(pos, Op::Distance, t0.elapsed().as_nanos() as u64, 1);
            protocol::encode_distance_response(d)
        }
        Request::Path { backend, s, t } => {
            let Some(pos) = engine.position_of_wire(backend) else {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!("backend {backend} not served"));
            };
            if s >= n || t >= n {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!(
                    "vertex out of range (network has {n} vertices)"
                ));
            }
            let t0 = Instant::now();
            let p = sessions[pos].shortest_path(s, t);
            stats.record(pos, Op::Path, t0.elapsed().as_nanos() as u64, 1);
            protocol::encode_path_response(p)
        }
        Request::Distances {
            backend,
            sources,
            targets,
        } => {
            let Some(pos) = engine.position_of_wire(backend) else {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!("backend {backend} not served"));
            };
            if sources.iter().chain(targets.iter()).any(|&v| v >= n) {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return protocol::encode_error(&format!(
                    "vertex out of range (network has {n} vertices)"
                ));
            }
            let t0 = Instant::now();
            sessions[pos].distances(&sources, &targets, &mut scratch.batch);
            let pairs = (sources.len() * targets.len()) as u64;
            stats.record(pos, Op::Batch, t0.elapsed().as_nanos() as u64, pairs);
            protocol::encode_distances_response(&scratch.batch)
        }
    }
}
