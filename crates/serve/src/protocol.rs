//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! u32 LE payload length | payload (≤ 16 MiB)
//! ```
//!
//! Request payloads start with an opcode byte; query opcodes (every
//! opcode below with operands) follow it with a backend byte, the rest
//! have no further operands:
//!
//! | opcode | name      | operands                                     |
//! |--------|-----------|----------------------------------------------|
//! | 0      | PING        | —                                           |
//! | 1      | DISTANCE    | `s: u32, t: u32`                            |
//! | 2      | PATH        | `s: u32, t: u32`                            |
//! | 3      | DISTANCES   | `ns: u32, nt: u32, ns × u32, nt × u32`      |
//! | 4      | STATS       | —                                           |
//! | 5      | SHUTDOWN    | —                                           |
//! | 6      | RELOAD      | —                                           |
//! | 7      | ONE_TO_MANY | `s: u32, m: u32, m × u32`                   |
//! | 8      | KNN         | `s: u32, k: u32, nlen: u8, nlen name bytes` |
//! | 9      | RANGE       | `s: u32, limit: u64`                        |
//!
//! Every backend-bearing query opcode may carry an optional trailing
//! `deadline_ms: u32` (encoded only when nonzero, so the deadline-free
//! encodings are byte-identical to the pre-deadline protocol): the
//! server abandons the query once that many milliseconds have elapsed
//! and answers `DEADLINE_EXCEEDED`. A KNN request names a POI set
//! registered with the serving epoch (`nlen` bytes of UTF-8).
//!
//! Response payloads start with a status byte. `0` = OK; every other
//! status is followed by a UTF-8 message:
//!
//! | status | name              | meaning                                  |
//! |--------|-------------------|------------------------------------------|
//! | 0      | OK                | opcode-specific body follows             |
//! | 1      | ERROR             | malformed or unanswerable request        |
//! | 2      | BUSY              | overloaded — shed; retry with backoff    |
//! | 3      | DEADLINE_EXCEEDED | the request's deadline expired mid-query |
//! | 4      | INDEX_INVALID     | backend's index failed validation        |
//! | 5      | RELOAD_FAILED     | reload rejected; old epoch keeps serving |
//! | 6      | QUARANTINED       | backend quarantined by the auditor       |
//!
//! A RELOAD request triggers an off-thread load + validation of the
//! operator-staged replacement index set; the response arrives only
//! after the outcome is known. Its OK body is the UTF-8 text
//! `epoch=<N>` naming the newly published epoch — every request read
//! from the wire after that response was sent is answered by the new
//! epoch.
//!
//! OK bodies: distances are `u64` LE with [`UNREACHABLE`] (`u64::MAX`)
//! as the "no path" sentinel — real distances never collide with it
//! because the workspace caps them below [`spq_graph::types::INFINITY`]
//! (`u64::MAX / 2`). A PATH body is `dist: u64, len: u32, len × u32`
//! (`len = 0` and `dist = UNREACHABLE` when unreachable); a DISTANCES
//! body is the row-major `ns × nt` table of `u64`s; an ONE_TO_MANY body
//! is the `m × u64` distance row in target order; KNN and RANGE share
//! one body shape, `count: u32, count × (vertex: u32, dist: u64)` —
//! kNN sorted by `(dist, vertex)`, range ascending by vertex; STATS
//! and PING bodies are UTF-8 text.

use std::io::{self, Read, Write};

use spq_graph::types::{Dist, NodeId};

/// Hard cap on one frame's payload, guarding the server against
/// malicious or corrupt length prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Hard cap on `ns × nt` of one DISTANCES request, and on the target
/// count of one ONE_TO_MANY request.
pub const MAX_BATCH_PAIRS: usize = 1 << 20;

/// Hard cap on the entries one KNN/RANGE response carries. 2^20 entries
/// at 12 bytes each stay comfortably inside [`MAX_FRAME`]; a range
/// query whose result would exceed this is answered with ERROR rather
/// than a silently truncated vertex list.
pub const MAX_RESULT_ENTRIES: usize = 1 << 20;

/// Wire sentinel for "unreachable" (distinct from every real distance).
pub const UNREACHABLE: u64 = u64::MAX;

/// Response status byte: success.
pub const STATUS_OK: u8 = 0;
/// Response status byte: request-level failure (body = UTF-8 message).
pub const STATUS_ERROR: u8 = 1;
/// Response status byte: the server is overloaded and shed this
/// request before queueing it (body = UTF-8 message). Retryable.
pub const STATUS_BUSY: u8 = 2;
/// Response status byte: the request's deadline expired before the
/// query finished (body = UTF-8 message). Not retryable as-is.
pub const STATUS_DEADLINE_EXCEEDED: u8 = 3;
/// Response status byte: the requested backend's index failed
/// integrity validation and no substitute is serving its wire id
/// (body = UTF-8 message).
pub const STATUS_INDEX_INVALID: u8 = 4;
/// Response status byte: a requested index reload was rejected before
/// publication — the previous epoch keeps serving (body = UTF-8
/// message with the typed reason).
pub const STATUS_RELOAD_FAILED: u8 = 5;
/// Response status byte: the requested backend has been quarantined by
/// the continuous oracle audit and automatic failover is disabled
/// (body = UTF-8 message).
pub const STATUS_QUARANTINED: u8 = 6;

/// Opcode bytes.
pub mod op {
    /// Liveness probe.
    pub const PING: u8 = 0;
    /// Point-to-point distance query.
    pub const DISTANCE: u8 = 1;
    /// Point-to-point shortest-path query.
    pub const PATH: u8 = 2;
    /// Batched (many-to-many) distance query.
    pub const DISTANCES: u8 = 3;
    /// Observability snapshot.
    pub const STATS: u8 = 4;
    /// Graceful server shutdown.
    pub const SHUTDOWN: u8 = 5;
    /// Hot index reload: load, validate, and atomically publish the
    /// staged replacement index set as a new epoch.
    pub const RELOAD: u8 = 6;
    /// One-to-many distance query (one source, a flat target list).
    pub const ONE_TO_MANY: u8 = 7;
    /// k-nearest-neighbour query over a registered POI set.
    pub const KNN: u8 = 8;
    /// Network range query (every vertex within a distance limit).
    pub const RANGE: u8 = 9;
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with an OK text body.
    Ping,
    /// Distance query against one backend.
    Distance {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Target vertex.
        t: NodeId,
        /// Per-request deadline in milliseconds; 0 = none.
        deadline_ms: u32,
    },
    /// Shortest-path query against one backend.
    Path {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Target vertex.
        t: NodeId,
        /// Per-request deadline in milliseconds; 0 = none.
        deadline_ms: u32,
    },
    /// Batched sources × targets distance table.
    Distances {
        /// Backend wire id.
        backend: u8,
        /// Batch sources.
        sources: Vec<NodeId>,
        /// Batch targets.
        targets: Vec<NodeId>,
        /// Per-request deadline in milliseconds; 0 = none.
        deadline_ms: u32,
    },
    /// One source against a flat target list.
    OneToMany {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Targets, answered in order.
        targets: Vec<NodeId>,
        /// Per-request deadline in milliseconds; 0 = none.
        deadline_ms: u32,
    },
    /// k nearest members of a registered POI set.
    Knn {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Number of neighbours requested.
        k: u32,
        /// Name of the POI set registered with the serving epoch.
        poi: String,
        /// Per-request deadline in milliseconds; 0 = none.
        deadline_ms: u32,
    },
    /// Every vertex within `limit` of the source.
    Range {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Distance limit (inclusive).
        limit: Dist,
        /// Per-request deadline in milliseconds; 0 = none.
        deadline_ms: u32,
    },
    /// Observability snapshot.
    Stats,
    /// Graceful shutdown request.
    Shutdown,
    /// Hot index reload request.
    Reload,
}

impl Request {
    /// Serialises the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(op::PING),
            Request::Distance {
                backend,
                s,
                t,
                deadline_ms,
            }
            | Request::Path {
                backend,
                s,
                t,
                deadline_ms,
            } => {
                let opcode = if matches!(self, Request::Distance { .. }) {
                    op::DISTANCE
                } else {
                    op::PATH
                };
                out.extend_from_slice(&[opcode, *backend]);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
                // Trailing deadline only when set: the deadline-free
                // encoding stays byte-identical to the old protocol.
                if *deadline_ms != 0 {
                    out.extend_from_slice(&deadline_ms.to_le_bytes());
                }
            }
            Request::Distances {
                backend,
                sources,
                targets,
                deadline_ms,
            } => {
                out.extend_from_slice(&[op::DISTANCES, *backend]);
                out.extend_from_slice(&(sources.len() as u32).to_le_bytes());
                out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
                for v in sources.iter().chain(targets.iter()) {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                if *deadline_ms != 0 {
                    out.extend_from_slice(&deadline_ms.to_le_bytes());
                }
            }
            Request::OneToMany {
                backend,
                s,
                targets,
                deadline_ms,
            } => {
                out.extend_from_slice(&[op::ONE_TO_MANY, *backend]);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
                for v in targets {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                if *deadline_ms != 0 {
                    out.extend_from_slice(&deadline_ms.to_le_bytes());
                }
            }
            Request::Knn {
                backend,
                s,
                k,
                poi,
                deadline_ms,
            } => {
                debug_assert!(poi.len() <= u8::MAX as usize);
                out.extend_from_slice(&[op::KNN, *backend]);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.push(poi.len() as u8);
                out.extend_from_slice(poi.as_bytes());
                if *deadline_ms != 0 {
                    out.extend_from_slice(&deadline_ms.to_le_bytes());
                }
            }
            Request::Range {
                backend,
                s,
                limit,
                deadline_ms,
            } => {
                out.extend_from_slice(&[op::RANGE, *backend]);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&limit.to_le_bytes());
                if *deadline_ms != 0 {
                    out.extend_from_slice(&deadline_ms.to_le_bytes());
                }
            }
            Request::Stats => out.push(op::STATS),
            Request::Shutdown => out.push(op::SHUTDOWN),
            Request::Reload => out.push(op::RELOAD),
        }
        out
    }

    /// Parses a frame payload. Errors describe the defect for the
    /// error-response body.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8()?;
        let req = match opcode {
            op::PING => Request::Ping,
            op::DISTANCE | op::PATH => {
                let backend = c.u8()?;
                let s = c.u32()?;
                let t = c.u32()?;
                let deadline_ms = if c.at_end() { 0 } else { c.u32()? };
                if opcode == op::DISTANCE {
                    Request::Distance {
                        backend,
                        s,
                        t,
                        deadline_ms,
                    }
                } else {
                    Request::Path {
                        backend,
                        s,
                        t,
                        deadline_ms,
                    }
                }
            }
            op::DISTANCES => {
                let backend = c.u8()?;
                let ns = c.u32()? as usize;
                let nt = c.u32()? as usize;
                if ns == 0 || nt == 0 {
                    return Err("empty batch".into());
                }
                if ns.saturating_mul(nt) > MAX_BATCH_PAIRS {
                    return Err(format!("batch of {ns}x{nt} pairs exceeds the limit"));
                }
                // Never size an allocation from the claimed counts
                // alone: a 20-byte frame could otherwise claim 2^20
                // vertices and make the server allocate 4 MiB per
                // request. The payload must already hold the bytes.
                if c.remaining() < (ns + nt) * 4 {
                    return Err(format!(
                        "batch header claims {ns}+{nt} vertices but only {} payload bytes follow",
                        c.remaining()
                    ));
                }
                let mut sources = Vec::with_capacity(ns);
                for _ in 0..ns {
                    sources.push(c.u32()?);
                }
                let mut targets = Vec::with_capacity(nt);
                for _ in 0..nt {
                    targets.push(c.u32()?);
                }
                let deadline_ms = if c.at_end() { 0 } else { c.u32()? };
                Request::Distances {
                    backend,
                    sources,
                    targets,
                    deadline_ms,
                }
            }
            op::ONE_TO_MANY => {
                let backend = c.u8()?;
                let s = c.u32()?;
                let m = c.u32()? as usize;
                if m == 0 {
                    return Err("empty target list".into());
                }
                if m > MAX_BATCH_PAIRS {
                    return Err(format!("one-to-many of {m} targets exceeds the limit"));
                }
                // Same discipline as DISTANCES: the payload must hold
                // the claimed bytes before anything is allocated.
                if c.remaining() < m * 4 {
                    return Err(format!(
                        "one-to-many header claims {m} targets but only {} payload bytes follow",
                        c.remaining()
                    ));
                }
                let mut targets = Vec::with_capacity(m);
                for _ in 0..m {
                    targets.push(c.u32()?);
                }
                let deadline_ms = if c.at_end() { 0 } else { c.u32()? };
                Request::OneToMany {
                    backend,
                    s,
                    targets,
                    deadline_ms,
                }
            }
            op::KNN => {
                let backend = c.u8()?;
                let s = c.u32()?;
                let k = c.u32()?;
                // Same discipline as the batch ops: an absurd k is a
                // typed error at decode time, before any session runs
                // or any result buffer is sized from it.
                if k as usize > MAX_RESULT_ENTRIES {
                    return Err(format!("kNN k of {k} exceeds the response limit"));
                }
                let nlen = c.u8()? as usize;
                let poi = std::str::from_utf8(c.take(nlen)?)
                    .map_err(|_| "POI name is not UTF-8".to_string())?
                    .to_string();
                let deadline_ms = if c.at_end() { 0 } else { c.u32()? };
                Request::Knn {
                    backend,
                    s,
                    k,
                    poi,
                    deadline_ms,
                }
            }
            op::RANGE => {
                let backend = c.u8()?;
                let s = c.u32()?;
                let limit = c.u64()?;
                // u64::MAX is the UNREACHABLE sentinel: as a radius it
                // would ask for every reachable vertex, so it is
                // rejected before the traversal starts rather than
                // after MAX_RESULT_ENTRIES have been collected.
                if limit == u64::MAX {
                    return Err(
                        "range radius u64::MAX is unbounded; pass a finite radius".to_string()
                    );
                }
                let deadline_ms = if c.at_end() { 0 } else { c.u32()? };
                Request::Range {
                    backend,
                    s,
                    limit,
                    deadline_ms,
                }
            }
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            op::RELOAD => Request::Reload,
            other => return Err(format!("unknown opcode {other}")),
        };
        if !c.at_end() {
            return Err("trailing bytes after request".into());
        }
        Ok(req)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "oversized outgoing frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame into `buf`. Returns `false` on clean EOF (no bytes
/// of a next frame read yet).
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    read_frame_limited(r, buf, MAX_FRAME)
}

/// [`read_frame`] with a caller-chosen payload cap. The length prefix
/// is validated against `max_frame` *before* any allocation, so a
/// frame claiming 4 GiB costs four header bytes, not 4 GiB of memory.
pub fn read_frame_limited(
    r: &mut impl Read,
    buf: &mut Vec<u8>,
    max_frame: usize,
) -> io::Result<bool> {
    let mut header = [0u8; 4];
    match r.read(&mut header) {
        Ok(0) => return Ok(false),
        Ok(n) => r.read_exact(&mut header[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// OK response carrying a UTF-8 body (PING, STATS).
pub fn encode_text_response(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + text.len());
    out.push(STATUS_OK);
    out.extend_from_slice(text.as_bytes());
    out
}

/// OK response with no body (SHUTDOWN).
pub fn encode_empty_response() -> Vec<u8> {
    vec![STATUS_OK]
}

/// Error response.
pub fn encode_error(msg: &str) -> Vec<u8> {
    encode_status(STATUS_ERROR, msg)
}

/// Response with an explicit status byte and a UTF-8 message body
/// (used for every non-OK status).
pub fn encode_status(status: u8, msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(status);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// BUSY response: the server shed this request under overload.
pub fn encode_busy(msg: &str) -> Vec<u8> {
    encode_status(STATUS_BUSY, msg)
}

/// DEADLINE_EXCEEDED response: the query was abandoned at its deadline.
pub fn encode_deadline_exceeded(msg: &str) -> Vec<u8> {
    encode_status(STATUS_DEADLINE_EXCEEDED, msg)
}

/// INDEX_INVALID response: the backend's index failed validation.
pub fn encode_index_invalid(msg: &str) -> Vec<u8> {
    encode_status(STATUS_INDEX_INVALID, msg)
}

/// RELOAD_FAILED response: the staged index was rejected and the old
/// epoch keeps serving.
pub fn encode_reload_failed(msg: &str) -> Vec<u8> {
    encode_status(STATUS_RELOAD_FAILED, msg)
}

/// QUARANTINED response: the backend was quarantined by the auditor
/// and failover is disabled.
pub fn encode_quarantined(msg: &str) -> Vec<u8> {
    encode_status(STATUS_QUARANTINED, msg)
}

/// Encodes one distance (DISTANCE response body).
pub fn encode_distance_response(d: Option<Dist>) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(STATUS_OK);
    out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes());
    out
}

/// Encodes a shortest path (PATH response body).
pub fn encode_path_response(p: Option<(Dist, Vec<NodeId>)>) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(STATUS_OK);
    match p {
        None => {
            out.extend_from_slice(&UNREACHABLE.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Some((d, path)) => {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            for v in &path {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Encodes a row-major distance table (DISTANCES response body).
pub fn encode_distances_response(table: &[Option<Dist>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 * table.len());
    out.push(STATUS_OK);
    for d in table {
        out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes());
    }
    out
}

/// Encodes a `(vertex, distance)` list (KNN and RANGE response body):
/// `count: u32` followed by `count × (u32, u64)` pairs, in the order
/// given.
pub fn encode_nodes_dists_response(entries: &[(NodeId, Dist)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + 12 * entries.len());
    out.push(STATUS_OK);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for &(v, d) in entries {
        out.extend_from_slice(&v.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

/// A bounds-checked little-endian reader over a payload.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err("truncated message".into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads the remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Ping,
            Request::Distance {
                backend: 1,
                s: 7,
                t: 9,
                deadline_ms: 0,
            },
            Request::Distance {
                backend: 1,
                s: 7,
                t: 9,
                deadline_ms: 250,
            },
            Request::Path {
                backend: 3,
                s: 0,
                t: u32::MAX - 1,
                deadline_ms: 0,
            },
            Request::Path {
                backend: 3,
                s: 0,
                t: 1,
                deadline_ms: u32::MAX,
            },
            Request::Distances {
                backend: 0,
                sources: vec![1, 2, 3],
                targets: vec![4, 5],
                deadline_ms: 0,
            },
            Request::Distances {
                backend: 0,
                sources: vec![1, 2, 3],
                targets: vec![4, 5],
                deadline_ms: 1000,
            },
            Request::OneToMany {
                backend: 2,
                s: 11,
                targets: vec![0, 5, 5, u32::MAX],
                deadline_ms: 0,
            },
            Request::OneToMany {
                backend: 2,
                s: 11,
                targets: vec![9],
                deadline_ms: 40,
            },
            Request::Knn {
                backend: 1,
                s: 3,
                k: 8,
                poi: "fuel".into(),
                deadline_ms: 0,
            },
            Request::Knn {
                backend: 1,
                s: 3,
                k: 0,
                poi: String::new(),
                deadline_ms: 17,
            },
            Request::Range {
                backend: 0,
                s: 42,
                limit: u64::MAX / 3,
                deadline_ms: 0,
            },
            Request::Range {
                backend: 0,
                s: 42,
                limit: 0,
                deadline_ms: 9,
            },
            Request::Stats,
            Request::Shutdown,
            Request::Reload,
        ];
        for req in cases {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).as_ref(), Ok(&req), "{req:?}");
        }
        // Backend-less requests are exactly one opcode byte on the wire,
        // as the protocol table documents — foreign clients rely on it.
        assert_eq!(Request::Ping.encode(), vec![op::PING]);
        assert_eq!(Request::Stats.encode(), vec![op::STATS]);
        assert_eq!(Request::Shutdown.encode(), vec![op::SHUTDOWN]);
        assert_eq!(Request::Reload.encode(), vec![op::RELOAD]);
        assert_eq!(Request::decode(&[op::PING]), Ok(Request::Ping));
        assert_eq!(Request::decode(&[op::RELOAD]), Ok(Request::Reload));
    }

    #[test]
    fn deadline_free_encoding_matches_the_old_protocol() {
        // Pre-deadline clients encode DISTANCE as exactly 10 bytes;
        // they must keep decoding, and deadline-free requests must keep
        // producing the identical bytes.
        let req = Request::Distance {
            backend: 1,
            s: 7,
            t: 9,
            deadline_ms: 0,
        };
        let mut old = vec![op::DISTANCE, 1];
        old.extend_from_slice(&7u32.to_le_bytes());
        old.extend_from_slice(&9u32.to_le_bytes());
        assert_eq!(req.encode(), old);
        assert_eq!(Request::decode(&old), Ok(req));
    }

    #[test]
    fn batch_header_cannot_force_oversized_allocations() {
        // 20-byte frame claiming 2^20 sources: must be rejected by the
        // payload-size check before any Vec::with_capacity(2^20).
        let mut huge = vec![op::DISTANCES, 0];
        huge.extend_from_slice(&(1u32 << 20).to_le_bytes());
        huge.extend_from_slice(&1u32.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes()); // a lone "vertex"
        let err = Request::decode(&huge).unwrap_err();
        assert!(err.contains("payload bytes"), "got: {err}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99, 0]).is_err(), "unknown opcode");
        assert!(Request::decode(&[op::DISTANCE, 0, 1, 2]).is_err(), "short");
        let mut trailing = Request::Ping.encode();
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err(), "trailing bytes");
        // Oversized batch header.
        let mut huge = vec![op::DISTANCES, 0];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&huge).is_err());
    }

    #[test]
    fn one_to_many_header_cannot_force_oversized_allocations() {
        // A 14-byte frame claiming 2^20 targets must be rejected by the
        // payload-size check before any allocation happens.
        let mut huge = vec![op::ONE_TO_MANY, 0];
        huge.extend_from_slice(&0u32.to_le_bytes());
        huge.extend_from_slice(&(1u32 << 20).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes()); // a lone "target"
        let err = Request::decode(&huge).unwrap_err();
        assert!(err.contains("payload bytes"), "got: {err}");
        // Over the hard cap entirely.
        let mut over = vec![op::ONE_TO_MANY, 0];
        over.extend_from_slice(&0u32.to_le_bytes());
        over.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&over).is_err());
        // Empty target list.
        let mut empty = vec![op::ONE_TO_MANY, 0];
        empty.extend_from_slice(&0u32.to_le_bytes());
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(Request::decode(&empty).unwrap_err(), "empty target list");
    }

    #[test]
    fn knn_name_is_validated() {
        // Name length claiming more bytes than the payload holds.
        let mut short = vec![op::KNN, 0];
        short.extend_from_slice(&1u32.to_le_bytes());
        short.extend_from_slice(&1u32.to_le_bytes());
        short.push(40); // claims 40 name bytes, none follow
        assert_eq!(Request::decode(&short).unwrap_err(), "truncated message");
        // Non-UTF-8 name bytes.
        let mut bad = vec![op::KNN, 0];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(2);
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(Request::decode(&bad).unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn absurd_knn_k_is_rejected_at_decode_time() {
        // k = u32::MAX claims ~4 billion result entries; the decoder
        // must refuse before any session or result buffer sees it.
        let mut req = vec![op::KNN, 0];
        req.extend_from_slice(&1u32.to_le_bytes());
        req.extend_from_slice(&u32::MAX.to_le_bytes());
        req.push(0);
        assert!(Request::decode(&req)
            .unwrap_err()
            .contains("exceeds the response limit"));
        // The largest admissible k still decodes.
        let mut ok = vec![op::KNN, 0];
        ok.extend_from_slice(&1u32.to_le_bytes());
        ok.extend_from_slice(&(MAX_RESULT_ENTRIES as u32).to_le_bytes());
        ok.push(0);
        assert!(Request::decode(&ok).is_ok());
    }

    #[test]
    fn unbounded_range_radius_is_rejected_at_decode_time() {
        // u64::MAX is the UNREACHABLE sentinel; as a radius it means
        // "everything reachable" and must be refused before traversal.
        let mut req = vec![op::RANGE, 0];
        req.extend_from_slice(&1u32.to_le_bytes());
        req.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Request::decode(&req).unwrap_err().contains("unbounded"));
        // Any finite radius — even MAX-1 — is the backend's problem,
        // bounded downstream by MAX_RESULT_ENTRIES.
        let mut ok = vec![op::RANGE, 0];
        ok.extend_from_slice(&1u32.to_le_bytes());
        ok.extend_from_slice(&(u64::MAX - 1).to_le_bytes());
        assert!(Request::decode(&ok).is_ok());
    }

    #[test]
    fn nodes_dists_response_layout_is_stable() {
        let body = encode_nodes_dists_response(&[(3, 10), (7, 25)]);
        let mut expect = vec![STATUS_OK];
        expect.extend_from_slice(&2u32.to_le_bytes());
        expect.extend_from_slice(&3u32.to_le_bytes());
        expect.extend_from_slice(&10u64.to_le_bytes());
        expect.extend_from_slice(&7u32.to_le_bytes());
        expect.extend_from_slice(&25u64.to_le_bytes());
        assert_eq!(body, expect);
        assert_eq!(encode_nodes_dists_response(&[]), {
            let mut e = vec![STATUS_OK];
            e.extend_from_slice(&0u32.to_le_bytes());
            e
        });
    }

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).is_err());
    }

    #[test]
    fn four_gib_claiming_frame_is_rejected_before_allocation() {
        // A length prefix of u32::MAX claims a ~4 GiB payload. The
        // reader must refuse from the four header bytes alone — the
        // buffer it was handed must not grow at all.
        let wire = u32::MAX.to_le_bytes();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).is_err());
        assert_eq!(buf.capacity(), 0, "rejection must precede allocation");
        // The same guard holds for a caller-tightened limit.
        let mut r = &wire[..];
        assert!(read_frame_limited(&mut r, &mut buf, 1024).is_err());
        assert_eq!(buf.capacity(), 0);
    }

    #[test]
    fn tightened_frame_limit_is_enforced() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let mut buf = Vec::new();
        let mut r = &wire[..];
        assert!(read_frame_limited(&mut r, &mut buf, 99).is_err());
        let mut r = &wire[..];
        assert!(read_frame_limited(&mut r, &mut buf, 100).unwrap());
        assert_eq!(buf.len(), 100);
    }

    #[test]
    fn status_encoders_prefix_the_right_byte() {
        assert_eq!(encode_busy("b")[0], STATUS_BUSY);
        assert_eq!(encode_deadline_exceeded("d")[0], STATUS_DEADLINE_EXCEEDED);
        assert_eq!(encode_index_invalid("i")[0], STATUS_INDEX_INVALID);
        assert_eq!(encode_reload_failed("r")[0], STATUS_RELOAD_FAILED);
        assert_eq!(encode_quarantined("q")[0], STATUS_QUARANTINED);
        assert_eq!(encode_error("e")[0], STATUS_ERROR);
        assert_eq!(&encode_busy("busy")[1..], b"busy");
    }
}
