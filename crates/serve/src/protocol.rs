//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! u32 LE payload length | payload (≤ 16 MiB)
//! ```
//!
//! Request payloads start with an opcode byte; backend-bearing opcodes
//! (DISTANCE, PATH, DISTANCES) follow it with a backend byte, the rest
//! have no further operands:
//!
//! | opcode | name      | operands                                     |
//! |--------|-----------|----------------------------------------------|
//! | 0      | PING      | —                                            |
//! | 1      | DISTANCE  | `s: u32, t: u32`                             |
//! | 2      | PATH      | `s: u32, t: u32`                             |
//! | 3      | DISTANCES | `ns: u32, nt: u32, ns × u32, nt × u32`       |
//! | 4      | STATS     | —                                            |
//! | 5      | SHUTDOWN  | —                                            |
//!
//! Response payloads start with a status byte (0 = OK, 1 = error). An
//! error is followed by a UTF-8 message; an OK by the opcode-specific
//! body. Distances are `u64` LE with [`UNREACHABLE`] (`u64::MAX`) as the
//! "no path" sentinel — real distances never collide with it because
//! the workspace caps them below [`spq_graph::types::INFINITY`]
//! (`u64::MAX / 2`). A PATH body is `dist: u64, len: u32, len × u32`
//! (`len = 0` and `dist = UNREACHABLE` when unreachable); a DISTANCES
//! body is the row-major `ns × nt` table of `u64`s; STATS and PING
//! bodies are UTF-8 text.

use std::io::{self, Read, Write};

use spq_graph::types::{Dist, NodeId};

/// Hard cap on one frame's payload, guarding the server against
/// malicious or corrupt length prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Hard cap on `ns × nt` of one DISTANCES request.
pub const MAX_BATCH_PAIRS: usize = 1 << 20;

/// Wire sentinel for "unreachable" (distinct from every real distance).
pub const UNREACHABLE: u64 = u64::MAX;

/// Response status byte: success.
pub const STATUS_OK: u8 = 0;
/// Response status byte: request-level failure (body = UTF-8 message).
pub const STATUS_ERROR: u8 = 1;

/// Opcode bytes.
pub mod op {
    /// Liveness probe.
    pub const PING: u8 = 0;
    /// Point-to-point distance query.
    pub const DISTANCE: u8 = 1;
    /// Point-to-point shortest-path query.
    pub const PATH: u8 = 2;
    /// Batched (many-to-many) distance query.
    pub const DISTANCES: u8 = 3;
    /// Observability snapshot.
    pub const STATS: u8 = 4;
    /// Graceful server shutdown.
    pub const SHUTDOWN: u8 = 5;
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with an OK text body.
    Ping,
    /// Distance query against one backend.
    Distance {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Target vertex.
        t: NodeId,
    },
    /// Shortest-path query against one backend.
    Path {
        /// Backend wire id.
        backend: u8,
        /// Source vertex.
        s: NodeId,
        /// Target vertex.
        t: NodeId,
    },
    /// Batched sources × targets distance table.
    Distances {
        /// Backend wire id.
        backend: u8,
        /// Batch sources.
        sources: Vec<NodeId>,
        /// Batch targets.
        targets: Vec<NodeId>,
    },
    /// Observability snapshot.
    Stats,
    /// Graceful shutdown request.
    Shutdown,
}

impl Request {
    /// Serialises the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(op::PING),
            Request::Distance { backend, s, t } => {
                out.extend_from_slice(&[op::DISTANCE, *backend]);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
            }
            Request::Path { backend, s, t } => {
                out.extend_from_slice(&[op::PATH, *backend]);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
            }
            Request::Distances {
                backend,
                sources,
                targets,
            } => {
                out.extend_from_slice(&[op::DISTANCES, *backend]);
                out.extend_from_slice(&(sources.len() as u32).to_le_bytes());
                out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
                for v in sources.iter().chain(targets.iter()) {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Request::Stats => out.push(op::STATS),
            Request::Shutdown => out.push(op::SHUTDOWN),
        }
        out
    }

    /// Parses a frame payload. Errors describe the defect for the
    /// error-response body.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8()?;
        let req = match opcode {
            op::PING => Request::Ping,
            op::DISTANCE | op::PATH => {
                let backend = c.u8()?;
                let s = c.u32()?;
                let t = c.u32()?;
                if opcode == op::DISTANCE {
                    Request::Distance { backend, s, t }
                } else {
                    Request::Path { backend, s, t }
                }
            }
            op::DISTANCES => {
                let backend = c.u8()?;
                let ns = c.u32()? as usize;
                let nt = c.u32()? as usize;
                if ns == 0 || nt == 0 {
                    return Err("empty batch".into());
                }
                if ns.saturating_mul(nt) > MAX_BATCH_PAIRS {
                    return Err(format!("batch of {ns}x{nt} pairs exceeds the limit"));
                }
                let mut sources = Vec::with_capacity(ns);
                for _ in 0..ns {
                    sources.push(c.u32()?);
                }
                let mut targets = Vec::with_capacity(nt);
                for _ in 0..nt {
                    targets.push(c.u32()?);
                }
                Request::Distances {
                    backend,
                    sources,
                    targets,
                }
            }
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            other => return Err(format!("unknown opcode {other}")),
        };
        if !c.at_end() {
            return Err("trailing bytes after request".into());
        }
        Ok(req)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "oversized outgoing frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame into `buf`. Returns `false` on clean EOF (no bytes
/// of a next frame read yet).
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    match r.read(&mut header) {
        Ok(0) => return Ok(false),
        Ok(n) => r.read_exact(&mut header[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// OK response carrying a UTF-8 body (PING, STATS).
pub fn encode_text_response(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + text.len());
    out.push(STATUS_OK);
    out.extend_from_slice(text.as_bytes());
    out
}

/// OK response with no body (SHUTDOWN).
pub fn encode_empty_response() -> Vec<u8> {
    vec![STATUS_OK]
}

/// Error response.
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(STATUS_ERROR);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Encodes one distance (DISTANCE response body).
pub fn encode_distance_response(d: Option<Dist>) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(STATUS_OK);
    out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes());
    out
}

/// Encodes a shortest path (PATH response body).
pub fn encode_path_response(p: Option<(Dist, Vec<NodeId>)>) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(STATUS_OK);
    match p {
        None => {
            out.extend_from_slice(&UNREACHABLE.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        Some((d, path)) => {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            for v in &path {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Encodes a row-major distance table (DISTANCES response body).
pub fn encode_distances_response(table: &[Option<Dist>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 * table.len());
    out.push(STATUS_OK);
    for d in table {
        out.extend_from_slice(&d.unwrap_or(UNREACHABLE).to_le_bytes());
    }
    out
}

/// A bounds-checked little-endian reader over a payload.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err("truncated message".into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads the remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Ping,
            Request::Distance {
                backend: 1,
                s: 7,
                t: 9,
            },
            Request::Path {
                backend: 3,
                s: 0,
                t: u32::MAX - 1,
            },
            Request::Distances {
                backend: 0,
                sources: vec![1, 2, 3],
                targets: vec![4, 5],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in cases {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).as_ref(), Ok(&req), "{req:?}");
        }
        // Backend-less requests are exactly one opcode byte on the wire,
        // as the protocol table documents — foreign clients rely on it.
        assert_eq!(Request::Ping.encode(), vec![op::PING]);
        assert_eq!(Request::Stats.encode(), vec![op::STATS]);
        assert_eq!(Request::Shutdown.encode(), vec![op::SHUTDOWN]);
        assert_eq!(Request::decode(&[op::PING]), Ok(Request::Ping));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99, 0]).is_err(), "unknown opcode");
        assert!(Request::decode(&[op::DISTANCE, 0, 1, 2]).is_err(), "short");
        let mut trailing = Request::Ping.encode();
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err(), "trailing bytes");
        // Oversized batch header.
        let mut huge = vec![op::DISTANCES, 0];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&huge).is_err());
    }

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).is_err());
    }
}
