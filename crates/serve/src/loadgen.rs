//! The load generator: replays the paper's Q1–Q10 query sets against a
//! running server at configurable concurrency and reports throughput.
//!
//! `--mix` weights the query ops each client draws from — point
//! distance plus the one-to-many family (`o2m:`/`knn:`/`range:`) — and
//! the CSV reports one row per (backend, concurrency, op) so each op's
//! QPS, latency percentiles, and oracle mismatches stay separable.
//!
//! Each client thread owns one retrying connection and one latency
//! histogram; threads start at staggered offsets into the
//! (shuffled-by-generation) pair pool so concurrent clients do not
//! lock-step over identical keys. After every timed run the generator
//! re-samples a slice of the workload through a fresh connection and
//! checks the answers against a locally computed Dijkstra oracle — a
//! throughput number from a server that answers incorrectly is
//! worthless (the paper makes the same point about a faulty TNR
//! implementation, §1).
//!
//! Transient push-back (BUSY shedding, dropped connections) is absorbed
//! by each client's [`RetryPolicy`] and surfaced as a `retries` column.
//! A sweep that dies mid-run — server crash, retries exhausted — still
//! yields every completed row plus the partial totals of the run that
//! failed, with the error recorded on the [`LoadgenReport`]; callers
//! must treat that error as a non-zero exit, not silently publish the
//! partial CSV as a clean result.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_many::PoiSet;
use spq_queries::shapes::Workload;
use spq_queries::{linf_query_sets, QueryGenParams};

use crate::client::{RetryPolicy, RetryingClient, ServeClient};
use crate::stats::{bucket_of, percentile_ns, BUCKETS};
use crate::BackendKind;

/// Targets per one-to-many request in the mix (drawn as a sliding
/// window over the workload pool, so consecutive requests see
/// different sets without per-request allocation).
const MIX_O2M_TARGETS: usize = 64;

/// Neighbours per kNN request in the mix.
const MIX_KNN_K: u32 = 8;

/// The query ops a mix can weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Distance = 0,
    OneToMany = 1,
    Knn = 2,
    Range = 3,
}

/// Number of [`OpKind`] variants (per-op accumulator array length).
const MIX_OPS: usize = 4;

impl OpKind {
    const ALL: [OpKind; MIX_OPS] = [
        OpKind::Distance,
        OpKind::OneToMany,
        OpKind::Knn,
        OpKind::Range,
    ];

    fn name(self) -> &'static str {
        match self {
            OpKind::Distance => "distance",
            OpKind::OneToMany => "o2m",
            OpKind::Knn => "knn",
            OpKind::Range => "range",
        }
    }
}

/// Relative op weights each client thread draws from, e.g.
/// `distance:8,o2m:2,knn:1,range:1`. Zero-weight ops are never issued
/// and produce no CSV row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMix {
    /// Point-to-point distance weight.
    pub distance: u32,
    /// One-to-many weight ([`MIX_O2M_TARGETS`] targets per request).
    pub o2m: u32,
    /// kNN weight (k = [`MIX_KNN_K`], against the registered POI set).
    pub knn: u32,
    /// Network-range weight (limit picked from the network's distance
    /// profile at startup).
    pub range: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            distance: 1,
            o2m: 0,
            knn: 0,
            range: 0,
        }
    }
}

impl OpMix {
    /// Parses `op:weight` pairs separated by commas. Ops left out get
    /// weight 0; at least one weight must be positive.
    pub fn parse(s: &str) -> Result<OpMix, String> {
        let mut mix = OpMix {
            distance: 0,
            o2m: 0,
            knn: 0,
            range: 0,
        };
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, weight) = part
                .split_once(':')
                .ok_or_else(|| format!("--mix wants op:weight, got '{part}'"))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("--mix: '{weight}' is not a weight"))?;
            match name.trim() {
                "distance" => mix.distance = weight,
                "o2m" => mix.o2m = weight,
                "knn" => mix.knn = weight,
                "range" => mix.range = weight,
                other => {
                    return Err(format!(
                        "--mix: unknown op '{other}' (distance, o2m, knn, range)"
                    ))
                }
            }
        }
        if mix.total() == 0 {
            return Err("--mix needs at least one positive weight".into());
        }
        Ok(mix)
    }

    fn weight(&self, op: OpKind) -> u32 {
        match op {
            OpKind::Distance => self.distance,
            OpKind::OneToMany => self.o2m,
            OpKind::Knn => self.knn,
            OpKind::Range => self.range,
        }
    }

    fn total(&self) -> u32 {
        self.distance + self.o2m + self.knn + self.range
    }

    /// The deterministic per-thread op sequence: ops interleaved round
    /// robin by weight, so a `8:2:1:1` mix spreads the rare ops across
    /// the window instead of bursting them.
    fn schedule(&self) -> Vec<OpKind> {
        let max = OpKind::ALL
            .iter()
            .map(|&op| self.weight(op))
            .max()
            .unwrap_or(0);
        let mut sched = Vec::with_capacity(self.total() as usize);
        for round in 0..max {
            for &op in &OpKind::ALL {
                if round < self.weight(op) {
                    sched.push(op);
                }
            }
        }
        sched
    }
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Backends to drive (each gets its own runs).
    pub backends: Vec<BackendKind>,
    /// Concurrency levels to sweep (client threads per run).
    pub concurrency: Vec<usize>,
    /// Open connections per run (0: one per client thread). When larger
    /// than the concurrency, each thread owns `connections/concurrency`
    /// connections and rotates its requests across them round-robin —
    /// the thread count bounds CPU-side parallelism while the
    /// connection count exercises the server's event loop at
    /// connection scale.
    pub connections: usize,
    /// Tear down and re-establish a connection every this many requests
    /// per thread (0: never). Connection churn is part of real traffic;
    /// the `reconnects` CSV column counts the teardowns.
    pub churn_every: usize,
    /// Wall-clock duration of each timed run (steady state, after the
    /// warm-up window).
    pub duration: Duration,
    /// Warm-up window preceding each timed run: clients connect and
    /// issue requests, but nothing is counted. Connection setup, cold
    /// caches, and the server's first-touch page faults land here
    /// instead of deflating the reported QPS.
    pub warmup: Duration,
    /// Query pairs per Q-set fed into the pool.
    pub per_set: usize,
    /// Workload seed.
    pub seed: u64,
    /// Post-run answers checked against the Dijkstra oracle (per
    /// backend).
    pub verify_samples: usize,
    /// Retry behaviour for BUSY shedding and dropped connections (each
    /// client thread derives its own jitter seed from this policy's).
    pub retry: RetryPolicy,
    /// Per-request deadline attached to every query (0: none).
    pub deadline_ms: u32,
    /// Trigger a hot index reload this often during the sweep
    /// (in-process serving only; None: no reloads). Chaos-lite: the
    /// sweep doubles as a check that hot swaps survive real load.
    pub reload_every: Option<Duration>,
    /// Relative op weights each client draws from (default: pure
    /// distance queries, the pre-mix behaviour).
    pub mix: OpMix,
    /// POI set the kNN mix queries. [`run_in_process`] samples and
    /// registers one automatically when the mix needs it; a caller
    /// driving an external server must provide the set that server has
    /// registered, both to name it on the wire and to verify answers.
    pub poi: Option<PoiSet>,
    /// Persisted query shapes (one-to-many target sets, kNN k-sweep,
    /// range radii) the mix draws from instead of the built-in
    /// defaults. Lets two runs — or the torture harness and a loadgen
    /// sweep — replay byte-identical request shapes from one file.
    pub workload: Option<Workload>,
    /// Adversarial slow-reader connections run alongside each timed
    /// run: each pipelines large DISTANCES requests and reads responses
    /// at [`LoadgenOptions::slow_reader_rate`] bytes/sec (0: never
    /// reads). The server must force-close them without the well-
    /// behaved clients noticing; the closes land in the `force_closed`
    /// CSV column.
    pub slow_readers: usize,
    /// Bytes per second each slow reader drains (0: a pure never-reads
    /// peer).
    pub slow_reader_rate: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            backends: BackendKind::DEFAULT.to_vec(),
            concurrency: vec![1, 4],
            connections: 0,
            churn_every: 0,
            duration: Duration::from_secs(3),
            warmup: Duration::from_millis(250),
            per_set: 200,
            seed: 0x9e37_79b9,
            verify_samples: 32,
            retry: RetryPolicy::default(),
            deadline_ms: 0,
            reload_every: None,
            mix: OpMix::default(),
            poi: None,
            workload: None,
            slow_readers: 0,
            slow_reader_rate: 0,
        }
    }
}

/// One line of `results/serve_throughput.csv`: one (backend,
/// concurrency, op) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Backend display name.
    pub backend: String,
    /// Query op this row measured (`distance`, `o2m`, `knn`, `range`).
    pub op: String,
    /// Client threads in this run.
    pub concurrency: usize,
    /// Open connections in this run (threads × connections per
    /// thread).
    pub connections: usize,
    /// Measured steady-state wall-clock seconds (the warm-up window is
    /// excluded).
    pub seconds: f64,
    /// Requests completed within the timed window.
    pub requests: u64,
    /// Steady-state requests per second.
    pub qps: f64,
    /// Median client-observed latency (µs).
    pub p50_us: f64,
    /// 99th-percentile client-observed latency (µs).
    pub p99_us: f64,
    /// Answers checked against the oracle after the run.
    pub verified: usize,
    /// Checked answers that disagreed (any non-zero is a failure).
    pub mismatches: usize,
    /// Client-side retries spent on this op (BUSY shedding +
    /// reconnects, attributed to the request that triggered them).
    pub retries: u64,
    /// Retries of requests the server may already have executed (the
    /// connection died mid-response). These are the at-least-once
    /// deliveries; a non-idempotent caller must treat this column as a
    /// duplicate-execution upper bound.
    pub retried_after_partial: u64,
    /// Deliberate connection teardowns (`--churn-every`) across the
    /// whole run. A run-level total, repeated on each of the run's op
    /// rows (churn is per connection, not per op).
    pub reconnects: u64,
    /// Connections the server force-closed during this run (the
    /// `force_closed` + `slow_closed` server counters, sampled before
    /// and after). Non-zero is expected exactly when `--slow-readers`
    /// is set; a run-level total repeated on each op row.
    pub force_closed: u64,
}

impl ThroughputRow {
    /// CSV header matching [`ThroughputRow::to_csv`].
    pub const CSV_HEADER: &'static str = "backend,op,concurrency,connections,seconds,requests,\
         qps,p50_us,p99_us,verified,mismatches,retries,retried_after_partial,reconnects,\
         force_closed";

    /// One CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{:.2},{},{:.1},{:.2},{:.2},{},{},{},{},{},{}",
            self.backend,
            self.op,
            self.concurrency,
            self.connections,
            self.seconds,
            self.requests,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.verified,
            self.mismatches,
            self.retries,
            self.retried_after_partial,
            self.reconnects,
            self.force_closed
        )
    }
}

/// The sweep's outcome: every row that completed (including the partial
/// totals of a run that died mid-flight) plus the first fatal error, if
/// any.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Completed (and, on failure, partial) throughput rows.
    pub rows: Vec<ThroughputRow>,
    /// The error that stopped the sweep early, if it did not finish.
    pub error: Option<String>,
}

impl LoadgenReport {
    /// Total oracle mismatches across all rows.
    pub fn mismatches(&self) -> usize {
        self.rows.iter().map(|r| r.mismatches).sum()
    }
}

/// Builds the query-pair pool: the union of the paper's Q1–Q10 L∞
/// query sets, falling back to uniform random pairs when the network is
/// too small to populate the stratified sets.
pub fn workload_pairs(net: &RoadNetwork, per_set: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let params = QueryGenParams {
        per_set,
        grid: 1024,
        seed,
    };
    let mut pairs: Vec<(NodeId, NodeId)> = linf_query_sets(net, &params)
        .into_iter()
        .flat_map(|set| set.pairs)
        .collect();
    if pairs.len() < 64 {
        let n = net.num_nodes() as u64;
        let mut state = seed | 1;
        while pairs.len() < 256 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % n) as NodeId;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % n) as NodeId;
            pairs.push((s, t));
        }
    }
    pairs
}

/// Per-op accumulator of one client thread: completed requests, the
/// latency histogram, and the retries its requests triggered.
#[derive(Clone, Copy)]
struct OpAgg {
    requests: u64,
    retries: u64,
    partials: u64,
    hist: [u64; BUCKETS],
}

impl OpAgg {
    fn empty() -> OpAgg {
        OpAgg {
            requests: 0,
            retries: 0,
            partials: 0,
            hist: [0; BUCKETS],
        }
    }
}

/// Result of one client thread's timed loop. Carries whatever completed
/// before `error` struck, so a dying run still reports its partials.
struct ClientRun {
    per_op: [OpAgg; MIX_OPS],
    reconnects: u64,
    error: Option<String>,
}

impl ClientRun {
    fn empty() -> ClientRun {
        ClientRun {
            per_op: [OpAgg::empty(); MIX_OPS],
            reconnects: 0,
            error: None,
        }
    }
}

/// How one run spreads its connections: connections per client thread
/// and the churn cadence.
#[derive(Clone, Copy)]
struct ConnPlan {
    /// Connections each client thread owns and rotates round-robin.
    per_thread: usize,
    /// Tear one connection down every this many requests per thread
    /// (0: never).
    churn_every: usize,
}

impl ConnPlan {
    fn new(concurrency: usize, opts: &LoadgenOptions) -> ConnPlan {
        ConnPlan {
            per_thread: if opts.connections == 0 {
                1
            } else {
                opts.connections.div_ceil(concurrency.max(1)).max(1)
            },
            churn_every: opts.churn_every,
        }
    }
}

/// The measurement window of one run: an uncounted warm-up, then the
/// timed steady-state stretch.
#[derive(Clone, Copy)]
struct Window {
    warmup: Duration,
    duration: Duration,
}

/// Everything the client threads need to issue the non-distance ops:
/// the target pool for one-to-many windows, the POI set name for kNN,
/// and the precomputed range limit.
#[derive(Clone, Copy)]
struct MixContext<'a> {
    mix: &'a OpMix,
    /// Workload targets, duplicated once so any offset yields a full
    /// [`MIX_O2M_TARGETS`]-wide slice without wrap-around.
    tpool: &'a [NodeId],
    poi_name: &'a str,
    range_limit: Dist,
    /// Persisted shapes overriding the built-in defaults, when set.
    workload: Option<&'a Workload>,
}

impl<'a> MixContext<'a> {
    /// Target set of the `i`-th one-to-many request: a persisted set
    /// when a workload is loaded, else a sliding window over the pool.
    fn o2m_targets(&self, i: usize) -> &'a [NodeId] {
        match self.workload {
            Some(w) if !w.o2m_sets.is_empty() => &w.o2m_sets[i % w.o2m_sets.len()],
            _ => {
                let off = i % (self.tpool.len() / 2);
                &self.tpool[off..off + MIX_O2M_TARGETS]
            }
        }
    }

    /// `k` of the `i`-th kNN request (the workload's k-sweep, cycled).
    fn knn_k(&self, i: usize) -> u32 {
        match self.workload {
            Some(w) if !w.knn_ks.is_empty() => w.knn_ks[i % w.knn_ks.len()],
            _ => MIX_KNN_K,
        }
    }

    /// Radius of the `i`-th range request.
    fn range_limit_at(&self, i: usize) -> Dist {
        match self.workload {
            Some(w) if !w.range_radii.is_empty() => w.range_radii[i % w.range_radii.len()],
            _ => self.range_limit,
        }
    }
}

/// Drives one backend at one concurrency level. Always returns the
/// aggregated totals; a thread failure is recorded on the run, not
/// thrown away with the completed work.
#[allow(clippy::too_many_arguments)]
fn run_one(
    addr: SocketAddr,
    backend: BackendKind,
    concurrency: usize,
    window: Window,
    pairs: &[(NodeId, NodeId)],
    retry: &RetryPolicy,
    deadline_ms: u32,
    ctx: MixContext<'_>,
    plan: ConnPlan,
) -> (f64, ClientRun) {
    let started = Instant::now();
    // Steady-state measurement: the timed window opens only after the
    // warm-up window, so connection setup and cold-start effects never
    // count toward QPS.
    let warm_end = started + window.warmup;
    let deadline = warm_end + window.duration;
    let sched = ctx.mix.schedule();
    let sched = sched.as_slice();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        // Spawned eagerly into the Vec: a lazy iterator would serialise
        // the workers behind each other's joins.
        let mut handles = Vec::with_capacity(concurrency);
        for worker in 0..concurrency {
            handles.push(scope.spawn(move || -> ClientRun {
                // Each thread rotates its requests across `per_thread`
                // connections: the thread count is the CPU-side
                // concurrency, the connection count is what the
                // server's event loop has to keep alive.
                let mut clients: Vec<RetryingClient> = (0..plan.per_thread)
                    .map(|slot| {
                        let mut policy = retry.clone();
                        // Distinct jitter streams keep retrying
                        // connections from thundering back in
                        // lock-step.
                        policy.seed = policy
                            .seed
                            .wrapping_add((worker * plan.per_thread + slot) as u64);
                        let mut client = RetryingClient::new(addr, policy);
                        client.set_deadline_ms(deadline_ms);
                        client
                    })
                    .collect();
                let mut run = ClientRun::empty();
                let mut i = worker * pairs.len() / concurrency.max(1);
                let issue = |client: &mut RetryingClient, i: usize| {
                    let (s, t) = pairs[i % pairs.len()];
                    let op = sched[i % sched.len()];
                    let res = match op {
                        OpKind::Distance => client.distance(backend, s, t).map(drop),
                        OpKind::OneToMany => {
                            client.one_to_many(backend, s, ctx.o2m_targets(i)).map(drop)
                        }
                        OpKind::Knn => client.knn(backend, s, ctx.knn_k(i), ctx.poi_name).map(drop),
                        OpKind::Range => client.range(backend, s, ctx.range_limit_at(i)).map(drop),
                    };
                    (op, res)
                };
                let num_clients = clients.len();
                // Warm-up: drive the same loop, count nothing.
                while Instant::now() < warm_end {
                    let (_, res) = issue(&mut clients[i % num_clients], i);
                    i += 1;
                    if let Err(e) = res {
                        run.error = Some(format!("{}: {e}", backend.name()));
                        return run;
                    }
                }
                let mut issued = 0usize;
                while Instant::now() < deadline {
                    if plan.churn_every > 0 && issued > 0 && issued % plan.churn_every == 0 {
                        // Deliberate churn: drop one connection; the
                        // next request through that slot reconnects.
                        let victim = &mut clients[issued / plan.churn_every % num_clients];
                        if victim.is_connected() {
                            victim.disconnect();
                            run.reconnects += 1;
                        }
                    }
                    let client = &mut clients[i % num_clients];
                    let retries_before = client.retries;
                    let partials_before = client.retried_after_partial;
                    let t0 = Instant::now();
                    let (op, res) = issue(client, i);
                    i += 1;
                    issued += 1;
                    if let Err(e) = res {
                        run.error = Some(format!("{}: {e}", backend.name()));
                        break;
                    }
                    let client = &clients[(i - 1) % num_clients];
                    let agg = &mut run.per_op[op as usize];
                    agg.hist[bucket_of(t0.elapsed().as_nanos() as u64)] += 1;
                    agg.requests += 1;
                    agg.retries += client.retries - retries_before;
                    agg.partials += client.retried_after_partial - partials_before;
                }
                run
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    let mut run = ClientRun::empty();
                    run.error = Some("client thread panicked".into());
                    run
                })
            })
            .collect()
    });
    let seconds = warm_end.elapsed().as_secs_f64();
    let mut total = ClientRun::empty();
    for run in runs {
        for (acc, op) in total.per_op.iter_mut().zip(run.per_op.iter()) {
            acc.requests += op.requests;
            acc.retries += op.retries;
            acc.partials += op.partials;
            for (a, b) in acc.hist.iter_mut().zip(op.hist.iter()) {
                *a += b;
            }
        }
        total.reconnects += run.reconnects;
        if total.error.is_none() {
            total.error = run.error;
        }
    }
    (seconds, total)
}

/// First counter named `name=` in a rendered STATS body (0 when absent
/// or unparsable — absent counters must not fail a sweep).
fn stat_counter(stats: &str, name: &str) -> u64 {
    let needle = format!("{name}=");
    stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(needle.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The server-side force-close total: connections reaped for making no
/// write progress (`force_closed`) plus typed slow-reader closes
/// (`slow_closed`). Returns 0 when the server cannot be asked.
fn fetch_force_closed(addr: SocketAddr) -> u64 {
    ServeClient::connect(addr)
        .ok()
        .and_then(|mut c| c.stats().ok())
        .map(|s| stat_counter(&s, "force_closed") + stat_counter(&s, "slow_closed"))
        .unwrap_or(0)
}

/// One adversarial slow reader: pipelines large DISTANCES requests on a
/// raw connection and drains responses at `rate` bytes/sec (0: never).
/// Runs until the server force-closes the connection (the expected
/// outcome) or `stop` is set. Write timeouts are survival, not failure:
/// a backpressured socket just means the server has correctly stopped
/// reading us.
fn slow_reader_loop(
    addr: SocketAddr,
    backend: BackendKind,
    rate: u64,
    stop: &AtomicBool,
    sources: &[NodeId],
    targets: &[NodeId],
) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let payload = crate::protocol::Request::Distances {
        backend: backend.wire_id(),
        sources: sources.to_vec(),
        targets: targets.to_vec(),
        deadline_ms: 0,
    }
    .encode();
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let mut drain = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        match stream.write_all(&frame) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Backpressured: the server stopped reading us. Keep
                // the connection parked until it force-closes.
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return, // reset: the server reclaimed this connection
        }
        if rate > 0 {
            // Trickle-read roughly `rate` bytes/sec in 100 ms slices —
            // slow enough that the backlog still outgrows any cap.
            let slice = ((rate / 10).max(1) as usize).min(drain.len());
            if matches!(stream.read(&mut drain[..slice]), Ok(0)) {
                return; // orderly close from the server
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

/// Sources per backend fed through the one-to-many-family oracle (each
/// costs a full one-to-all Dijkstra, so fewer than the distance
/// samples).
const MANY_VERIFY_SOURCES: usize = 6;

/// Checks workload answers against a locally computed Dijkstra oracle:
/// `samples` point-to-point distances, plus [`MANY_VERIFY_SOURCES`]
/// full sources for whichever of o2m/knn/range the mix enables.
/// Returns per-op `(checked, mismatches)`, indexed by [`OpKind`].
fn verify_backend(
    addr: SocketAddr,
    backend: BackendKind,
    net: &RoadNetwork,
    pairs: &[(NodeId, NodeId)],
    samples: usize,
    ctx: MixContext<'_>,
    poi: Option<&PoiSet>,
) -> Result<[(usize, usize); MIX_OPS], String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut oracle = Dijkstra::new(net.num_nodes());
    let mut out = [(0usize, 0usize); MIX_OPS];
    let step = (pairs.len() / samples.max(1)).max(1);
    if ctx.mix.distance > 0 {
        let cell = &mut out[OpKind::Distance as usize];
        for &(s, t) in pairs.iter().step_by(step).take(samples) {
            let got: Option<Dist> = client
                .distance(backend, s, t)
                .map_err(|e| format!("{}: {e}", backend.name()))?;
            oracle.run_to_target(net, s, t);
            let expected = oracle.distance(t);
            if got != expected {
                cell.1 += 1;
                eprintln!(
                    "[loadgen] {} MISMATCH: distance({s}, {t}) = {got:?}, oracle {expected:?}",
                    backend.name()
                );
            }
            cell.0 += 1;
        }
    }
    if ctx.mix.o2m == 0 && ctx.mix.knn == 0 && ctx.mix.range == 0 {
        return Ok(out);
    }
    for (j, &(s, _)) in pairs
        .iter()
        .step_by(step)
        .take(MANY_VERIFY_SOURCES)
        .enumerate()
    {
        oracle.run(net, s);
        if ctx.mix.o2m > 0 {
            let cell = &mut out[OpKind::OneToMany as usize];
            let targets = ctx.o2m_targets(j * 17);
            let got = client
                .one_to_many(backend, s, targets)
                .map_err(|e| format!("{}: {e}", backend.name()))?;
            let expected: Vec<Option<Dist>> = targets.iter().map(|&t| oracle.distance(t)).collect();
            if got != expected {
                cell.1 += 1;
                eprintln!("[loadgen] {} MISMATCH: one_to_many({s})", backend.name());
            }
            cell.0 += 1;
        }
        if ctx.mix.knn > 0 {
            let set = poi.expect("knn mix requires a POI set");
            let cell = &mut out[OpKind::Knn as usize];
            let k = ctx.knn_k(j);
            let got = client
                .knn(backend, s, k, ctx.poi_name)
                .map_err(|e| format!("{}: {e}", backend.name()))?;
            let mut expected: Vec<(Dist, NodeId)> = set
                .nodes()
                .iter()
                .filter_map(|&p| oracle.distance(p).map(|d| (d, p)))
                .collect();
            expected.sort_unstable();
            expected.truncate(k as usize);
            let got_kv: Vec<(Dist, NodeId)> = got.iter().map(|&(v, d)| (d, v)).collect();
            if got_kv != expected {
                cell.1 += 1;
                eprintln!("[loadgen] {} MISMATCH: knn({s})", backend.name());
            }
            cell.0 += 1;
        }
        if ctx.mix.range > 0 {
            let cell = &mut out[OpKind::Range as usize];
            let limit = ctx.range_limit_at(j);
            let got = client
                .range(backend, s, limit)
                .map_err(|e| format!("{}: {e}", backend.name()))?;
            let expected: Vec<(NodeId, Dist)> = (0..net.num_nodes() as NodeId)
                .filter_map(|v| oracle.distance(v).filter(|&d| d <= limit).map(|d| (v, d)))
                .collect();
            if got != expected {
                cell.1 += 1;
                eprintln!("[loadgen] {} MISMATCH: range({s})", backend.name());
            }
            cell.0 += 1;
        }
    }
    Ok(out)
}

/// Runs the full sweep (every backend × every concurrency level)
/// against an already-running server. Never panics on server failure:
/// the report carries the partial rows and the error instead.
pub fn run(addr: SocketAddr, net: &RoadNetwork, opts: &LoadgenOptions) -> LoadgenReport {
    let pairs = workload_pairs(net, opts.per_set, opts.seed);
    let mut report = LoadgenReport {
        rows: Vec::new(),
        error: None,
    };
    if opts.mix.total() == 0 {
        report.error = Some("the op mix has no positive weight".into());
        return report;
    }
    if opts.mix.knn > 0 && opts.poi.is_none() {
        report.error = Some(
            "the mix weights knn but no POI set is configured \
             (run_in_process samples one automatically)"
                .into(),
        );
        return report;
    }
    // Target pool for one-to-many windows, duplicated once so a slice
    // at any offset below `pairs.len()` never wraps.
    let mut tpool: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
    tpool.extend_from_within(..);
    // Range limit at roughly the 10th percentile of one source's
    // distance profile: local-neighbourhood queries, bounded responses.
    let range_limit = if opts.mix.range > 0 {
        let mut oracle = Dijkstra::new(net.num_nodes());
        oracle.run(net, pairs[0].0);
        let mut ds: Vec<Dist> = (0..net.num_nodes() as NodeId)
            .filter_map(|v| oracle.distance(v))
            .collect();
        ds.sort_unstable();
        ds.get(ds.len() / 10).copied().unwrap_or(0)
    } else {
        0
    };
    let poi_name = opts
        .poi
        .as_ref()
        .map(|s| s.name().to_string())
        .unwrap_or_default();
    if let Some(w) = &opts.workload {
        if let Err(e) = w.validate(net) {
            report.error = Some(format!("workload does not fit this network: {e}"));
            return report;
        }
    }
    let ctx = MixContext {
        mix: &opts.mix,
        tpool: &tpool,
        poi_name: &poi_name,
        range_limit,
        workload: opts.workload.as_ref(),
    };
    'sweep: for &backend in &opts.backends {
        let verified = match verify_backend(
            addr,
            backend,
            net,
            &pairs,
            opts.verify_samples,
            ctx,
            opts.poi.as_ref(),
        ) {
            Ok(v) => v,
            Err(e) => {
                report.error = Some(e);
                break 'sweep;
            }
        };
        for &concurrency in &opts.concurrency {
            let plan = ConnPlan::new(concurrency, opts);
            // Adversarial slow readers ride alongside the timed run;
            // the server's force-close counters are sampled around it
            // so the CSV reports how many connections were reclaimed.
            let closed_before = if opts.slow_readers > 0 {
                fetch_force_closed(addr)
            } else {
                0
            };
            let slow_stop = Arc::new(AtomicBool::new(false));
            // Hoard batches ride a native many-to-many backend when one
            // is served (huge response, negligible compute), so the
            // antagonists pressure the write path without starving the
            // worker pool the measured clients share. With only
            // per-pair backends the batch shrinks to keep the stolen
            // worker time bounded.
            let hoard_backend = [BackendKind::Ch, BackendKind::Hl]
                .into_iter()
                .find(|b| opts.backends.contains(b))
                .unwrap_or(backend);
            let n_targets = if matches!(hoard_backend, BackendKind::Ch | BackendKind::Hl) {
                4096
            } else {
                256
            };
            let slow_handles: Vec<std::thread::JoinHandle<()>> = (0..opts.slow_readers)
                .map(|i| {
                    let stop = Arc::clone(&slow_stop);
                    let sources: Vec<NodeId> = pairs.iter().take(8).map(|&(s, _)| s).collect();
                    let targets: Vec<NodeId> = (0..n_targets)
                        .map(|j| pairs[(i + j) % pairs.len()].1)
                        .collect();
                    let rate = opts.slow_reader_rate;
                    std::thread::spawn(move || {
                        slow_reader_loop(addr, hoard_backend, rate, &stop, &sources, &targets)
                    })
                })
                .collect();
            let (seconds, total) = run_one(
                addr,
                backend,
                concurrency,
                Window {
                    warmup: opts.warmup,
                    duration: opts.duration,
                },
                &pairs,
                &opts.retry,
                opts.deadline_ms,
                ctx,
                plan,
            );
            slow_stop.store(true, Ordering::SeqCst);
            for h in slow_handles {
                let _ = h.join();
            }
            let force_closed = if opts.slow_readers > 0 {
                fetch_force_closed(addr).saturating_sub(closed_before)
            } else {
                0
            };
            for op in OpKind::ALL {
                if opts.mix.weight(op) == 0 {
                    continue;
                }
                let agg = &total.per_op[op as usize];
                let (checked, mismatches) = verified[op as usize];
                let row = ThroughputRow {
                    backend: backend.name().to_string(),
                    op: op.name().to_string(),
                    concurrency,
                    connections: concurrency * plan.per_thread,
                    seconds,
                    requests: agg.requests,
                    qps: agg.requests as f64 / seconds.max(1e-9),
                    p50_us: percentile_ns(&agg.hist, 0.50) / 1_000.0,
                    p99_us: percentile_ns(&agg.hist, 0.99) / 1_000.0,
                    verified: checked,
                    mismatches,
                    retries: agg.retries,
                    retried_after_partial: agg.partials,
                    reconnects: total.reconnects,
                    force_closed,
                };
                eprintln!(
                    "[loadgen] {:<9} {:<8} c={:<2} {:>9.0} qps  p50 {:>8.2} µs  p99 {:>8.2} µs  ({} reqs in {:.1}s, {} retries)",
                    row.backend, row.op, row.concurrency, row.qps, row.p50_us, row.p99_us,
                    row.requests, row.seconds, row.retries
                );
                report.rows.push(row);
            }
            if let Some(e) = total.error {
                report.error = Some(e);
                break 'sweep;
            }
        }
    }
    report
}

/// Builds the engine, self-checks it, starts an in-process server, runs
/// the sweep, shuts the server down, and returns the report plus the
/// server's final stats dump. The self-check failing is fatal by
/// design: an `Err` here must translate into a non-zero process exit,
/// and so must a report whose `error` is set.
pub fn run_in_process(
    net: RoadNetwork,
    opts: &LoadgenOptions,
) -> Result<(LoadgenReport, String), String> {
    use crate::epoch::ReloadFactory;
    use crate::server::{Server, ServerConfig};
    use crate::Engine;

    let mut opts = opts.clone();
    let engine = Arc::new(Engine::build(net, &opts.backends));
    engine
        .self_check(32, opts.seed)
        .map_err(|e| format!("refusing to serve: {e}"))?;
    if opts.mix.knn > 0 && opts.poi.is_none() {
        // The kNN mix needs a registered POI set; sample one sized like
        // the bench harness's (registration requires a CH slot to build
        // the buckets against).
        let n = engine.net().num_nodes();
        let count = (n / 16).clamp(1, 256).min(n);
        let set = PoiSet::sample(engine.net(), "loadgen", count, opts.seed ^ 0x9015)
            .map_err(|e| format!("sample POI set: {e}"))?;
        opts.poi = Some(set);
    }
    if let Some(set) = &opts.poi {
        engine.register_pois(vec![set.clone()])?;
    }
    let opts = &opts;
    let max_concurrency = opts.concurrency.iter().copied().max().unwrap_or(1);
    // With --reload-every, the server gets a factory that rebuilds the
    // same engine — the point is exercising the swap under load, not
    // changing the answers (the oracle verification stays valid). POI
    // sets are re-registered so kNN keeps answering across swaps.
    let reload_factory = opts.reload_every.map(|_| {
        let net = engine.net().clone();
        let backends = opts.backends.clone();
        let poi = opts.poi.clone();
        ReloadFactory::new(move || {
            let engine = Arc::new(Engine::build(net.clone(), &backends));
            if let Some(set) = &poi {
                engine.register_pois(vec![set.clone()])?;
            }
            Ok(engine)
        })
    });
    // Workers are the CPU pool behind the event loop, not connection
    // holders: size them to the smaller of the active streams and the
    // machine (+1 so a wedged query never starves the pool). Sizing
    // them to `max_concurrency` like the old thread-per-connection
    // server did just builds an idle worker herd whose condvar wakeups
    // starve the shard threads at high stream counts.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut cfg = ServerConfig {
        workers: max_concurrency.min(cores) + 1,
        reload_factory,
        selfcheck_seed: opts.seed,
        ..ServerConfig::default()
    };
    if opts.slow_readers > 0 {
        // A short timed run must actually see the reclaim: a snug
        // backlog cap and a prompt write timeout trip the force-close
        // within the window, and a shallow pipeline keeps the
        // antagonists from monopolising the shared work queue.
        cfg.wbuf_cap = 1 << 20;
        cfg.write_timeout = Duration::from_millis(500);
        cfg.pipeline_depth = 8;
    }
    let server = Server::start(Arc::clone(&engine), &cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    eprintln!("[loadgen] serving on {addr}");

    // The reload driver: fires a RELOAD frame every `reload_every`
    // while the sweep runs, reporting how many swaps were published.
    let reload_driver = opts.reload_every.map(|every| {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || -> (u64, Option<String>) {
            let mut ok = 0u64;
            let mut first_err = None;
            'driver: loop {
                let wake = Instant::now() + every;
                while Instant::now() < wake {
                    if flag.load(Ordering::SeqCst) {
                        break 'driver;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                let outcome = ServeClient::connect(addr)
                    .map_err(|e| e.to_string())
                    .and_then(|mut c| c.reload().map_err(|e| e.to_string()));
                match outcome {
                    Ok(epoch) => {
                        ok += 1;
                        eprintln!("[loadgen] hot reload published epoch {epoch}");
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(format!("hot reload failed: {e}"));
                        }
                    }
                }
            }
            (ok, first_err)
        });
        (stop, handle)
    });

    let mut report = run(addr, engine.net(), opts);

    if let Some((stop, handle)) = reload_driver {
        stop.store(true, Ordering::SeqCst);
        let (ok, err) = handle
            .join()
            .unwrap_or((0, Some("the reload driver panicked".into())));
        eprintln!("[loadgen] hot reloads published during the sweep: {ok}");
        if report.error.is_none() {
            if let Some(e) = err {
                report.error = Some(e);
            } else if ok == 0 {
                report.error = Some(
                    "--reload-every was set but no reload completed within the sweep \
                     (lengthen --secs or shorten the reload interval)"
                        .into(),
                );
            }
        }
    }

    // Shut down regardless of the sweep's outcome so threads never leak.
    if let Ok(mut client) = ServeClient::connect(addr) {
        let _ = client.shutdown_server();
    }
    let stats = server.join();
    Ok((report, stats))
}

/// Writes the CSV (creating parent directories).
pub fn write_csv(rows: &[ThroughputRow], path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::from(ThroughputRow::CSV_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(&row.to_csv());
        out.push('\n');
    }
    spq_graph::atomic_io::write_atomic(path, |w| {
        use std::io::Write;
        w.write_all(out.as_bytes())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_synth::SynthParams;

    #[test]
    fn workload_pool_is_nonempty_even_on_tiny_networks() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(64, 5));
        let pairs = workload_pairs(&net, 10, 1);
        assert!(pairs.len() >= 64);
        let n = net.num_nodes() as NodeId;
        assert!(pairs.iter().all(|&(s, t)| s < n && t < n));
    }

    #[test]
    fn mix_parses_and_schedules_by_weight() {
        let mix = OpMix::parse("distance:8,o2m:2,knn:1,range:1").unwrap();
        assert_eq!(mix.total(), 12);
        let sched = mix.schedule();
        assert_eq!(sched.len(), 12);
        assert_eq!(sched.iter().filter(|&&o| o == OpKind::Distance).count(), 8);
        assert_eq!(sched.iter().filter(|&&o| o == OpKind::OneToMany).count(), 2);
        // Rare ops are spread across the window, not clumped at the
        // end: the first half of an 8:2:1:1 schedule already contains
        // a non-distance op.
        assert!(sched[..6].iter().any(|&o| o != OpKind::Distance));
        // The default mix is pure distance (pre-mix behaviour).
        assert_eq!(OpMix::default().schedule(), vec![OpKind::Distance]);
        assert!(OpMix::parse("distance:0").is_err());
        assert!(OpMix::parse("turtles:3").is_err());
        assert!(OpMix::parse("o2m").is_err());
    }

    #[test]
    fn conn_plan_splits_connections_across_threads() {
        let mut opts = LoadgenOptions::default();
        assert_eq!(ConnPlan::new(8, &opts).per_thread, 1);
        opts.connections = 1024;
        opts.churn_every = 50;
        let plan = ConnPlan::new(8, &opts);
        assert_eq!(plan.per_thread, 128);
        assert_eq!(plan.churn_every, 50);
        // A connection count below the thread count still gives every
        // thread one connection.
        opts.connections = 3;
        assert_eq!(ConnPlan::new(8, &opts).per_thread, 1);
    }

    #[test]
    fn csv_rows_are_well_formed() {
        let row = ThroughputRow {
            backend: "ch".into(),
            op: "o2m".into(),
            concurrency: 4,
            connections: 16,
            seconds: 2.0,
            requests: 1000,
            qps: 500.0,
            p50_us: 10.0,
            p99_us: 90.5,
            verified: 32,
            mismatches: 0,
            retries: 7,
            retried_after_partial: 2,
            reconnects: 3,
            force_closed: 5,
        };
        let line = row.to_csv();
        assert_eq!(
            line.split(',').count(),
            ThroughputRow::CSV_HEADER.split(',').count()
        );
        assert!(line.starts_with("ch,o2m,4,16,"));
        assert!(line.ends_with(",7,2,3,5"));
    }

    #[test]
    fn stat_counters_parse_out_of_a_stats_body() {
        let body = "epoch: 3\nfaults: shed=1 client_timeouts=2 force_closed=4 slow_closed=6\n\
                    resources: mem_budget=1048576 open_fds=37\n";
        assert_eq!(stat_counter(body, "force_closed"), 4);
        assert_eq!(stat_counter(body, "slow_closed"), 6);
        assert_eq!(stat_counter(body, "mem_budget"), 1048576);
        assert_eq!(stat_counter(body, "no_such_counter"), 0);
    }
}
