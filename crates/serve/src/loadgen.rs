//! The load generator: replays the paper's Q1–Q10 query sets against a
//! running server at configurable concurrency and reports throughput.
//!
//! Each client thread owns one retrying connection and one latency
//! histogram; threads start at staggered offsets into the
//! (shuffled-by-generation) pair pool so concurrent clients do not
//! lock-step over identical keys. After every timed run the generator
//! re-samples a slice of the workload through a fresh connection and
//! checks the answers against a locally computed Dijkstra oracle — a
//! throughput number from a server that answers incorrectly is
//! worthless (the paper makes the same point about a faulty TNR
//! implementation, §1).
//!
//! Transient push-back (BUSY shedding, dropped connections) is absorbed
//! by each client's [`RetryPolicy`] and surfaced as a `retries` column.
//! A sweep that dies mid-run — server crash, retries exhausted — still
//! yields every completed row plus the partial totals of the run that
//! failed, with the error recorded on the [`LoadgenReport`]; callers
//! must treat that error as a non-zero exit, not silently publish the
//! partial CSV as a clean result.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;
use spq_queries::{linf_query_sets, QueryGenParams};

use crate::client::{RetryPolicy, RetryingClient, ServeClient};
use crate::stats::{bucket_of, percentile_ns, BUCKETS};
use crate::BackendKind;

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Backends to drive (each gets its own runs).
    pub backends: Vec<BackendKind>,
    /// Concurrency levels to sweep (client threads per run).
    pub concurrency: Vec<usize>,
    /// Wall-clock duration of each timed run (steady state, after the
    /// warm-up window).
    pub duration: Duration,
    /// Warm-up window preceding each timed run: clients connect and
    /// issue requests, but nothing is counted. Connection setup, cold
    /// caches, and the server's first-touch page faults land here
    /// instead of deflating the reported QPS.
    pub warmup: Duration,
    /// Query pairs per Q-set fed into the pool.
    pub per_set: usize,
    /// Workload seed.
    pub seed: u64,
    /// Post-run answers checked against the Dijkstra oracle (per
    /// backend).
    pub verify_samples: usize,
    /// Retry behaviour for BUSY shedding and dropped connections (each
    /// client thread derives its own jitter seed from this policy's).
    pub retry: RetryPolicy,
    /// Per-request deadline attached to every query (0: none).
    pub deadline_ms: u32,
    /// Trigger a hot index reload this often during the sweep
    /// (in-process serving only; None: no reloads). Chaos-lite: the
    /// sweep doubles as a check that hot swaps survive real load.
    pub reload_every: Option<Duration>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            backends: BackendKind::DEFAULT.to_vec(),
            concurrency: vec![1, 4],
            duration: Duration::from_secs(3),
            warmup: Duration::from_millis(250),
            per_set: 200,
            seed: 0x9e37_79b9,
            verify_samples: 32,
            retry: RetryPolicy::default(),
            deadline_ms: 0,
            reload_every: None,
        }
    }
}

/// One line of `results/serve_throughput.csv`.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Backend display name.
    pub backend: String,
    /// Client threads in this run.
    pub concurrency: usize,
    /// Measured steady-state wall-clock seconds (the warm-up window is
    /// excluded).
    pub seconds: f64,
    /// Requests completed within the timed window.
    pub requests: u64,
    /// Steady-state requests per second.
    pub qps: f64,
    /// Median client-observed latency (µs).
    pub p50_us: f64,
    /// 99th-percentile client-observed latency (µs).
    pub p99_us: f64,
    /// Answers checked against the oracle after the run.
    pub verified: usize,
    /// Checked answers that disagreed (any non-zero is a failure).
    pub mismatches: usize,
    /// Client-side retries spent (BUSY shedding + reconnects).
    pub retries: u64,
}

impl ThroughputRow {
    /// CSV header matching [`ThroughputRow::to_csv`].
    pub const CSV_HEADER: &'static str =
        "backend,concurrency,seconds,requests,qps,p50_us,p99_us,verified,mismatches,retries";

    /// One CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{:.2},{},{:.1},{:.2},{:.2},{},{},{}",
            self.backend,
            self.concurrency,
            self.seconds,
            self.requests,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.verified,
            self.mismatches,
            self.retries
        )
    }
}

/// The sweep's outcome: every row that completed (including the partial
/// totals of a run that died mid-flight) plus the first fatal error, if
/// any.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Completed (and, on failure, partial) throughput rows.
    pub rows: Vec<ThroughputRow>,
    /// The error that stopped the sweep early, if it did not finish.
    pub error: Option<String>,
}

impl LoadgenReport {
    /// Total oracle mismatches across all rows.
    pub fn mismatches(&self) -> usize {
        self.rows.iter().map(|r| r.mismatches).sum()
    }
}

/// Builds the query-pair pool: the union of the paper's Q1–Q10 L∞
/// query sets, falling back to uniform random pairs when the network is
/// too small to populate the stratified sets.
pub fn workload_pairs(net: &RoadNetwork, per_set: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let params = QueryGenParams {
        per_set,
        grid: 1024,
        seed,
    };
    let mut pairs: Vec<(NodeId, NodeId)> = linf_query_sets(net, &params)
        .into_iter()
        .flat_map(|set| set.pairs)
        .collect();
    if pairs.len() < 64 {
        let n = net.num_nodes() as u64;
        let mut state = seed | 1;
        while pairs.len() < 256 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((state >> 33) % n) as NodeId;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % n) as NodeId;
            pairs.push((s, t));
        }
    }
    pairs
}

/// Result of one client thread's timed loop. Carries whatever completed
/// before `error` struck, so a dying run still reports its partials.
struct ClientRun {
    requests: u64,
    retries: u64,
    hist: [u64; BUCKETS],
    error: Option<String>,
}

impl ClientRun {
    fn empty() -> ClientRun {
        ClientRun {
            requests: 0,
            retries: 0,
            hist: [0; BUCKETS],
            error: None,
        }
    }
}

/// The measurement window of one run: an uncounted warm-up, then the
/// timed steady-state stretch.
#[derive(Clone, Copy)]
struct Window {
    warmup: Duration,
    duration: Duration,
}

/// Drives one backend at one concurrency level. Always returns the
/// aggregated totals; a thread failure is recorded on the run, not
/// thrown away with the completed work.
fn run_one(
    addr: SocketAddr,
    backend: BackendKind,
    concurrency: usize,
    window: Window,
    pairs: &[(NodeId, NodeId)],
    retry: &RetryPolicy,
    deadline_ms: u32,
) -> (f64, ClientRun) {
    let started = Instant::now();
    // Steady-state measurement: the timed window opens only after the
    // warm-up window, so connection setup and cold-start effects never
    // count toward QPS.
    let warm_end = started + window.warmup;
    let deadline = warm_end + window.duration;
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        // Spawned eagerly into the Vec: a lazy iterator would serialise
        // the workers behind each other's joins.
        let mut handles = Vec::with_capacity(concurrency);
        for worker in 0..concurrency {
            handles.push(scope.spawn(move || -> ClientRun {
                let mut policy = retry.clone();
                // Distinct jitter streams keep retrying threads from
                // thundering back in lock-step.
                policy.seed = policy.seed.wrapping_add(worker as u64);
                let mut client = RetryingClient::new(addr, policy);
                client.set_deadline_ms(deadline_ms);
                let mut run = ClientRun::empty();
                let mut i = worker * pairs.len() / concurrency.max(1);
                // Warm-up: drive the same loop, count nothing.
                while Instant::now() < warm_end {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    if let Err(e) = client.distance(backend, s, t) {
                        run.error = Some(format!("{}: {e}", backend.name()));
                        return run;
                    }
                }
                let warm_retries = client.retries;
                while Instant::now() < deadline {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    let t0 = Instant::now();
                    if let Err(e) = client.distance(backend, s, t) {
                        run.error = Some(format!("{}: {e}", backend.name()));
                        break;
                    }
                    run.hist[bucket_of(t0.elapsed().as_nanos() as u64)] += 1;
                    run.requests += 1;
                }
                run.retries = client.retries - warm_retries;
                run
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    let mut run = ClientRun::empty();
                    run.error = Some("client thread panicked".into());
                    run
                })
            })
            .collect()
    });
    let seconds = warm_end.elapsed().as_secs_f64();
    let mut total = ClientRun::empty();
    for run in runs {
        total.requests += run.requests;
        total.retries += run.retries;
        for (acc, b) in total.hist.iter_mut().zip(run.hist.iter()) {
            *acc += b;
        }
        if total.error.is_none() {
            total.error = run.error;
        }
    }
    (seconds, total)
}

/// Checks `samples` workload answers against a locally computed
/// Dijkstra oracle. Returns `(checked, mismatches)`.
fn verify_backend(
    addr: SocketAddr,
    backend: BackendKind,
    net: &RoadNetwork,
    pairs: &[(NodeId, NodeId)],
    samples: usize,
) -> Result<(usize, usize), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut oracle = Dijkstra::new(net.num_nodes());
    let mut mismatches = 0;
    let step = (pairs.len() / samples.max(1)).max(1);
    let mut checked = 0;
    for &(s, t) in pairs.iter().step_by(step).take(samples) {
        let got: Option<Dist> = client
            .distance(backend, s, t)
            .map_err(|e| format!("{}: {e}", backend.name()))?;
        oracle.run_to_target(net, s, t);
        let expected = oracle.distance(t);
        if got != expected {
            mismatches += 1;
            eprintln!(
                "[loadgen] {} MISMATCH: distance({s}, {t}) = {got:?}, oracle {expected:?}",
                backend.name()
            );
        }
        checked += 1;
    }
    Ok((checked, mismatches))
}

/// Runs the full sweep (every backend × every concurrency level)
/// against an already-running server. Never panics on server failure:
/// the report carries the partial rows and the error instead.
pub fn run(addr: SocketAddr, net: &RoadNetwork, opts: &LoadgenOptions) -> LoadgenReport {
    let pairs = workload_pairs(net, opts.per_set, opts.seed);
    let mut report = LoadgenReport {
        rows: Vec::new(),
        error: None,
    };
    'sweep: for &backend in &opts.backends {
        let (verified, mismatches) =
            match verify_backend(addr, backend, net, &pairs, opts.verify_samples) {
                Ok(v) => v,
                Err(e) => {
                    report.error = Some(e);
                    break 'sweep;
                }
            };
        for &concurrency in &opts.concurrency {
            let (seconds, total) = run_one(
                addr,
                backend,
                concurrency,
                Window {
                    warmup: opts.warmup,
                    duration: opts.duration,
                },
                &pairs,
                &opts.retry,
                opts.deadline_ms,
            );
            let row = ThroughputRow {
                backend: backend.name().to_string(),
                concurrency,
                seconds,
                requests: total.requests,
                qps: total.requests as f64 / seconds.max(1e-9),
                p50_us: percentile_ns(&total.hist, 0.50) / 1_000.0,
                p99_us: percentile_ns(&total.hist, 0.99) / 1_000.0,
                verified,
                mismatches,
                retries: total.retries,
            };
            eprintln!(
                "[loadgen] {:<9} c={:<2} {:>9.0} qps  p50 {:>8.2} µs  p99 {:>8.2} µs  ({} reqs in {:.1}s, {} retries)",
                row.backend, row.concurrency, row.qps, row.p50_us, row.p99_us, row.requests,
                row.seconds, row.retries
            );
            report.rows.push(row);
            if let Some(e) = total.error {
                report.error = Some(e);
                break 'sweep;
            }
        }
    }
    report
}

/// Builds the engine, self-checks it, starts an in-process server, runs
/// the sweep, shuts the server down, and returns the report plus the
/// server's final stats dump. The self-check failing is fatal by
/// design: an `Err` here must translate into a non-zero process exit,
/// and so must a report whose `error` is set.
pub fn run_in_process(
    net: RoadNetwork,
    opts: &LoadgenOptions,
) -> Result<(LoadgenReport, String), String> {
    use crate::epoch::ReloadFactory;
    use crate::server::{Server, ServerConfig};
    use crate::Engine;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let engine = Arc::new(Engine::build(net, &opts.backends));
    engine
        .self_check(32, opts.seed)
        .map_err(|e| format!("refusing to serve: {e}"))?;
    let max_concurrency = opts.concurrency.iter().copied().max().unwrap_or(1);
    // With --reload-every, the server gets a factory that rebuilds the
    // same engine — the point is exercising the swap under load, not
    // changing the answers (the oracle verification stays valid).
    let reload_factory = opts.reload_every.map(|_| {
        let net = engine.net().clone();
        let backends = opts.backends.clone();
        ReloadFactory::new(move || Ok(Arc::new(Engine::build(net.clone(), &backends))))
    });
    let cfg = ServerConfig {
        workers: max_concurrency + 1,
        reload_factory,
        selfcheck_seed: opts.seed,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), &cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    eprintln!("[loadgen] serving on {addr}");

    // The reload driver: fires a RELOAD frame every `reload_every`
    // while the sweep runs, reporting how many swaps were published.
    let reload_driver = opts.reload_every.map(|every| {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || -> (u64, Option<String>) {
            let mut ok = 0u64;
            let mut first_err = None;
            'driver: loop {
                let wake = Instant::now() + every;
                while Instant::now() < wake {
                    if flag.load(Ordering::SeqCst) {
                        break 'driver;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                let outcome = ServeClient::connect(addr)
                    .map_err(|e| e.to_string())
                    .and_then(|mut c| c.reload().map_err(|e| e.to_string()));
                match outcome {
                    Ok(epoch) => {
                        ok += 1;
                        eprintln!("[loadgen] hot reload published epoch {epoch}");
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(format!("hot reload failed: {e}"));
                        }
                    }
                }
            }
            (ok, first_err)
        });
        (stop, handle)
    });

    let mut report = run(addr, engine.net(), opts);

    if let Some((stop, handle)) = reload_driver {
        stop.store(true, Ordering::SeqCst);
        let (ok, err) = handle
            .join()
            .unwrap_or((0, Some("the reload driver panicked".into())));
        eprintln!("[loadgen] hot reloads published during the sweep: {ok}");
        if report.error.is_none() {
            if let Some(e) = err {
                report.error = Some(e);
            } else if ok == 0 {
                report.error = Some(
                    "--reload-every was set but no reload completed within the sweep \
                     (lengthen --secs or shorten the reload interval)"
                        .into(),
                );
            }
        }
    }

    // Shut down regardless of the sweep's outcome so threads never leak.
    if let Ok(mut client) = ServeClient::connect(addr) {
        let _ = client.shutdown_server();
    }
    let stats = server.join();
    Ok((report, stats))
}

/// Writes the CSV (creating parent directories).
pub fn write_csv(rows: &[ThroughputRow], path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::from(ThroughputRow::CSV_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(&row.to_csv());
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_synth::SynthParams;

    #[test]
    fn workload_pool_is_nonempty_even_on_tiny_networks() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(64, 5));
        let pairs = workload_pairs(&net, 10, 1);
        assert!(pairs.len() >= 64);
        let n = net.num_nodes() as NodeId;
        assert!(pairs.iter().all(|&(s, t)| s < n && t < n));
    }

    #[test]
    fn csv_rows_are_well_formed() {
        let row = ThroughputRow {
            backend: "ch".into(),
            concurrency: 4,
            seconds: 2.0,
            requests: 1000,
            qps: 500.0,
            p50_us: 10.0,
            p99_us: 90.5,
            verified: 32,
            mismatches: 0,
            retries: 7,
        };
        let line = row.to_csv();
        assert_eq!(
            line.split(',').count(),
            ThroughputRow::CSV_HEADER.split(',').count()
        );
        assert!(line.starts_with("ch,4,"));
        assert!(line.ends_with(",7"));
    }
}
