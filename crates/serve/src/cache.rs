//! A sharded LRU cache for distance answers.
//!
//! Keyed by `(epoch, backend, s, t)`; the value is the wire encoding of
//! the answer ([`UNREACHABLE`] for "no path"), so negative results are
//! cached too. Distances over one epoch's network never go stale —
//! a key's value is immutable, and the only mutations are eviction and
//! explicit purging. A hot index swap changes the epoch component, so
//! entries cached against the old index are structurally unreachable
//! from queries running on the new one (and vice versa: a connection
//! still pinned to the old epoch keeps hitting only old-epoch entries,
//! which remain correct for it).
//!
//! Sharding bounds contention: a key hashes to one of `shards` (a power
//! of two) independent mutex-protected LRU lists, so concurrent workers
//! only collide when they touch the same shard. Hit/miss/eviction
//! accounting is kept in shard-external atomics — reading the counters
//! never takes a lock. Shard locks recover from poisoning (a panicking
//! worker must not disable caching for everyone else).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spq_graph::types::Dist;

use crate::protocol::UNREACHABLE;
use crate::sync::lock_unpoisoned;

/// How far the epoch is shifted inside the 128-bit key: bits 0..32 are
/// the target, 32..64 the source, 64..72 the backend wire id, and the
/// remaining high bits the (truncated) epoch.
const EPOCH_SHIFT: u32 = 72;

/// Cache counters snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries removed by explicit purges (epoch retirement or backend
    /// quarantine).
    pub purged: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Total capacity across shards (0 = disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: u32 = u32::MAX;

/// Approximate resident bytes per cache entry, used by the server's
/// memory budget to reserve the cache's worst-case footprint up front:
/// a 32-byte [`Entry`] plus the `HashMap<u128, u32>` index's amortised
/// bucket (key + slot + load-factor headroom). Deliberately a static
/// estimate — the budget needs a bound at startup, not live telemetry.
pub const APPROX_ENTRY_BYTES: usize = 64;

struct Entry {
    key: u128,
    value: u64,
    prev: u32,
    next: u32,
}

/// One independent LRU list + index.
struct Shard {
    map: HashMap<u128, u32>,
    entries: Vec<Entry>,
    /// Most recently used entry.
    head: u32,
    /// Least recently used entry (the eviction victim).
    tail: u32,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity.min(1024)),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn detach(&mut self, i: u32) {
        let (prev, next) = {
            let e = &self.entries[i as usize];
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entries[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entries[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let e = &mut self.entries[i as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entries[old_head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: u128) -> Option<u64> {
        let i = *self.map.get(&key)?;
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
        Some(self.entries[i as usize].value)
    }

    /// Inserts (or refreshes) a key; returns whether an entry was evicted.
    fn insert(&mut self, key: u128, value: u64) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i as usize].value = value;
            if self.head != i {
                self.detach(i);
                self.push_front(i);
            }
            return false;
        }
        if self.entries.len() < self.capacity {
            let i = self.entries.len() as u32;
            self.entries.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.push_front(i);
            return false;
        }
        // Full: recycle the least-recently-used slot.
        let victim = self.tail;
        self.detach(victim);
        let old_key = self.entries[victim as usize].key;
        self.map.remove(&old_key);
        {
            let e = &mut self.entries[victim as usize];
            e.key = key;
            e.value = value;
        }
        self.map.insert(key, victim);
        self.push_front(victim);
        true
    }

    /// Removes every entry whose key matches `pred`, preserving the
    /// recency order of the survivors. Returns how many were removed.
    fn purge(&mut self, pred: &dyn Fn(u128) -> bool) -> usize {
        // Walk MRU → LRU collecting survivors, then rebuild: arbitrary
        // mid-list removal would need a free-list the steady state
        // never wants, and purges are rare (reload / quarantine).
        let mut survivors = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if !pred(e.key) {
                survivors.push((e.key, e.value));
            }
            cur = e.next;
        }
        let removed = self.map.len() - survivors.len();
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
        // Reinsert LRU-first so push_front restores the original order.
        for (key, value) in survivors.into_iter().rev() {
            self.insert(key, value);
        }
        removed
    }
}

/// The sharded cache. Capacity 0 disables it (every lookup misses,
/// inserts are dropped) — counters still run so the STATS surface stays
/// uniform.
pub struct DistanceCache {
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    purged: AtomicU64,
}

impl DistanceCache {
    /// Creates a cache of `capacity` total entries spread over `shards`
    /// (rounded up to a power of two, at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        DistanceCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            shard_mask: shards as u64 - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            purged: AtomicU64::new(0),
        }
    }

    fn key(epoch: u64, backend: u8, s: u32, t: u32) -> u128 {
        ((epoch as u128) << EPOCH_SHIFT)
            | ((backend as u128) << 64)
            | ((s as u128) << 32)
            | t as u128
    }

    fn key_epoch(key: u128) -> u64 {
        (key >> EPOCH_SHIFT) as u64
    }

    fn key_backend(key: u128) -> u8 {
        (key >> 64) as u8
    }

    fn shard_of(&self, key: u128) -> &Mutex<Shard> {
        // SplitMix64-style finaliser over the folded key: cheap, and
        // spreads sequential vertex ids across shards.
        let mut x = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        &self.shards[(x & self.shard_mask) as usize]
    }

    /// Looks up a cached answer. `Some(None)` means "cached as
    /// unreachable".
    #[allow(clippy::option_option)]
    pub fn get(&self, epoch: u64, backend: u8, s: u32, t: u32) -> Option<Option<Dist>> {
        let key = Self::key(epoch, backend, s, t);
        let cached = lock_unpoisoned(self.shard_of(key)).get(key);
        match cached {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(if v == UNREACHABLE { None } else { Some(v) })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches an answer (including "unreachable").
    pub fn insert(&self, epoch: u64, backend: u8, s: u32, t: u32, d: Option<Dist>) {
        let key = Self::key(epoch, backend, s, t);
        let shard = self.shard_of(key);
        let mut guard = lock_unpoisoned(shard);
        if guard.capacity == 0 {
            return;
        }
        let evicted = guard.insert(key, d.unwrap_or(UNREACHABLE));
        drop(guard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn purge(&self, pred: impl Fn(u128) -> bool) -> u64 {
        let mut removed = 0usize;
        for shard in &self.shards {
            removed += lock_unpoisoned(shard).purge(&pred);
        }
        self.purged.fetch_add(removed as u64, Ordering::Relaxed);
        removed as u64
    }

    /// Drops every entry not keyed to `current_epoch`, reclaiming the
    /// capacity held by retired epochs after a hot swap. Connections
    /// still pinned to an old epoch simply miss afterwards — correct,
    /// just cold.
    pub fn purge_stale_epochs(&self, current_epoch: u64) -> u64 {
        let tag = Self::key_epoch(Self::key(current_epoch, 0, 0, 0));
        self.purge(move |key| Self::key_epoch(key) != tag)
    }

    /// Drops every entry one backend wrote under one epoch — called on
    /// quarantine so answers cached before the defect was detected can
    /// never be served from the cache afterwards.
    pub fn purge_backend(&self, epoch: u64, backend: u8) -> u64 {
        let tag = Self::key_epoch(Self::key(epoch, 0, 0, 0));
        self.purge(move |key| Self::key_epoch(key) == tag && Self::key_backend(key) == backend)
    }

    /// Counter snapshot (entry count takes each shard lock briefly).
    pub fn stats(&self) -> CacheStats {
        let mut len = 0;
        let mut capacity = 0;
        for shard in &self.shards {
            let s = lock_unpoisoned(shard);
            len += s.map.len();
            capacity += s.capacity;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            purged: self.purged.load(Ordering::Relaxed),
            len,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_negative_caching() {
        let cache = DistanceCache::new(64, 4);
        assert_eq!(cache.get(0, 1, 2, 3), None);
        cache.insert(0, 1, 2, 3, Some(42));
        cache.insert(0, 1, 3, 2, None);
        assert_eq!(cache.get(0, 1, 2, 3), Some(Some(42)));
        assert_eq!(cache.get(0, 1, 3, 2), Some(None), "negative result cached");
        assert_eq!(cache.get(0, 2, 2, 3), None, "backend is part of the key");
        assert_eq!(cache.get(1, 1, 2, 3), None, "epoch is part of the key");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 3, 2));
        assert!((s.hit_rate() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard of capacity 2 makes the policy observable.
        let cache = DistanceCache::new(2, 1);
        cache.insert(0, 0, 1, 1, Some(1));
        cache.insert(0, 0, 2, 2, Some(2));
        assert_eq!(cache.get(0, 0, 1, 1), Some(Some(1))); // refresh key 1
        cache.insert(0, 0, 3, 3, Some(3)); // evicts key 2
        assert_eq!(cache.get(0, 0, 2, 2), None, "LRU entry evicted");
        assert_eq!(cache.get(0, 0, 1, 1), Some(Some(1)));
        assert_eq!(cache.get(0, 0, 3, 3), Some(Some(3)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = DistanceCache::new(2, 1);
        cache.insert(0, 0, 1, 1, Some(1));
        cache.insert(0, 0, 1, 1, Some(9));
        assert_eq!(cache.get(0, 0, 1, 1), Some(Some(9)));
        assert_eq!(cache.stats().len, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = DistanceCache::new(0, 4);
        cache.insert(0, 0, 1, 1, Some(1));
        assert_eq!(cache.get(0, 0, 1, 1), None);
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().capacity, 0);
    }

    #[test]
    fn purging_stale_epochs_keeps_only_the_current_one() {
        let cache = DistanceCache::new(64, 2);
        for k in 0..8u32 {
            cache.insert(1, 0, k, k, Some(k as Dist));
            cache.insert(2, 0, k, k, Some((k + 100) as Dist));
        }
        let removed = cache.purge_stale_epochs(2);
        assert_eq!(removed, 8, "all epoch-1 entries removed");
        for k in 0..8u32 {
            assert_eq!(cache.get(1, 0, k, k), None, "old epoch gone");
            assert_eq!(cache.get(2, 0, k, k), Some(Some((k + 100) as Dist)));
        }
        assert_eq!(cache.stats().purged, 8);
        assert_eq!(cache.stats().len, 8);
    }

    #[test]
    fn purging_a_backend_spares_the_others_and_recency() {
        let cache = DistanceCache::new(8, 1);
        cache.insert(0, 1, 1, 1, Some(1));
        cache.insert(0, 2, 2, 2, Some(2));
        cache.insert(0, 1, 3, 3, Some(3));
        cache.insert(0, 2, 4, 4, Some(4));
        assert_eq!(cache.purge_backend(0, 1), 2);
        assert_eq!(cache.get(0, 1, 1, 1), None);
        assert_eq!(cache.get(0, 1, 3, 3), None);
        assert_eq!(cache.get(0, 2, 2, 2), Some(Some(2)));
        assert_eq!(cache.get(0, 2, 4, 4), Some(Some(4)));
        let s = cache.stats();
        assert_eq!((s.purged, s.len), (2, 2));
        // Rebuilt shard still evicts its least-recently-used survivor
        // first once refilled: key 2 was refreshed before key 4 above.
        for k in 10..17u32 {
            cache.insert(0, 3, k, k, Some(k as Dist));
        }
        let s = cache.stats();
        assert_eq!(s.len, 8, "shard refilled to capacity");
        assert_eq!(cache.get(0, 2, 2, 2), None, "LRU survivor evicted first");
        assert_eq!(cache.get(0, 2, 4, 4), Some(Some(4)), "MRU survivor kept");
    }

    #[test]
    fn capacity_below_shard_count_still_caches() {
        // 2 requested entries over 8 shards: every shard must get at
        // least one slot (a zero-capacity shard would silently drop
        // whatever hashes into it), so the effective capacity rounds up.
        let cache = DistanceCache::new(2, 8);
        assert_eq!(cache.stats().capacity, 8);
        for k in 0..32u32 {
            cache.insert(0, 0, k, k, Some(k as Dist));
        }
        let s = cache.stats();
        assert_eq!(s.insertions, 32);
        assert!(s.len >= 1, "something must be resident");
        assert!(
            s.len <= s.capacity,
            "len {} > capacity {}",
            s.len,
            s.capacity
        );
        // Residency + evictions accounts for every insertion exactly.
        assert_eq!(s.evictions + s.len as u64, s.insertions);
    }

    #[test]
    fn concurrent_evictions_account_exactly() {
        // Tiny shards under concurrent write pressure: whatever
        // interleaving happens, every insertion either remains resident
        // or was evicted — the counters must balance to the entry.
        let cache = DistanceCache::new(8, 4);
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for round in 0..1_000u32 {
                        let k = worker * 1_000 + round;
                        cache.insert(0, 0, k, k, Some(k as Dist));
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.insertions, 4_000);
        assert!(s.len <= s.capacity);
        assert_eq!(
            s.evictions + s.len as u64,
            s.insertions,
            "evictions {} + len {} != insertions {}",
            s.evictions,
            s.len,
            s.insertions
        );
        // Distinct keys only, so nothing was an in-place refresh and
        // the cache must be full after 4000 inserts into 8 slots.
        assert_eq!(s.len, s.capacity);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        // Values are derived from the key, so any torn or misfiled entry
        // is detectable by every thread.
        let cache = DistanceCache::new(256, 8);
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for round in 0..2_000u32 {
                        let k = (worker * 31 + round) % 97;
                        match cache.get(0, 0, k, k + 1) {
                            Some(v) => assert_eq!(v, Some(k as Dist * 3)),
                            None => cache.insert(0, 0, k, k + 1, Some(k as Dist * 3)),
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.hits > 0);
        assert_eq!(s.hits + s.misses, 8_000);
    }
}
