//! Epoch-based hot index swap.
//!
//! The server never mutates a serving [`Engine`]. Instead every loaded
//! engine lives inside an immutable [`EpochState`] behind an `Arc`, and
//! an [`EpochRegistry`] holds the *current* one. A reload — triggered by
//! the `RELOAD` protocol frame, by `SIGHUP`, or by a change to a watched
//! reload file — builds the replacement engine off-thread, runs the
//! differential self-check against the Dijkstra oracle *before*
//! publication, and only then swaps the `Arc`. Workers pin the epoch
//! they read a request under, so in-flight queries always finish on the
//! engine they started on; the next request a worker reads from any
//! connection is answered by the freshly published epoch. A failed
//! reload publishes nothing: the old epoch keeps serving and the typed
//! failure reason is surfaced in `STATS` as `RELOAD_FAILED`.
//!
//! Quarantine state (set by the [`crate::audit`] auditor) lives on the
//! `EpochState`, not the registry: a freshly published epoch starts
//! with a clean bill of health, because its engine just passed the
//! pre-publication self-check.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::sync::lock_unpoisoned;
use crate::{BackendKind, BackendSpec, Engine};

/// One immutable generation of serving state: an engine plus the
/// health flags the auditor may raise against its backends.
pub struct EpochState {
    /// Monotonic epoch number (the seed engine is epoch 0).
    pub epoch: u64,
    /// The engine answering queries in this epoch.
    pub engine: Arc<Engine>,
    /// Per-backend quarantine flags, indexed by engine position.
    quarantined: Vec<AtomicBool>,
    /// Why each quarantined position was pulled (parallel to
    /// `quarantined`; `None` while healthy).
    reasons: Mutex<Vec<Option<String>>>,
}

impl EpochState {
    /// Wraps `engine` as epoch `epoch` with every backend healthy.
    pub fn new(epoch: u64, engine: Arc<Engine>) -> EpochState {
        let n = engine.backends().len();
        EpochState {
            epoch,
            engine,
            quarantined: (0..n).map(|_| AtomicBool::new(false)).collect(),
            reasons: Mutex::new(vec![None; n]),
        }
    }

    /// Whether the backend at engine position `pos` is quarantined.
    pub fn is_quarantined(&self, pos: usize) -> bool {
        self.quarantined
            .get(pos)
            .map(|q| q.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Quarantines position `pos`. Returns true if this call flipped
    /// the flag (false when it was already quarantined).
    pub fn quarantine(&self, pos: usize, reason: String) -> bool {
        let Some(flag) = self.quarantined.get(pos) else {
            return false;
        };
        let flipped = !flag.swap(true, Ordering::AcqRel);
        if flipped {
            lock_unpoisoned(&self.reasons)[pos] = Some(reason);
        }
        flipped
    }

    /// Human-readable `name: reason` lines for every quarantined
    /// backend, in engine order (for STATS).
    pub fn quarantine_lines(&self) -> Vec<String> {
        let reasons = lock_unpoisoned(&self.reasons);
        self.engine
            .backends()
            .iter()
            .enumerate()
            .filter(|(pos, _)| self.is_quarantined(*pos))
            .map(|(pos, eb)| {
                let why = reasons[pos].as_deref().unwrap_or("unspecified");
                format!("{}: {why}", eb.backend.backend_name())
            })
            .collect()
    }
}

impl fmt::Debug for EpochState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochState")
            .field("epoch", &self.epoch)
            .field("backends", &self.engine.backends().len())
            .field(
                "quarantined",
                &self
                    .quarantined
                    .iter()
                    .map(|q| q.load(Ordering::Relaxed))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A caller-supplied engine source for reloads: invoked off-thread by
/// the reloader, must return a fully built (not yet self-checked)
/// engine. Tests use it to hand the server replacement engines without
/// touching the filesystem.
pub type EngineFactory = dyn Fn() -> Result<Arc<Engine>, String> + Send + Sync;

/// Cloneable, debuggable wrapper so an [`EngineFactory`] can live in
/// the otherwise-`Debug` `ServerConfig`.
#[derive(Clone)]
pub struct ReloadFactory(pub Arc<EngineFactory>);

impl ReloadFactory {
    /// Wraps a closure as a reload source.
    pub fn new<F>(f: F) -> ReloadFactory
    where
        F: Fn() -> Result<Arc<Engine>, String> + Send + Sync + 'static,
    {
        ReloadFactory(Arc::new(f))
    }
}

impl fmt::Debug for ReloadFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ReloadFactory(..)")
    }
}

/// Bookkeeping for [`EpochRegistry::reload_and_wait`]: how many reload
/// attempts have completed and how the latest one ended.
struct Ledger {
    /// Completed reload attempts (successful or not).
    completed: u64,
    /// Outcome of the most recent attempt: `Ok(epoch)` or the reason.
    last: Option<Result<u64, String>>,
}

/// The shared registry: the current [`EpochState`] plus the reload
/// request/completion plumbing between workers and the reloader
/// thread.
pub struct EpochRegistry {
    current: Mutex<Arc<EpochState>>,
    /// Mirror of `current.epoch` readable without the lock — workers
    /// poll this between requests to notice a published swap.
    epoch: AtomicU64,
    /// Set by a RELOAD frame or SIGHUP; consumed by the reloader.
    reload_requested: AtomicBool,
    ledger: Mutex<Ledger>,
    cv: Condvar,
}

impl EpochRegistry {
    /// Starts the registry at epoch 0 on `engine`.
    pub fn new(engine: Arc<Engine>) -> EpochRegistry {
        EpochRegistry {
            current: Mutex::new(Arc::new(EpochState::new(0, engine))),
            epoch: AtomicU64::new(0),
            reload_requested: AtomicBool::new(false),
            ledger: Mutex::new(Ledger {
                completed: 0,
                last: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// The current serving state.
    pub fn current(&self) -> Arc<EpochState> {
        Arc::clone(&lock_unpoisoned(&self.current))
    }

    /// The current epoch number (lock-free; workers poll this).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Flags that a reload should happen (RELOAD frame / SIGHUP path).
    pub fn request_reload(&self) {
        self.reload_requested.store(true, Ordering::SeqCst);
    }

    /// Consumes a pending reload request, if any (reloader side).
    pub fn take_request(&self) -> bool {
        self.reload_requested.swap(false, Ordering::SeqCst)
    }

    /// Publishes `engine` as the next epoch and returns its number.
    /// Only the reloader calls this, after the engine passed its
    /// pre-publication self-check.
    pub fn publish(&self, engine: Arc<Engine>) -> u64 {
        let mut current = lock_unpoisoned(&self.current);
        let next = current.epoch + 1;
        *current = Arc::new(EpochState::new(next, engine));
        // Ordering matters for the no-stale-answer guarantee: the
        // epoch mirror only advances after `current` already holds the
        // new state, so any worker that observes the new number and
        // re-reads `current` gets the new engine (never the old one
        // under a new number).
        self.epoch.store(next, Ordering::SeqCst);
        next
    }

    /// Records the outcome of one reload attempt and wakes every
    /// [`EpochRegistry::reload_and_wait`] caller.
    pub fn complete(&self, outcome: Result<u64, String>) {
        let mut ledger = lock_unpoisoned(&self.ledger);
        ledger.completed += 1;
        ledger.last = Some(outcome);
        self.cv.notify_all();
    }

    /// Requests a reload and blocks until an attempt that started at
    /// or after this call completes (attempts coalesce: two concurrent
    /// RELOAD frames may be satisfied by one rebuild). Returns the new
    /// epoch, or the failure reason, or `Err` on timeout / shutdown
    /// (`cancelled` is polled so a shutting-down server unblocks its
    /// workers).
    pub fn reload_and_wait(
        &self,
        timeout: Duration,
        cancelled: &AtomicBool,
    ) -> Result<u64, String> {
        let target = lock_unpoisoned(&self.ledger).completed + 1;
        self.request_reload();
        let deadline = Instant::now() + timeout;
        let mut ledger = lock_unpoisoned(&self.ledger);
        loop {
            if ledger.completed >= target {
                return ledger
                    .last
                    .clone()
                    .unwrap_or(Err("reload completed without an outcome".into()));
            }
            if cancelled.load(Ordering::SeqCst) {
                return Err("server is shutting down".into());
            }
            if Instant::now() >= deadline {
                return Err(format!("reload timed out after {timeout:.1?}"));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(ledger, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            ledger = guard;
        }
    }
}

impl fmt::Debug for EpochRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochRegistry")
            .field("epoch", &self.epoch())
            .field(
                "reload_requested",
                &self.reload_requested.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// The parsed contents of a watched reload file: which network to load
/// and which serving slots to build over it. Lines (order-free,
/// `#`-comments and blanks skipped):
///
/// ```text
/// net=data/usa          # base path: reads usa.gr + usa.co (optional)
/// backends=ch,alt       # serving set (optional; default: keep current kinds)
/// index=ch=idx/usa.ch   # load a persisted index for one slot (repeatable)
/// poi=fuel=idx/fuel.poi # register a persisted POI set (repeatable)
/// ```
///
/// Without `net=` the replacement engine reuses the currently served
/// network (an index-only swap). Index loads in a reload are strict —
/// no degradation chain: an operator hot-swapping a broken index wants
/// the reload to fail loudly and leave the old epoch serving, not to
/// silently come up degraded.
///
/// Without `poi=` lines the currently registered POI sets carry over:
/// the new epoch re-indexes the same sets against its own hierarchy, so
/// a CH swap never silently drops kNN serving. `poi=` lines replace the
/// whole registered set, and each loaded container's embedded name must
/// match the name in its line.
#[derive(Debug, Clone, Default)]
pub struct ReloadSpec {
    /// DIMACS base path (`<base>.gr` + `<base>.co`), if the network
    /// itself changes.
    pub net: Option<PathBuf>,
    /// Serving set override (empty: keep the current engine's kinds).
    pub backends: Vec<BackendKind>,
    /// Persisted indexes to load for specific slots.
    pub indexes: Vec<BackendSpec>,
    /// POI sets to register, as `(name, container path)` (empty: keep
    /// the currently registered sets).
    pub pois: Vec<(String, PathBuf)>,
}

impl ReloadSpec {
    /// Parses the reload-file format above.
    pub fn parse(text: &str) -> Result<ReloadSpec, String> {
        let mut spec = ReloadSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("reload file line {}: expected key=value", lineno + 1))?;
            match key.trim() {
                "net" => spec.net = Some(PathBuf::from(value.trim())),
                "backends" => {
                    spec.backends = BackendKind::parse_list(value.trim())
                        .map_err(|e| format!("reload file line {}: {e}", lineno + 1))?;
                }
                "index" => {
                    let parsed = BackendSpec::parse(value.trim())
                        .map_err(|e| format!("reload file line {}: {e}", lineno + 1))?;
                    spec.indexes.push(parsed);
                }
                "poi" => {
                    let (name, path) = value.trim().split_once('=').ok_or_else(|| {
                        format!("reload file line {}: poi wants name=path", lineno + 1)
                    })?;
                    if name.trim().is_empty() || path.trim().is_empty() {
                        return Err(format!(
                            "reload file line {}: poi wants name=path",
                            lineno + 1
                        ));
                    }
                    spec.pois
                        .push((name.trim().to_string(), PathBuf::from(path.trim())));
                }
                other => {
                    return Err(format!(
                        "reload file line {}: unknown key '{other}'",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Builds the replacement engine this spec describes, reusing
    /// `current`'s network and backend kinds for anything the spec
    /// leaves unspecified.
    pub fn build(&self, current: &Engine) -> Result<Arc<Engine>, String> {
        let net = match &self.net {
            Some(base) => {
                let shown = base.display();
                let open = |path: PathBuf| {
                    std::fs::File::open(&path)
                        .map(std::io::BufReader::new)
                        .map_err(|e| format!("cannot open {}: {e}", path.display()))
                };
                let gr = open(base.with_extension("gr"))?;
                let co = open(base.with_extension("co"))?;
                spq_graph::dimacs::read(gr, co).map_err(|e| format!("cannot parse {shown}: {e}"))?
            }
            None => current.net().clone(),
        };
        let kinds: Vec<BackendKind> = if self.backends.is_empty() {
            current.backends().iter().map(|b| b.kind).collect()
        } else {
            self.backends.clone()
        };
        let mut specs: Vec<BackendSpec> = kinds.into_iter().map(BackendSpec::built).collect();
        for idx in &self.indexes {
            match specs.iter_mut().find(|s| s.kind == idx.kind) {
                Some(slot) => slot.index = idx.index.clone(),
                None => specs.push(idx.clone()),
            }
        }
        let engine = Engine::build_with_indexes(net, &specs, false)?;
        // POI sets persist across swaps: `poi=` lines replace the set,
        // otherwise the current registrations carry over and are
        // re-indexed against the new epoch's hierarchy.
        let sets: Vec<spq_many::PoiSet> = if self.pois.is_empty() {
            current.poi_sets().iter().map(|e| e.set.clone()).collect()
        } else {
            // Same recovery discipline as index loads: sweep the POI
            // containers' directories for crash debris first, so a torn
            // container fails this (strict) reload with the scan reason
            // instead of a bare parse error.
            match spq_graph::atomic_io::recover_dirs_of(self.pois.iter().map(|(_, p)| p.as_path()))
            {
                Ok(report) => crate::log_recovery(&report),
                Err(e) => eprintln!("[recovery] scan failed: {e}"),
            }
            let mut sets = Vec::with_capacity(self.pois.len());
            for (name, path) in &self.pois {
                let shown = path.display();
                let f =
                    std::fs::File::open(path).map_err(|e| format!("cannot open {shown}: {e}"))?;
                let set = spq_many::PoiSet::read_binary(&mut std::io::BufReader::new(f))
                    .map_err(|e| format!("cannot load POI set {shown}: {e}"))?;
                if set.name() != name {
                    return Err(format!(
                        "POI container {shown} is named '{}', the reload file says '{name}'",
                        set.name()
                    ));
                }
                sets.push(set);
            }
            sets
        };
        engine.register_pois(sets)?;
        Ok(Arc::new(engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_synth::SynthParams;

    fn tiny_engine(seed: u64) -> Arc<Engine> {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(64, seed));
        Arc::new(Engine::build(
            net,
            &[BackendKind::Dijkstra, BackendKind::Ch],
        ))
    }

    #[test]
    fn publish_advances_the_epoch_and_resets_quarantine() {
        let registry = EpochRegistry::new(tiny_engine(1));
        assert_eq!(registry.epoch(), 0);
        let state = registry.current();
        assert!(state.quarantine(1, "audit said so".into()));
        assert!(state.is_quarantined(1));
        assert!(!state.quarantine(1, "again".into()), "already quarantined");
        assert_eq!(state.quarantine_lines(), vec!["CH: audit said so"]);

        let next = registry.publish(tiny_engine(2));
        assert_eq!(next, 1);
        assert_eq!(registry.epoch(), 1);
        let fresh = registry.current();
        assert_eq!(fresh.epoch, 1);
        assert!(!fresh.is_quarantined(1), "new epoch starts healthy");
        assert!(fresh.quarantine_lines().is_empty());
    }

    #[test]
    fn reload_and_wait_sees_the_attempt_outcome() {
        let registry = Arc::new(EpochRegistry::new(tiny_engine(3)));
        let cancelled = AtomicBool::new(false);

        // A mock reloader: waits for the request, publishes, completes.
        let r = Arc::clone(&registry);
        let reloader = std::thread::spawn(move || {
            while !r.take_request() {
                std::thread::sleep(Duration::from_millis(1));
            }
            let epoch = r.publish(tiny_engine(4));
            r.complete(Ok(epoch));
        });
        let got = registry.reload_and_wait(Duration::from_secs(5), &cancelled);
        reloader.join().unwrap();
        assert_eq!(got, Ok(1));
        assert_eq!(registry.epoch(), 1);

        // Failure path: the old epoch stays published.
        let r = Arc::clone(&registry);
        let reloader = std::thread::spawn(move || {
            while !r.take_request() {
                std::thread::sleep(Duration::from_millis(1));
            }
            r.complete(Err("self-check found 8 defect(s)".into()));
        });
        let got = registry.reload_and_wait(Duration::from_secs(5), &cancelled);
        reloader.join().unwrap();
        assert_eq!(got, Err("self-check found 8 defect(s)".into()));
        assert_eq!(registry.epoch(), 1, "failed reload publishes nothing");
    }

    #[test]
    fn reload_and_wait_times_out_and_honours_cancellation() {
        let registry = EpochRegistry::new(tiny_engine(5));
        let cancelled = AtomicBool::new(false);
        let err = registry
            .reload_and_wait(Duration::from_millis(60), &cancelled)
            .unwrap_err();
        assert!(err.contains("timed out"), "{err}");

        cancelled.store(true, Ordering::SeqCst);
        let err = registry
            .reload_and_wait(Duration::from_secs(30), &cancelled)
            .unwrap_err();
        assert!(err.contains("shutting down"), "{err}");
    }

    #[test]
    fn reload_spec_parses_and_rejects() {
        let spec = ReloadSpec::parse(
            "# swap in the rebuilt CH\n\
             backends=ch,alt\n\
             index=ch=idx/usa.ch   # fresh build\n\
             \n\
             net=data/usa\n",
        )
        .unwrap();
        assert_eq!(spec.net.as_deref(), Some(std::path::Path::new("data/usa")));
        assert_eq!(spec.backends, vec![BackendKind::Ch, BackendKind::Alt]);
        assert_eq!(spec.indexes.len(), 1);
        assert_eq!(spec.indexes[0].kind, BackendKind::Ch);

        assert!(ReloadSpec::parse("net data/usa").is_err());
        assert!(ReloadSpec::parse("warp=9").is_err());
        assert!(ReloadSpec::parse("backends=bogus").is_err());
        assert!(ReloadSpec::parse("index=ch").is_err());
    }

    #[test]
    fn reload_spec_build_reuses_the_current_engine_defaults() {
        let current = tiny_engine(6);
        // Empty spec: same net, same kinds, freshly built.
        let rebuilt = ReloadSpec::default().build(&current).unwrap();
        assert_eq!(rebuilt.net().num_nodes(), current.net().num_nodes());
        assert_eq!(rebuilt.backends().len(), current.backends().len());
        for (a, b) in rebuilt.backends().iter().zip(current.backends()) {
            assert_eq!(a.kind, b.kind);
        }
        // Strict index load: a missing file fails the reload outright.
        let spec = ReloadSpec::parse("index=ch=/nonexistent/usa.ch").unwrap();
        let err = spec.build(&current).err().expect("strict load fails");
        assert!(err.contains("cannot load ch index"), "{err}");
    }
}
