//! Continuous oracle auditing.
//!
//! The startup self-check proves an index correct *once*; this module
//! keeps proving it while the server runs. A background auditor thread
//! replays a seeded trickle of distance queries against the Dijkstra
//! oracle every [`AuditConfig::interval`]. A single mismatch is logged
//! and counted; [`AuditConfig::threshold`] mismatches within
//! [`AuditConfig::window`] quarantine the offending backend — its
//! cached answers are purged and its wire ids fail over down the
//! degradation chain (CH, then Dijkstra) until the next reload
//! publishes a fresh, re-checked epoch.
//!
//! Every seed in play is logged, so an audit-triggered quarantine is a
//! reproducible test case, not an anecdote.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_dijkstra::Dijkstra;
use spq_graph::backend::QueryBudget;
use spq_graph::sample::PairSampler;

use crate::cache::DistanceCache;
use crate::epoch::EpochRegistry;
use crate::stats::ServerStats;
use crate::BackendKind;

/// Auditor knobs.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Pause between audit rounds.
    pub interval: Duration,
    /// Query pairs replayed per backend per round.
    pub queries: usize,
    /// Base seed for the audit sampler (each round derives its own
    /// stream, logged on every mismatch for replay).
    pub seed: u64,
    /// Mismatches within [`AuditConfig::window`] that quarantine a
    /// backend.
    pub threshold: usize,
    /// The sliding window the threshold counts over.
    pub window: Duration,
    /// Whether quarantined wire ids fail over down the degradation
    /// chain (false: they answer with the typed `QUARANTINED` status).
    pub failover: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            interval: Duration::from_secs(1),
            queries: 4,
            seed: 0xA0D17,
            threshold: 3,
            window: Duration::from_secs(60),
            failover: true,
        }
    }
}

impl AuditConfig {
    /// The sampler seed for one audit round: derived, not sequential,
    /// so consecutive rounds cover unrelated pair streams.
    pub fn round_seed(&self, round: u64) -> u64 {
        self.seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// The auditor thread body. Runs until `shutdown`; `force_stop` is
/// threaded into every audit query's budget so shutdown never waits on
/// a slow audited query.
pub(crate) fn auditor_loop(
    registry: &EpochRegistry,
    cache: &DistanceCache,
    stats: &ServerStats,
    cfg: &AuditConfig,
    shutdown: &AtomicBool,
    force_stop: &Arc<AtomicBool>,
) {
    let mut oracle: Option<Dijkstra> = None;
    let mut oracle_nodes = 0usize;
    // Mismatch timestamps per (epoch, engine position); entries from
    // superseded epochs are dropped each round.
    let mut windows: HashMap<(u64, usize), Vec<Instant>> = HashMap::new();
    let mut round: u64 = 0;
    loop {
        // Sleep in slices so shutdown is honoured promptly.
        let wake = Instant::now() + cfg.interval;
        while Instant::now() < wake {
            if shutdown.load(Ordering::SeqCst) || crate::server::signalled() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        round += 1;
        let state = registry.current();
        let engine = &state.engine;
        let n = engine.net().num_nodes();
        if n == 0 {
            continue;
        }
        if oracle_nodes != n {
            oracle = Some(Dijkstra::new(n));
            oracle_nodes = n;
        }
        let oracle = oracle.as_mut().expect("created above");
        windows.retain(|(epoch, _), _| *epoch == state.epoch);
        let seed = cfg.round_seed(round);
        let pairs = PairSampler::pairs(n, seed, cfg.queries);
        for (pos, eb) in engine.backends().iter().enumerate() {
            // The oracle cannot disagree with itself, and a quarantined
            // backend is already out of service.
            if eb.kind == BackendKind::Dijkstra || state.is_quarantined(pos) {
                continue;
            }
            let mut session = eb.backend.session(engine.net());
            for &(s, t) in &pairs {
                if shutdown.load(Ordering::SeqCst) || crate::server::signalled() {
                    return;
                }
                session.set_budget(
                    QueryBudget::unlimited()
                        .with_kill_flag(Arc::clone(force_stop))
                        .with_deadline(Instant::now() + Duration::from_secs(2)),
                );
                let got = session.distance(s, t);
                if session.interrupted() {
                    // An aborted audit query proves nothing either way.
                    continue;
                }
                oracle.run_to_target(engine.net(), s, t);
                let expected = oracle.distance(t);
                stats.audit_checked.fetch_add(1, Ordering::Relaxed);
                if got == expected {
                    continue;
                }
                stats.audit_mismatches.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[audit] {} MISMATCH: distance({s}, {t}) = {got:?}, oracle {expected:?} \
                     (epoch {}, round {round}, seed {seed:#x})",
                    eb.backend.backend_name(),
                    state.epoch,
                );
                let hits = windows.entry((state.epoch, pos)).or_default();
                let now = Instant::now();
                hits.retain(|&at| now.duration_since(at) <= cfg.window);
                hits.push(now);
                if hits.len() >= cfg.threshold {
                    let reason = format!(
                        "audit found {} mismatch(es) within {:?} (round {round}, seed {seed:#x})",
                        hits.len(),
                        cfg.window
                    );
                    if state.quarantine(pos, reason) {
                        let mut purged = cache.purge_backend(state.epoch, eb.kind.wire_id());
                        for &alias in &eb.aliases {
                            purged += cache.purge_backend(state.epoch, alias);
                        }
                        eprintln!(
                            "[audit] QUARANTINED {} (epoch {}): {} cached answers purged, \
                             wire id {} fails over",
                            eb.backend.backend_name(),
                            state.epoch,
                            purged,
                            eb.kind.wire_id(),
                        );
                    }
                    break; // this backend is out; audit the next one
                }
            }
        }
        stats.audit_rounds.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_seeds_differ_but_replay() {
        let cfg = AuditConfig::default();
        assert_eq!(cfg.round_seed(3), cfg.round_seed(3), "replayable");
        assert_ne!(cfg.round_seed(1), cfg.round_seed(2));
        let a = PairSampler::pairs(100, cfg.round_seed(1), 8);
        let b = PairSampler::pairs(100, cfg.round_seed(1), 8);
        assert_eq!(a, b);
    }
}
