//! The torture harness: randomized multi-fault schedules against real
//! `spq` child processes, all derived from one seed.
//!
//! Each round draws a schedule of fault events — prep torn mid-write
//! (via the [`atomic_io`](spq_graph::atomic_io) crash hook), index
//! bytes flipped or truncated on disk, orphaned temp debris, the
//! server SIGKILLed during startup / serving / reload / drain, byte
//! chaos on the wire through [`ByteProxy`] — executes them against a
//! scratch directory, then asserts the recovery property:
//!
//! 1. a fresh `spq serve` over the surviving state **must come up**
//!    within the startup budget (clean load, or typed quarantine plus
//!    the degradation chain — never a crash, never a hang);
//! 2. every oracle-checked answer it gives must be correct;
//! 3. no child may die of a panic, and every wait is bounded.
//!
//! Disk faults replay exactly from the seed. Kill timing is inherently
//! racy (the OS schedules the signal), so schedules pin kills to fixed
//! small delays — a replay exercises the same fault at approximately
//! the same point, which in practice re-trips the same bugs.
//!
//! On failure the harness re-runs a greedy delta-debugging minimizer so
//! CI reports the *smallest* schedule that still fails, plus the seed
//! that regenerates it.

use std::fmt;
use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use spq_dijkstra::Dijkstra;
use spq_graph::atomic_io::{self, CrashStage, CRASH_ENV};
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_queries::shapes::{self, ShapeGenParams, Workload};

use crate::byteproxy::{ByteFaultPlan, ByteProxy};
use crate::client::{ClientError, ServeClient};
use crate::BackendKind;

/// When during the server's life the SIGKILL lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Right after spawn, racing index load and the self-check.
    Startup,
    /// After this many served requests, mid request stream.
    Serving(u32),
    /// Milliseconds after a RELOAD frame is sent, racing the rebuild.
    Reload(u64),
    /// Milliseconds after SHUTDOWN is sent, racing the graceful drain.
    Drain(u64),
}

/// One fault in a torture schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Run `spq prep` with the crash hook armed: the child aborts at
    /// `stage` of its `nth` atomic write, leaving whatever debris that
    /// stage leaves.
    TornPrep { stage: CrashStage, nth: u64 },
    /// XOR one byte of the index file at `pos_permille`/1000 of its
    /// length (no-op if the file is missing).
    FlipIndexByte { pos_permille: u32, xor: u8 },
    /// Truncate the index file to `keep_permille`/1000 of its length.
    TruncateIndex { keep_permille: u32 },
    /// Drop a stray `.tmp` file (simulated crash debris from an
    /// unrelated writer) into the index directory.
    OrphanTemp { bytes: u32 },
    /// Start a server over the current state and SIGKILL it.
    KillServe(KillPoint),
    /// Serve through a [`ByteProxy`] whose per-window faults derive
    /// from `plan_seed`, driving `requests` queries into the chaos.
    WireChaos { plan_seed: u64, requests: u32 },
    /// Start a server under a squeezed `RLIMIT_NOFILE` (via the
    /// `SPQ_FD_LIMIT` env hook) and open `conns` connections into it:
    /// past the limit the server must shed with typed BUSY or a clean
    /// refusal — never crash — and must recover once the herd leaves.
    FdSqueeze { limit: u32, conns: u32 },
    /// Run `spq prep` with ENOSPC injected from its `from_nth` atomic
    /// write (the `SPQ_FAULT_ENOSPC` env hook). The failed write must
    /// be typed and non-fatal; the post-schedule recovery server judges
    /// what the debris did.
    DiskFull { from_nth: u64 },
    /// Start a server under a `--mem-budget` of `kib` KiB and drive
    /// oracle-checked queries through it: budget pressure may slow
    /// serving, never corrupt an answer.
    MemSqueeze { kib: u32 },
    /// Start a server with a tight write-backlog cap and park `conns`
    /// never-reading peers each pipelining `frames` large DISTANCES
    /// batches; a well-behaved client must keep getting correct answers
    /// while the hoarders are force-closed.
    SlowReader { conns: u32, frames: u32 },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::TornPrep { stage, nth } => {
                write!(f, "torn-prep(stage={}, nth={nth})", stage.as_str())
            }
            FaultEvent::FlipIndexByte { pos_permille, xor } => {
                write!(f, "flip-index(pos={pos_permille}‰, xor={xor:#04x})")
            }
            FaultEvent::TruncateIndex { keep_permille } => {
                write!(f, "truncate-index(keep={keep_permille}‰)")
            }
            FaultEvent::OrphanTemp { bytes } => write!(f, "orphan-temp({bytes}B)"),
            FaultEvent::KillServe(point) => match point {
                KillPoint::Startup => write!(f, "kill-serve(startup)"),
                KillPoint::Serving(n) => write!(f, "kill-serve(after {n} requests)"),
                KillPoint::Reload(ms) => write!(f, "kill-serve({ms}ms into reload)"),
                KillPoint::Drain(ms) => write!(f, "kill-serve({ms}ms into drain)"),
            },
            FaultEvent::WireChaos {
                plan_seed,
                requests,
            } => write!(f, "wire-chaos(seed={plan_seed:#x}, requests={requests})"),
            FaultEvent::FdSqueeze { limit, conns } => {
                write!(f, "fd-squeeze(limit={limit}, conns={conns})")
            }
            FaultEvent::DiskFull { from_nth } => write!(f, "disk-full(from-write={from_nth})"),
            FaultEvent::MemSqueeze { kib } => write!(f, "mem-squeeze({kib}KiB)"),
            FaultEvent::SlowReader { conns, frames } => {
                write!(f, "slow-reader(conns={conns}, frames={frames})")
            }
        }
    }
}

/// Torture-run knobs.
#[derive(Debug, Clone)]
pub struct TortureOptions {
    /// The `spq` binary to orchestrate (normally `current_exe()`).
    pub spq_bin: PathBuf,
    /// Scratch directory; each round gets its own subdirectory.
    pub dir: PathBuf,
    /// Master seed: the printed reproduction handle.
    pub seed: u64,
    /// Fault schedules to run.
    pub rounds: usize,
    /// Synthetic network size (vertices).
    pub target: usize,
    /// Run the schedule minimizer on the first failing round.
    pub minimize: bool,
    /// How long a fresh server may take to come up before the round is
    /// declared hung.
    pub startup_timeout: Duration,
    /// Socket read/write bound on every torture client.
    pub io_timeout: Duration,
    /// Where to write the failure artifact (seed + minimized schedule)
    /// when a round fails.
    pub artifact: Option<PathBuf>,
    /// Resource-exhaustion mode: every round runs a seeded shuffle of
    /// *all four* resource faults (fd squeeze, disk full, memory
    /// squeeze, slow readers) instead of the general schedule — the
    /// combined-pressure acceptance drill, still fully replayable from
    /// the master seed.
    pub resource: bool,
}

impl Default for TortureOptions {
    fn default() -> Self {
        TortureOptions {
            spq_bin: PathBuf::from("spq"),
            dir: PathBuf::from("torture-scratch"),
            seed: 0x0070_4742,
            rounds: 4,
            target: 400,
            minimize: true,
            startup_timeout: Duration::from_secs(60),
            io_timeout: Duration::from_secs(10),
            artifact: None,
            resource: false,
        }
    }
}

/// One round's verdict.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Round index (its seed is `mix of (master seed, round)`).
    pub round: usize,
    /// The schedule that ran.
    pub schedule: Vec<FaultEvent>,
    /// The property violation, if the round failed.
    pub failure: Option<String>,
    /// The minimized still-failing schedule, when minimization ran.
    pub minimized: Option<Vec<FaultEvent>>,
}

/// The full run's verdict.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// The master seed (rerunning with it regenerates every schedule).
    pub seed: u64,
    /// Whether this campaign ran the resource-exhaustion schedules
    /// (the reproduction line must carry the flag to replay).
    pub resource: bool,
    /// Per-round outcomes.
    pub rounds: Vec<RoundOutcome>,
}

impl TortureReport {
    /// Number of failed rounds.
    pub fn failures(&self) -> usize {
        self.rounds.iter().filter(|r| r.failure.is_some()).count()
    }

    /// Human-readable summary, ending with the reproduction line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rounds {
            out.push_str(&format!("round {} seed={:#x}:\n", r.round, self.seed));
            for e in &r.schedule {
                out.push_str(&format!("  - {e}\n"));
            }
            match &r.failure {
                None => out.push_str("  PASS\n"),
                Some(f) => {
                    out.push_str(&format!("  FAIL: {f}\n"));
                    if let Some(min) = &r.minimized {
                        out.push_str(&format!("  minimized to {} event(s):\n", min.len()));
                        for e in min {
                            out.push_str(&format!("    - {e}\n"));
                        }
                    }
                }
            }
        }
        out.push_str(&format!(
            "torture: {} round(s), {} failure(s), seed={:#x}\n",
            self.rounds.len(),
            self.failures(),
            self.seed
        ));
        if self.failures() > 0 {
            out.push_str(&format!(
                "reproduce with: spq torture --seed {} --rounds {}{}\n",
                self.seed,
                self.rounds.len(),
                if self.resource { " --resource" } else { "" }
            ));
        }
        out
    }
}

/// SplitMix64 finalizer: decorrelates per-round seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws one round's schedule (1..=4 events) from its seed.
pub fn gen_schedule(round_seed: u64) -> Vec<FaultEvent> {
    let mut rng = StdRng::seed_from_u64(round_seed);
    let len = rng.random_range(1..=4usize);
    (0..len)
        .map(|_| match rng.random_range(0..11u32) {
            0 => FaultEvent::TornPrep {
                stage: CrashStage::ALL[rng.random_range(0..CrashStage::ALL.len())],
                nth: rng.random_range(0..2),
            },
            1 => FaultEvent::FlipIndexByte {
                pos_permille: rng.random_range(0..1000),
                xor: rng.random_range(1..=255) as u8,
            },
            2 => FaultEvent::TruncateIndex {
                keep_permille: rng.random_range(0..1000),
            },
            3 => FaultEvent::OrphanTemp {
                bytes: rng.random_range(0..4096),
            },
            4 | 5 => FaultEvent::KillServe(match rng.random_range(0..4u32) {
                0 => KillPoint::Startup,
                1 => KillPoint::Serving(rng.random_range(1..24)),
                2 => KillPoint::Reload(rng.random_range(0..40)),
                _ => KillPoint::Drain(rng.random_range(0..30)),
            }),
            6 => FaultEvent::WireChaos {
                plan_seed: rng.random(),
                requests: rng.random_range(8..=24),
            },
            7 => FaultEvent::FdSqueeze {
                // The floor leaves the server its own baseline fds
                // (listener, epoll, eventfds, the emergency reserve);
                // everything above it is connection capacity to fight
                // over.
                limit: rng.random_range(20..=40),
                conns: rng.random_range(8..=24),
            },
            8 => FaultEvent::DiskFull {
                from_nth: rng.random_range(0..3),
            },
            9 => FaultEvent::MemSqueeze {
                kib: rng.random_range(64..=512),
            },
            _ => FaultEvent::SlowReader {
                conns: rng.random_range(2..=4),
                frames: rng.random_range(8..=16),
            },
        })
        .collect()
}

/// Draws one resource-mode round: a seeded shuffle of all four
/// resource faults, so every round combines fd squeeze + disk full +
/// memory squeeze + slow readers in a seed-determined order.
pub fn gen_resource_schedule(round_seed: u64) -> Vec<FaultEvent> {
    let mut rng = StdRng::seed_from_u64(round_seed ^ 0x5e50_4243);
    let mut events = vec![
        FaultEvent::FdSqueeze {
            limit: rng.random_range(20..=40),
            conns: rng.random_range(8..=24),
        },
        FaultEvent::DiskFull {
            from_nth: rng.random_range(0..3),
        },
        FaultEvent::MemSqueeze {
            kib: rng.random_range(64..=512),
        },
        FaultEvent::SlowReader {
            conns: rng.random_range(2..=4),
            frames: rng.random_range(8..=16),
        },
    ];
    // Fisher–Yates off the same stream: the order varies per round,
    // the coverage (all four modes) never does.
    for i in (1..events.len()).rev() {
        let j = rng.random_range(0..=i);
        events.swap(i, j);
    }
    events
}

/// Greedy delta-debugging: repeatedly drops single events while the
/// predicate still reports failure, within `budget` re-runs. Returns
/// the smallest still-failing schedule found.
pub fn minimize_schedule<F>(
    events: &[FaultEvent],
    mut still_fails: F,
    budget: usize,
) -> Vec<FaultEvent>
where
    F: FnMut(&[FaultEvent]) -> bool,
{
    let mut current = events.to_vec();
    let mut spent = 0usize;
    let mut progress = true;
    while progress && current.len() > 1 && spent < budget {
        progress = false;
        let mut i = 0;
        while i < current.len() && spent < budget {
            let mut candidate = current.clone();
            candidate.remove(i);
            spent += 1;
            if still_fails(&candidate) {
                current = candidate;
                progress = true;
                // Re-test from the start of the shrunk schedule.
                i = 0;
            } else {
                i += 1;
            }
        }
    }
    current
}

// ---------------------------------------------------------------------------
// Child-process plumbing
// ---------------------------------------------------------------------------

/// A spawned `spq serve` child with its stdout lines streamed through a
/// channel (for the `listening on ADDR` handshake) and stderr collected
/// for post-mortem (panic scan, failure context).
struct ChildServer {
    child: Child,
    stdout_rx: mpsc::Receiver<String>,
    stderr: Arc<Mutex<String>>,
}

/// Cap on collected child stderr, so a log-spamming child cannot OOM
/// the orchestrator.
const STDERR_CAP: usize = 64 * 1024;

impl ChildServer {
    fn spawn(
        opts: &TortureOptions,
        args: &[String],
        env: &[(String, String)],
    ) -> Result<ChildServer, String> {
        let mut cmd = Command::new(&opts.spq_bin);
        cmd.args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {} {args:?}: {e}", opts.spq_bin.display()))?;
        let (tx, rx) = mpsc::channel();
        let stdout = child.stdout.take().expect("stdout was piped");
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        let stderr = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&stderr);
        let err = child.stderr.take().expect("stderr was piped");
        std::thread::spawn(move || {
            for line in BufReader::new(err).lines().map_while(Result::ok) {
                let mut buf = sink.lock().unwrap_or_else(|p| p.into_inner());
                if buf.len() < STDERR_CAP {
                    buf.push_str(&line);
                    buf.push('\n');
                }
            }
        });
        Ok(ChildServer {
            child,
            stdout_rx: rx,
            stderr,
        })
    }

    /// Waits for the `listening on ADDR` line, bounded by `timeout`.
    fn wait_listening(&mut self, timeout: Duration) -> Result<SocketAddr, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(format!(
                    "server did not report 'listening on' within {timeout:?} (hang)"
                ));
            }
            match self.stdout_rx.recv_timeout(deadline - now) {
                Ok(line) => {
                    if let Some(rest) = line.strip_prefix("listening on ") {
                        return rest
                            .trim()
                            .parse()
                            .map_err(|e| format!("cannot parse listen addr '{rest}': {e}"));
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(format!(
                        "server did not report 'listening on' within {timeout:?} (hang)"
                    ))
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Child exited (or closed stdout) before listening.
                    let status = self.wait_bounded(Duration::from_secs(5))?;
                    return Err(format!(
                        "server exited before listening ({status}); stderr tail:\n{}",
                        self.stderr_tail()
                    ));
                }
            }
        }
    }

    /// Polls the child until it exits, bounded; kills it on timeout.
    fn wait_bounded(&mut self, timeout: Duration) -> Result<ExitStatus, String> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Ok(status),
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = self.child.kill();
                        let _ = self.child.wait();
                        return Err(format!("server did not exit within {timeout:?} (hang)"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("wait: {e}")),
            }
        }
    }

    /// SIGKILLs the child and reaps it.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn stderr_tail(&self) -> String {
        let buf = self.stderr.lock().unwrap_or_else(|p| p.into_inner());
        let tail_at = buf.len().saturating_sub(2048);
        buf[tail_at..].to_string()
    }

    /// The recovery property forbids panics outright — a panicking
    /// worker is supervised in-process, but a panic that reaches a
    /// child's stderr means something escaped the blast shield.
    fn panic_check(&self) -> Result<(), String> {
        let buf = self.stderr.lock().unwrap_or_else(|p| p.into_inner());
        if buf.contains("panicked at") {
            let tail_at = buf.len().saturating_sub(2048);
            return Err(format!("child panicked; stderr tail:\n{}", &buf[tail_at..]));
        }
        Ok(())
    }
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        // Never leak a serve child past its round.
        if matches!(self.child.try_wait(), Ok(None) | Err(_)) {
            self.kill();
        }
    }
}

/// Runs a short-lived `spq` subcommand (generate / prep) to completion,
/// bounded; returns its exit status.
fn run_spq(
    opts: &TortureOptions,
    args: &[String],
    env: &[(String, String)],
    timeout: Duration,
) -> Result<ExitStatus, String> {
    let mut child = ChildServer::spawn(opts, args, env)?;
    child.wait_bounded(timeout)
}

// ---------------------------------------------------------------------------
// The round executor
// ---------------------------------------------------------------------------

/// Everything shared across rounds: the network both the children and
/// the oracle load, the query pairs, and the persisted workload shapes.
struct TortureEnv {
    net: RoadNetwork,
    net_base: String,
    pairs: Vec<(NodeId, NodeId)>,
    workload: Workload,
}

fn serve_args(net_base: &str, index: &Path, extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "serve".to_string(),
        "--net".to_string(),
        net_base.to_string(),
        "--backends".to_string(),
        "dijkstra,ch".to_string(),
        "--index".to_string(),
        format!("ch={}", index.display()),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--workers".to_string(),
        "2".to_string(),
        // Two event-loop shards: the torture rounds double as a
        // SIGKILL-under-load test of the sharded server.
        "--shards".to_string(),
        "2".to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

/// Applies one fault event to the round's state.
fn apply_event(
    opts: &TortureOptions,
    env: &TortureEnv,
    round_dir: &Path,
    index: &Path,
    event: FaultEvent,
) -> Result<(), String> {
    match event {
        FaultEvent::TornPrep { stage, nth } => {
            // The child aborts at the armed stage (or completes if its
            // write count never reaches `nth`); both are valid outcomes
            // — the property under test is what the *next* server does
            // with the debris.
            let args: Vec<String> = ["prep", "--net", &env.net_base, "--kind", "ch", "--out"]
                .iter()
                .map(|s| s.to_string())
                .chain([index.display().to_string()])
                .collect();
            let hook = format!("{}:{nth}", stage.as_str());
            run_spq(
                opts,
                &args,
                &[(CRASH_ENV.to_string(), hook)],
                Duration::from_secs(120),
            )?;
            Ok(())
        }
        FaultEvent::FlipIndexByte { pos_permille, xor } => {
            let Ok(mut bytes) = fs::read(index) else {
                return Ok(()); // nothing to corrupt
            };
            if bytes.is_empty() {
                return Ok(());
            }
            let pos = ((bytes.len() as u64 * pos_permille as u64) / 1000) as usize;
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= xor;
            fs::write(index, bytes).map_err(|e| format!("flip {}: {e}", index.display()))
        }
        FaultEvent::TruncateIndex { keep_permille } => {
            let Ok(bytes) = fs::read(index) else {
                return Ok(());
            };
            let keep = ((bytes.len() as u64 * keep_permille as u64) / 1000) as usize;
            fs::write(index, &bytes[..keep])
                .map_err(|e| format!("truncate {}: {e}", index.display()))
        }
        FaultEvent::OrphanTemp { bytes } => {
            let debris = round_dir.join("ch.idx.9999.0.tmp");
            fs::write(&debris, vec![0xAB; bytes as usize])
                .map_err(|e| format!("orphan {}: {e}", debris.display()))
        }
        FaultEvent::KillServe(point) => kill_serve(opts, env, round_dir, index, point),
        FaultEvent::WireChaos {
            plan_seed,
            requests,
        } => wire_chaos(opts, env, index, plan_seed, requests),
        FaultEvent::FdSqueeze { limit, conns } => fd_squeeze(opts, env, index, limit, conns),
        FaultEvent::DiskFull { from_nth } => {
            // Re-run prep with ENOSPC injected from its from_nth-th
            // atomic write. The child may fail (typed) or complete if
            // it needs fewer writes; either way the failure must stay
            // non-fatal and the post-schedule recovery server judges
            // the debris.
            let args: Vec<String> = ["prep", "--net", &env.net_base, "--kind", "ch", "--out"]
                .iter()
                .map(|s| s.to_string())
                .chain([index.display().to_string()])
                .collect();
            run_spq(
                opts,
                &args,
                &[(atomic_io::ENOSPC_ENV.to_string(), from_nth.to_string())],
                Duration::from_secs(120),
            )?;
            Ok(())
        }
        FaultEvent::MemSqueeze { kib } => mem_squeeze(opts, env, index, kib),
        FaultEvent::SlowReader { conns, frames } => {
            slow_reader_event(opts, env, index, conns, frames)
        }
    }
}

/// Issues oracle-checked distance queries against a live server. A
/// typed error is tolerated only when `allow_typed` (mid-fault); a
/// wrong answer never is.
fn checked_distances(
    env: &TortureEnv,
    client: &mut ServeClient,
    backend: BackendKind,
    count: usize,
    offset: usize,
    allow_typed: bool,
) -> Result<(), String> {
    let mut oracle = Dijkstra::new(env.net.num_nodes());
    for i in 0..count {
        let (s, t) = env.pairs[(offset + i * 7) % env.pairs.len()];
        match client.distance(backend, s, t) {
            Ok(got) => {
                oracle.run_to_target(&env.net, s, t);
                let expected = oracle.distance(t);
                if got != expected {
                    return Err(format!(
                        "WRONG ANSWER: {} distance({s}, {t}) = {got:?}, oracle {expected:?}",
                        backend.name()
                    ));
                }
            }
            Err(ClientError::Io(_)) if allow_typed => return Ok(()), // connection died mid-fault
            Err(e) if allow_typed && !matches!(e, ClientError::Protocol(_)) => {}
            Err(e) => return Err(format!("{} query failed: {e}", backend.name())),
        }
    }
    Ok(())
}

fn kill_serve(
    opts: &TortureOptions,
    env: &TortureEnv,
    round_dir: &Path,
    index: &Path,
    point: KillPoint,
) -> Result<(), String> {
    let reload_spec = round_dir.join("reload.spec");
    let mut extra: Vec<String> = Vec::new();
    if matches!(point, KillPoint::Reload(_)) {
        fs::write(&reload_spec, format!("index=ch={}\n", index.display()))
            .map_err(|e| format!("write {}: {e}", reload_spec.display()))?;
        extra.push("--reload-file".into());
        extra.push(reload_spec.display().to_string());
    }
    let extra_refs: Vec<&str> = extra.iter().map(String::as_str).collect();
    let args = serve_args(&env.net_base, index, &extra_refs);
    let mut child = ChildServer::spawn(opts, &args, &[])?;
    match point {
        KillPoint::Startup => {
            // Race the index load / recovery scan / self-check.
            std::thread::sleep(Duration::from_millis(30));
            child.kill();
        }
        KillPoint::Serving(n) => {
            let addr = child.wait_listening(opts.startup_timeout)?;
            if let Ok(mut c) = ServeClient::connect(addr) {
                let _ = c.set_io_timeout(Some(opts.io_timeout));
                // Mid-fault traffic: answers must be correct or typed,
                // and must never hang; the connection dying under
                // SIGKILL is expected.
                checked_distances(env, &mut c, BackendKind::Dijkstra, n as usize, 0, true)?;
            }
            child.kill();
        }
        KillPoint::Reload(ms) => {
            let addr = child.wait_listening(opts.startup_timeout)?;
            let reloader = std::thread::spawn(move || {
                if let Ok(mut c) = ServeClient::connect(addr) {
                    let _ = c.set_io_timeout(Some(Duration::from_secs(5)));
                    let _ = c.reload(); // racing the SIGKILL: any outcome goes
                }
            });
            std::thread::sleep(Duration::from_millis(ms));
            child.kill();
            let _ = reloader.join();
        }
        KillPoint::Drain(ms) => {
            let addr = child.wait_listening(opts.startup_timeout)?;
            if let Ok(mut c) = ServeClient::connect(addr) {
                let _ = c.set_io_timeout(Some(opts.io_timeout));
                let _ = c.shutdown_server();
            }
            std::thread::sleep(Duration::from_millis(ms));
            child.kill();
        }
    }
    child.panic_check()
}

fn wire_chaos(
    opts: &TortureOptions,
    env: &TortureEnv,
    index: &Path,
    plan_seed: u64,
    requests: u32,
) -> Result<(), String> {
    let args = serve_args(&env.net_base, index, &[]);
    let mut child = ChildServer::spawn(opts, &args, &[])?;
    let addr = child.wait_listening(opts.startup_timeout)?;
    // Faults land on the request direction only: a flipped request byte
    // changes *which* query the server sees, so correctness can only be
    // judged on the clean connection afterwards. Response-direction
    // faults would corrupt answers in flight and blame the server.
    let plan = ByteFaultPlan {
        seed: plan_seed,
        split_prob: 0.5,
        stall_prob: 0.2,
        stall: Duration::from_millis(40),
        flip_prob: 0.15,
        dup_prob: 0.1,
        kill_prob: 0.15,
        fault_upstream: true,
        fault_downstream: false,
    };
    let stall = plan.stall;
    let proxy = ByteProxy::start(addr, plan).map_err(|e| format!("start proxy: {e}"))?;
    let via = proxy.local_addr();
    for i in 0..requests {
        // Fresh connection per request: each gets its own fault stream.
        let Ok(mut c) = ServeClient::connect(via) else {
            continue;
        };
        let _ = c.set_io_timeout(Some(opts.io_timeout));
        let (s, t) = env.pairs[i as usize % env.pairs.len()];
        let started = Instant::now();
        // Any result is legal here except a hang past the bound: the
        // request bytes may have been mangled arbitrarily.
        let _ = c.distance(BackendKind::Dijkstra, s, t);
        let waited = started.elapsed();
        if waited > opts.io_timeout + stall + Duration::from_secs(5) {
            proxy.stop();
            child.kill();
            return Err(format!(
                "request hung for {waited:?} under wire chaos (bound {:?})",
                opts.io_timeout
            ));
        }
    }
    let chaos_counters = proxy.counters();
    proxy.stop();
    // The server must still answer correctly on a clean connection.
    let mut clean =
        ServeClient::connect(addr).map_err(|e| format!("clean connect after chaos: {e}"))?;
    clean
        .set_io_timeout(Some(opts.io_timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    checked_distances(env, &mut clean, BackendKind::Dijkstra, 8, 3, false)
        .map_err(|e| format!("after wire chaos ({chaos_counters:?}): {e}"))?;
    let _ = clean.shutdown_server();
    let status = child.wait_bounded(Duration::from_secs(30))?;
    child.panic_check()?;
    if !status.success() {
        return Err(format!(
            "server exited {status} after wire chaos; stderr tail:\n{}",
            child.stderr_tail()
        ));
    }
    Ok(())
}

/// Starts a server whose `RLIMIT_NOFILE` is squeezed to `limit` (the
/// `SPQ_FD_LIMIT` env hook, honored at serve startup) and drives a herd
/// of `conns` connections into it. Every outcome must be typed: a
/// served PING, a BUSY shed, or a clean kernel-level refusal — never a
/// crash, never a hang. Once the herd leaves, the server must accept
/// and answer correctly again.
fn fd_squeeze(
    opts: &TortureOptions,
    env: &TortureEnv,
    index: &Path,
    limit: u32,
    conns: u32,
) -> Result<(), String> {
    let args = serve_args(&env.net_base, index, &[]);
    let fd_env = [(
        crate::eventloop::FD_LIMIT_ENV.to_string(),
        limit.to_string(),
    )];
    let mut child = ChildServer::spawn(opts, &args, &fd_env)?;
    let addr = child.wait_listening(opts.startup_timeout)?;
    let mut herd = Vec::new();
    let mut shed = 0u32;
    for _ in 0..conns {
        match ServeClient::connect(addr) {
            Ok(mut c) => {
                let _ = c.set_io_timeout(Some(opts.io_timeout));
                match c.ping() {
                    Ok(()) => herd.push(c),
                    Err(ClientError::Busy(_)) => shed += 1,
                    // Accept failing at the kernel surfaces to the peer
                    // as a reset/EOF — a clean refusal, not a protocol
                    // violation.
                    Err(ClientError::Io(_)) => shed += 1,
                    Err(e) => {
                        child.kill();
                        return Err(format!("fd-squeeze: untyped failure under fd limit: {e}"));
                    }
                }
            }
            Err(_) => shed += 1,
        }
    }
    eprintln!(
        "[torture]   fd-squeeze: {} served, {shed} shed at limit {limit}",
        herd.len()
    );
    drop(herd);
    // The herd's fds are back; accept capacity must recover (the accept
    // backoff caps at 500ms, so a few retries cover it).
    let mut clean = None;
    for _ in 0..50 {
        if let Ok(c) = ServeClient::connect(addr) {
            clean = Some(c);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let Some(mut clean) = clean else {
        child.kill();
        return Err(
            "fd-squeeze: server never recovered accept capacity after the herd left".into(),
        );
    };
    clean
        .set_io_timeout(Some(opts.io_timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    checked_distances(env, &mut clean, BackendKind::Dijkstra, 8, 2, false)
        .map_err(|e| format!("after fd squeeze: {e}"))?;
    let _ = clean.shutdown_server();
    let status = child.wait_bounded(Duration::from_secs(30))?;
    child.panic_check()?;
    if !status.success() {
        return Err(format!(
            "server exited {status} after fd squeeze; stderr tail:\n{}",
            child.stderr_tail()
        ));
    }
    Ok(())
}

/// Starts a server under a `--mem-budget` of `kib` KiB and drives
/// oracle-checked queries on both backends: budget pressure may pause
/// reads, it must never corrupt an answer or wedge the server.
fn mem_squeeze(
    opts: &TortureOptions,
    env: &TortureEnv,
    index: &Path,
    kib: u32,
) -> Result<(), String> {
    let bytes = (kib as u64 * 1024).to_string();
    let args = serve_args(&env.net_base, index, &["--mem-budget", &bytes]);
    let mut child = ChildServer::spawn(opts, &args, &[])?;
    let addr = child.wait_listening(opts.startup_timeout)?;
    let mut client = ServeClient::connect(addr).map_err(|e| format!("mem-squeeze connect: {e}"))?;
    client
        .set_io_timeout(Some(opts.io_timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    checked_distances(env, &mut client, BackendKind::Dijkstra, 10, 0, false)
        .map_err(|e| format!("under a {kib}KiB mem budget: {e}"))?;
    checked_distances(env, &mut client, BackendKind::Ch, 10, 4, false)
        .map_err(|e| format!("under a {kib}KiB mem budget: {e}"))?;
    let _ = client.shutdown_server();
    let status = child.wait_bounded(Duration::from_secs(30))?;
    child.panic_check()?;
    if !status.success() {
        return Err(format!(
            "server exited {status} under mem budget; stderr tail:\n{}",
            child.stderr_tail()
        ));
    }
    Ok(())
}

/// Starts a server with a tight write-backlog cap and a short write
/// timeout, parks `conns` never-reading peers each pipelining `frames`
/// large DISTANCES requests, and requires a well-behaved client to keep
/// getting correct answers while the hoarders are force-closed.
fn slow_reader_event(
    opts: &TortureOptions,
    env: &TortureEnv,
    index: &Path,
    conns: u32,
    frames: u32,
) -> Result<(), String> {
    let args = serve_args(
        &env.net_base,
        index,
        &["--wbuf-cap", "65536", "--write-timeout-ms", "300"],
    );
    let mut child = ChildServer::spawn(opts, &args, &[])?;
    let addr = child.wait_listening(opts.startup_timeout)?;

    // One 8×32768 DISTANCES request: a ~2MiB response from ~128KiB of
    // request, so a handful of pipelined frames outgrow the kernel's
    // socket buffers and force the server's own backlog cap to act.
    // CH's native many-to-many kernel produces that response in
    // milliseconds, so the flood saturates the write path without
    // monopolising the worker pool the well-behaved client shares.
    let sources: Vec<NodeId> = (0..8).map(|i| env.pairs[i % env.pairs.len()].0).collect();
    let targets: Vec<NodeId> = (0..32768)
        .map(|i| env.pairs[i % env.pairs.len()].1)
        .collect();
    let payload = crate::protocol::Request::Distances {
        backend: BackendKind::Ch.wire_id(),
        sources,
        targets,
        deadline_ms: 0,
    }
    .encode();
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);

    let mut hoarders = Vec::new();
    for _ in 0..conns {
        let Ok(mut s) = std::net::TcpStream::connect(addr) else {
            continue;
        };
        let _ = s.set_write_timeout(Some(Duration::from_millis(200)));
        for _ in 0..frames {
            use std::io::Write as _;
            // A write error means the server already reclaimed this
            // hoarder — which is exactly the behavior under test.
            if s.write_all(&frame).is_err() {
                break;
            }
        }
        hoarders.push(s);
    }

    // The well-behaved client must stay correct while the hoarders
    // pile their responses into capped write buffers.
    // Queue saturation may delay the answer; it must never falsify it —
    // so the correctness probe gets a generous timeout rather than a
    // pass for transport errors.
    let mut good = ServeClient::connect(addr).map_err(|e| format!("slow-reader connect: {e}"))?;
    good.set_io_timeout(Some(opts.io_timeout.max(Duration::from_secs(30))))
        .map_err(|e| format!("set timeout: {e}"))?;
    checked_distances(env, &mut good, BackendKind::Dijkstra, 6, 1, false)
        .map_err(|e| format!("while slow readers hoard: {e}"))?;
    // Give the stall reaper a cycle to force-close the herd, then log
    // the operator's evidence trail.
    std::thread::sleep(Duration::from_millis(700));
    if let Ok(stats) = good.stats() {
        for line in stats.lines() {
            if line.contains("slow_closed") || line.contains("wbuf_peak") {
                eprintln!("[torture]   slow-reader: {}", line.trim());
            }
        }
    }
    drop(hoarders);
    checked_distances(env, &mut good, BackendKind::Dijkstra, 6, 9, false)
        .map_err(|e| format!("after slow readers left: {e}"))?;
    let _ = good.shutdown_server();
    let status = child.wait_bounded(Duration::from_secs(30))?;
    child.panic_check()?;
    if !status.success() {
        return Err(format!(
            "server exited {status} after slow readers; stderr tail:\n{}",
            child.stderr_tail()
        ));
    }
    Ok(())
}

/// Runs one schedule in a fresh subdirectory and checks the recovery
/// property. `Ok(())` is a pass; `Err` describes the violation.
fn run_schedule(
    opts: &TortureOptions,
    env: &TortureEnv,
    round_dir: &Path,
    schedule: &[FaultEvent],
) -> Result<(), String> {
    if round_dir.exists() {
        fs::remove_dir_all(round_dir).map_err(|e| format!("clear {}: {e}", round_dir.display()))?;
    }
    fs::create_dir_all(round_dir).map_err(|e| format!("mkdir {}: {e}", round_dir.display()))?;
    let index = round_dir.join("ch.idx");

    // Baseline: a clean prep, so byte-level faults have a real
    // container to damage (a schedule may still tear it later).
    let prep_args: Vec<String> = ["prep", "--net", &env.net_base, "--kind", "ch", "--out"]
        .iter()
        .map(|s| s.to_string())
        .chain([index.display().to_string()])
        .collect();
    let status = run_spq(opts, &prep_args, &[], Duration::from_secs(120))?;
    if !status.success() {
        return Err(format!("baseline prep failed: {status}"));
    }

    for &event in schedule {
        apply_event(opts, env, round_dir, &index, event)?;
    }

    // The recovery property: a fresh server over whatever the schedule
    // left behind must come up (clean load or typed quarantine +
    // degradation) and answer correctly.
    let args = serve_args(&env.net_base, &index, &[]);
    let mut child = ChildServer::spawn(opts, &args, &[])?;
    let addr = child
        .wait_listening(opts.startup_timeout)
        .map_err(|e| format!("post-fault recovery failed: {e}"))?;
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("connect recovered server: {e}"))?;
    client
        .set_io_timeout(Some(opts.io_timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    // Both the baseline and the (possibly degraded) CH slot must agree
    // with the local oracle — a quarantined index must have fallen back,
    // never kept serving wrong bytes.
    checked_distances(env, &mut client, BackendKind::Dijkstra, 12, 0, false)?;
    checked_distances(env, &mut client, BackendKind::Ch, 12, 5, false)?;
    // One one-to-many batch from the persisted workload shapes.
    let targets = &env.workload.o2m_sets[0];
    let (s, _) = env.pairs[0];
    let got = client
        .one_to_many(BackendKind::Dijkstra, s, targets)
        .map_err(|e| format!("one_to_many on recovered server: {e}"))?;
    let mut oracle = Dijkstra::new(env.net.num_nodes());
    oracle.run(&env.net, s);
    let expected: Vec<_> = targets.iter().map(|&t| oracle.distance(t)).collect();
    if got != expected {
        return Err(format!(
            "WRONG ANSWER: one_to_many({s}) on recovered server"
        ));
    }
    // STATS must be reachable; its degradation lines are the operator's
    // evidence trail (logged, not asserted — a before-rename tear leaves
    // a valid old file and degrades nothing).
    let stats = client
        .stats()
        .map_err(|e| format!("STATS on recovered server: {e}"))?;
    for line in stats.lines() {
        if line.contains("degraded") || line.contains("quarantined") {
            eprintln!("[torture] recovered server: {}", line.trim());
        }
    }
    let _ = client.shutdown_server();
    let status = child.wait_bounded(Duration::from_secs(30))?;
    child.panic_check()?;
    if !status.success() {
        return Err(format!(
            "recovered server exited {status}; stderr tail:\n{}",
            child.stderr_tail()
        ));
    }
    Ok(())
}

/// Budget for minimizer re-runs (each re-runs a full schedule).
const MINIMIZE_BUDGET: usize = 20;

/// Runs the whole torture campaign. `Err` is an orchestration failure
/// (cannot spawn, cannot generate); property violations land in the
/// report's per-round outcomes.
pub fn run_torture(opts: &TortureOptions) -> Result<TortureReport, String> {
    fs::create_dir_all(&opts.dir).map_err(|e| format!("mkdir {}: {e}", opts.dir.display()))?;
    let net_base = opts.dir.join("net").display().to_string();

    // One network for the whole campaign, generated by the child binary
    // (exercising its atomic write path) and loaded back for the oracle.
    if !Path::new(&format!("{net_base}.gr")).exists() {
        let args: Vec<String> = [
            "generate",
            "--target",
            &opts.target.to_string(),
            "--seed",
            &opts.seed.to_string(),
            "--out",
            &net_base,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let status = run_spq(opts, &args, &[], Duration::from_secs(120))?;
        if !status.success() {
            return Err(format!("spq generate failed: {status}"));
        }
    }
    let gr =
        fs::File::open(format!("{net_base}.gr")).map_err(|e| format!("open {net_base}.gr: {e}"))?;
    let co =
        fs::File::open(format!("{net_base}.co")).map_err(|e| format!("open {net_base}.co: {e}"))?;
    let net = spq_graph::dimacs::read(BufReader::new(gr), BufReader::new(co))
        .map_err(|e| format!("parse {net_base}: {e}"))?;

    // The persisted workload shapes: written through the atomic path,
    // read back, and used for the recovery one-to-many checks — the
    // same file a loadgen sweep replays with --workload.
    let workload_path = opts.dir.join("workload.spqw");
    let workload = shapes::generate_workload(
        &net,
        &ShapeGenParams {
            seed: opts.seed,
            ..ShapeGenParams::default()
        },
    );
    atomic_io::write_atomic(&workload_path, |w| workload.write_binary(w))
        .map_err(|e| format!("write {}: {e}", workload_path.display()))?;
    let mut f = fs::File::open(&workload_path)
        .map_err(|e| format!("open {}: {e}", workload_path.display()))?;
    let workload = Workload::read_binary(&mut f).map_err(|e| format!("reload workload: {e}"))?;
    drop(f);

    let pairs = crate::loadgen::workload_pairs(&net, 40, opts.seed);
    let env = TortureEnv {
        net,
        net_base,
        pairs,
        workload,
    };

    let mut report = TortureReport {
        seed: opts.seed,
        resource: opts.resource,
        rounds: Vec::new(),
    };
    for round in 0..opts.rounds {
        let round_seed = mix(opts.seed, round as u64 + 1);
        let schedule = if opts.resource {
            gen_resource_schedule(round_seed)
        } else {
            gen_schedule(round_seed)
        };
        eprintln!(
            "[torture] round {round}/{}: {} event(s), seed={:#x}",
            opts.rounds,
            schedule.len(),
            opts.seed
        );
        for e in &schedule {
            eprintln!("[torture]   - {e}");
        }
        let round_dir = opts.dir.join(format!("round-{round}"));
        let failure = run_schedule(opts, &env, &round_dir, &schedule).err();
        let minimized = match &failure {
            Some(first) if opts.minimize && schedule.len() > 1 => {
                eprintln!("[torture] round {round} FAILED ({first}); minimizing...");
                let min = minimize_schedule(
                    &schedule,
                    |candidate| run_schedule(opts, &env, &round_dir, candidate).is_err(),
                    MINIMIZE_BUDGET,
                );
                Some(min)
            }
            _ => None,
        };
        if let Some(f) = &failure {
            eprintln!("[torture] round {round} FAIL: {f}");
        } else {
            eprintln!("[torture] round {round} PASS");
        }
        report.rounds.push(RoundOutcome {
            round,
            schedule,
            failure,
            minimized,
        });
    }

    if report.failures() > 0 {
        if let Some(artifact) = &opts.artifact {
            let rendered = report.render();
            atomic_io::write_atomic(artifact, |w| {
                use std::io::Write;
                w.write_all(rendered.as_bytes())
            })
            .map_err(|e| format!("write artifact {}: {e}", artifact.display()))?;
            eprintln!(
                "[torture] failure artifact written to {}",
                artifact.display()
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic() {
        let a = gen_schedule(42);
        let b = gen_schedule(42);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 4);
        // Different seeds diverge somewhere in a small sample.
        let differs = (0..16u64).any(|s| gen_schedule(s) != gen_schedule(s + 1000));
        assert!(differs, "schedules never varied across seeds");
    }

    #[test]
    fn schedule_space_covers_every_event_kind() {
        let mut kinds = [false; 10];
        for seed in 0..400u64 {
            for e in gen_schedule(seed) {
                let k = match e {
                    FaultEvent::TornPrep { .. } => 0,
                    FaultEvent::FlipIndexByte { .. } => 1,
                    FaultEvent::TruncateIndex { .. } => 2,
                    FaultEvent::OrphanTemp { .. } => 3,
                    FaultEvent::KillServe(_) => 4,
                    FaultEvent::WireChaos { .. } => 5,
                    FaultEvent::FdSqueeze { .. } => 6,
                    FaultEvent::DiskFull { .. } => 7,
                    FaultEvent::MemSqueeze { .. } => 8,
                    FaultEvent::SlowReader { .. } => 9,
                };
                kinds[k] = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "unreached event kinds: {kinds:?}");
    }

    #[test]
    fn resource_schedules_cover_all_four_modes_in_seed_stable_order() {
        let a = gen_resource_schedule(7);
        assert_eq!(a, gen_resource_schedule(7), "not seed-deterministic");
        assert_eq!(a.len(), 4);
        assert!(a.iter().any(|e| matches!(e, FaultEvent::FdSqueeze { .. })));
        assert!(a.iter().any(|e| matches!(e, FaultEvent::DiskFull { .. })));
        assert!(a.iter().any(|e| matches!(e, FaultEvent::MemSqueeze { .. })));
        assert!(a.iter().any(|e| matches!(e, FaultEvent::SlowReader { .. })));
        // The shuffle must actually vary the order across seeds.
        let orders: std::collections::HashSet<String> = (0..32u64)
            .map(|s| {
                gen_resource_schedule(s)
                    .iter()
                    .map(|e| e.to_string().chars().take(4).collect::<String>())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert!(orders.len() > 1, "resource schedules never reorder");
    }

    #[test]
    fn minimizer_shrinks_to_the_culprit() {
        let culprit = FaultEvent::TruncateIndex { keep_permille: 1 };
        let schedule = vec![
            FaultEvent::OrphanTemp { bytes: 64 },
            FaultEvent::KillServe(KillPoint::Startup),
            culprit,
            FaultEvent::FlipIndexByte {
                pos_permille: 1,
                xor: 1,
            },
        ];
        let mut runs = 0usize;
        let min = minimize_schedule(
            &schedule,
            |candidate| {
                runs += 1;
                candidate.contains(&culprit)
            },
            MINIMIZE_BUDGET,
        );
        assert_eq!(min, vec![culprit]);
        assert!(runs <= MINIMIZE_BUDGET, "minimizer blew its budget: {runs}");
    }

    #[test]
    fn minimizer_respects_its_budget_and_keeps_a_failing_schedule() {
        // A predicate that only fails for the full schedule: nothing can
        // be removed, and the minimizer must stop within budget.
        let schedule: Vec<FaultEvent> = (0..4)
            .map(|i| FaultEvent::OrphanTemp { bytes: i })
            .collect();
        let full = schedule.clone();
        let mut runs = 0usize;
        let min = minimize_schedule(
            &schedule,
            |candidate| {
                runs += 1;
                candidate == full.as_slice()
            },
            MINIMIZE_BUDGET,
        );
        assert_eq!(min, full, "must fall back to the full failing schedule");
        assert!(runs <= MINIMIZE_BUDGET);
    }

    #[test]
    fn report_renders_the_reproduction_line() {
        let report = TortureReport {
            seed: 0xBEEF,
            resource: false,
            rounds: vec![RoundOutcome {
                round: 0,
                schedule: vec![FaultEvent::KillServe(KillPoint::Serving(3))],
                failure: Some("WRONG ANSWER: something".into()),
                minimized: Some(vec![FaultEvent::KillServe(KillPoint::Serving(3))]),
            }],
        };
        let text = report.render();
        assert!(text.contains("seed=0xbeef"));
        assert!(text.contains("reproduce with: spq torture --seed 48879"));
        assert!(text.contains("minimized to 1 event(s)"));
        assert!(text.contains("kill-serve(after 3 requests)"));
    }

    #[test]
    fn event_display_is_greppable() {
        let shown = format!(
            "{} {} {}",
            FaultEvent::TornPrep {
                stage: CrashStage::BeforeRename,
                nth: 1
            },
            FaultEvent::FlipIndexByte {
                pos_permille: 500,
                xor: 0x40
            },
            FaultEvent::WireChaos {
                plan_seed: 7,
                requests: 9
            },
        );
        assert!(shown.contains("torn-prep(stage=before-rename, nth=1)"));
        assert!(shown.contains("flip-index(pos=500‰"));
        assert!(shown.contains("wire-chaos(seed=0x7, requests=9)"));
        let resources = format!(
            "{} {} {} {}",
            FaultEvent::FdSqueeze {
                limit: 24,
                conns: 10
            },
            FaultEvent::DiskFull { from_nth: 1 },
            FaultEvent::MemSqueeze { kib: 128 },
            FaultEvent::SlowReader {
                conns: 3,
                frames: 9
            },
        );
        assert!(resources.contains("fd-squeeze(limit=24, conns=10)"));
        assert!(resources.contains("disk-full(from-write=1)"));
        assert!(resources.contains("mem-squeeze(128KiB)"));
        assert!(resources.contains("slow-reader(conns=3, frames=9)"));
    }

    #[test]
    fn resource_reports_reproduce_with_the_resource_flag() {
        let report = TortureReport {
            seed: 1,
            resource: true,
            rounds: vec![RoundOutcome {
                round: 0,
                schedule: vec![FaultEvent::MemSqueeze { kib: 64 }],
                failure: Some("x".into()),
                minimized: None,
            }],
        };
        assert!(report
            .render()
            .contains("spq torture --seed 1 --rounds 1 --resource"));
    }
}
