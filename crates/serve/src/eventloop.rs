//! Minimal epoll building blocks for the sharded event loop.
//!
//! The serving layer needs exactly four kernel facilities — `epoll` for
//! readiness, `eventfd` for cross-thread wakeups, and `get/setrlimit`
//! to lift the open-file ceiling for connection-scale tests — so they
//! are declared here as direct `extern "C"` syscalls wrappers instead
//! of pulling in a dependency. Everything is wrapped in owning types
//! ([`Poller`], [`Waker`]) whose file descriptors close on drop (via
//! `File::from_raw_fd`), so no raw `close` shim is needed.
//!
//! Linux-only by construction: the rest of the workspace already
//! assumes a Linux target (signal handling, CI).

use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// The kernel's `struct epoll_event`. Packed on x86 (the kernel ABI
/// there is unaligned); naturally aligned elsewhere.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer half-closed — read to find out).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup; the connection is dead or dying.
    pub hangup: bool,
}

/// An owned epoll instance.
pub struct Poller {
    epfd: File,
    buf: Vec<EpollEvent>,
}

impl Poller {
    /// Creates the epoll instance with room for `capacity` events per
    /// wait call.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            // SAFETY: epoll_create1 returned a fresh, owned descriptor.
            epfd: unsafe { File::from_raw_fd(fd) },
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        // EPOLLERR/EPOLLHUP are always delivered regardless of the
        // registered mask, so a read-paused connection still learns
        // about a dead peer — pausing reads for backpressure can never
        // leak a connection forever.
        let mut interest = 0;
        if readable {
            interest |= EPOLLIN | EPOLLRDHUP;
        }
        if writable {
            interest |= EPOLLOUT;
        }
        interest
    }

    /// Registers `fd` (level-triggered) under `token`. Read interest is
    /// on from the start; write interest only when `writable`.
    pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, Self::interest(true, writable))
    }

    /// Changes the read/write interest of an already registered fd.
    /// Dropping read interest is the event loop's backpressure lever: a
    /// level-triggered readable fd we refuse to drain would otherwise
    /// busy-spin the shard.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, Self::interest(readable, writable))
    }

    /// Deregisters an fd (must be called before the fd closes when the
    /// connection object outlives interest, harmless otherwise).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (-1 blocks indefinitely) and appends
    /// ready [`Event`]s to `out`. Returns the number of events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let n = loop {
            let ret = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &self.buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// A cross-thread wakeup primitive: an eventfd registered in a shard's
/// poller. Any thread may [`Waker::wake`]; the owning shard drains it.
pub struct Waker {
    fd: File,
}

impl Waker {
    /// Creates a non-blocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh, owned descriptor.
        Ok(Waker {
            fd: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// The fd to register in a poller.
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the poller (coalesces with pending wakes; best-effort).
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.fd).write(&one);
    }

    /// Consumes pending wakes so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.fd).read(&mut buf);
    }
}

/// Best-effort raise of the open-file soft limit towards `target`
/// (capped by the hard limit). Returns the resulting soft limit. Used
/// by connection-scale tests; the server itself never calls this.
pub fn raise_nofile_limit(target: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    let want = target.min(lim.max);
    if want > lim.cur {
        let new = RLimit {
            cur: want,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            return want;
        }
        return lim.cur;
    }
    lim.cur
}

/// Env hook read at `spq serve` startup: when set to an integer, the
/// server lowers its own `RLIMIT_NOFILE` soft limit to that value via
/// [`lower_nofile_limit`]. The torture harness's fd-squeeze mode sets
/// it on child servers so descriptor starvation replays from a seed
/// without the parent needing `prlimit` shims.
pub const FD_LIMIT_ENV: &str = "SPQ_FD_LIMIT";

/// Lowers the open-file soft limit to `target` (never below 8, never
/// above the current soft limit). Returns the resulting soft limit.
/// The fd-squeeze fault mode uses this so a child server can starve
/// *itself* of descriptors deterministically, without the parent
/// needing `prlimit` shims.
pub fn lower_nofile_limit(target: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    let want = target.max(8).min(lim.cur);
    if want < lim.cur {
        let new = RLimit {
            cur: want,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            return want;
        }
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn poller_reports_socket_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller.add(server_side.as_raw_fd(), 42, false).unwrap();

        // Nothing to read yet: a zero-timeout wait stays empty.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42 || !e.readable));

        client.write_all(b"hello").unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        while events.is_empty() {
            poller.wait(&mut events, 100).unwrap();
            assert!(t0.elapsed().as_secs() < 5, "readability never reported");
        }
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Write interest toggles on via modify.
        poller
            .modify(server_side.as_raw_fd(), 42, true, true)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 100).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        // Backpressure: dropping read interest silences the (still
        // unread) "hello" bytes — the level-triggered fd must stop
        // reporting readable until interest is restored.
        poller
            .modify(server_side.as_raw_fd(), 42, false, false)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(
            events.iter().all(|e| !e.readable && !e.writable),
            "paused fd must go quiet: {events:?}"
        );
        poller
            .modify(server_side.as_raw_fd(), 42, true, false)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 100).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        poller.delete(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let mut poller = Poller::new(4).unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.raw_fd(), u64::MAX, false).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            remote.wake();
            remote.wake(); // coalesces into one readable edge
        });
        let mut events = Vec::new();
        let t0 = Instant::now();
        while events.is_empty() {
            poller.wait(&mut events, 100).unwrap();
            assert!(t0.elapsed().as_secs() < 5, "wake never arrived");
        }
        handle.join().unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        waker.drain();
        // Drained: the level-triggered fd goes quiet.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drain must quiesce the waker");
    }

    #[test]
    fn nofile_limit_is_reported() {
        let now = raise_nofile_limit(0);
        assert!(now > 0, "every process has a nonzero nofile limit");
        // Raising towards the current value is a no-op, not an error.
        assert!(raise_nofile_limit(now) >= now.min(1024));
        // Lowering towards a target at/above the current soft limit is
        // a no-op (a *real* squeeze would starve this whole test
        // process of fds, so only the clamp is exercised here; the
        // torture harness squeezes real child processes).
        assert_eq!(lower_nofile_limit(u64::MAX), raise_nofile_limit(0));
    }
}
