//! A seeded byte-level fault proxy for wire chaos.
//!
//! [`ByteProxy`] listens on its own port and pumps every accepted
//! connection to an upstream server, perturbing the byte stream on the
//! way: frames split at arbitrary offsets, mid-frame stalls
//! (slowloris), single-bit flips, duplicated windows, and connections
//! killed mid-stream (truncation as the peer sees it). It is the wire
//! counterpart of [`crate::fault`]'s request-level injector: where that
//! module faults *requests*, this one faults *bytes*, exercising the
//! framing layer, the interruptible reads, and the stall timeout.
//!
//! Replayability is the design constraint. TCP chunk boundaries are
//! decided by the kernel, so drawing faults per `read()` would make a
//! failing run unreproducible. Instead the stream is divided into
//! fixed [`WINDOW`]-byte windows by *cumulative offset*, and the fault
//! decision for window `w` of direction `d` is a pure function of
//! `(plan.seed, connection, d, w)`. For a fixed client workload the
//! perturbation is then byte-for-byte identical across runs, whatever
//! the kernel does to chunking — a failing seed is a test case.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fault-decision granularity, in stream bytes. Small enough that a
/// single request frame (≥13 bytes) can be hit by multiple decisions;
/// large enough that the per-window rng setup stays off the hot path.
pub const WINDOW: usize = 256;

/// Probabilities of each per-window byte fault. All draws come from a
/// window-keyed seeded rng, so a plan plus a client workload replays
/// exactly.
#[derive(Debug, Clone)]
pub struct ByteFaultPlan {
    /// Master seed; every per-window decision derives from it.
    pub seed: u64,
    /// Split the window at a random offset: the bytes arrive in two
    /// writes with a flush and a short pause between them.
    pub split_prob: f64,
    /// Stall mid-window for [`ByteFaultPlan::stall`] before sending the
    /// rest (slowloris). The peer sees a half-delivered frame.
    pub stall_prob: f64,
    /// The stall duration.
    pub stall: Duration,
    /// Flip one random bit of one byte in the window.
    pub flip_prob: f64,
    /// Write the window's bytes twice (duplicated payload).
    pub dup_prob: f64,
    /// Kill the connection at a random offset inside the window: the
    /// peer sees a truncated stream and an abrupt close.
    pub kill_prob: f64,
    /// Perturb client→server bytes.
    pub fault_upstream: bool,
    /// Perturb server→client bytes.
    pub fault_downstream: bool,
}

impl Default for ByteFaultPlan {
    fn default() -> Self {
        ByteFaultPlan {
            seed: 0xB17E_FA57,
            split_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::from_millis(20),
            flip_prob: 0.0,
            dup_prob: 0.0,
            kill_prob: 0.0,
            fault_upstream: true,
            fault_downstream: false,
        }
    }
}

/// The decision for one window of one direction: where (if anywhere)
/// to flip, split, stall, duplicate, or kill. Offsets are relative to
/// the window start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WindowFault {
    flip: Option<(usize, u8)>,
    split: Option<usize>,
    stall: Option<usize>,
    dup: bool,
    kill: Option<usize>,
}

impl WindowFault {
    const NONE: WindowFault = WindowFault {
        flip: None,
        split: None,
        stall: None,
        dup: false,
        kill: None,
    };
}

fn mix(seed: u64, conn: u64, dir: u64, win: u64) -> u64 {
    // SplitMix64-style avalanche over the four coordinates.
    let mut z = seed
        .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(dir.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(win.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure decision function: the fault plan for window `win` of direction
/// `dir` (0: client→server, 1: server→client) on connection `conn`.
fn window_fault(plan: &ByteFaultPlan, conn: u64, dir: u64, win: u64) -> WindowFault {
    let mut rng = StdRng::seed_from_u64(mix(plan.seed, conn, dir, win));
    // Every probability is drawn unconditionally so one decision never
    // shifts the rng stream of the next — decisions stay independent.
    let flip_roll = rng.random::<f64>() < plan.flip_prob;
    let flip_at = rng.random_range(0..WINDOW);
    let flip_bit = rng.random_range(0u32..8) as u8;
    let split_roll = rng.random::<f64>() < plan.split_prob;
    let split_at = rng.random_range(1..WINDOW);
    let stall_roll = rng.random::<f64>() < plan.stall_prob;
    let stall_at = rng.random_range(0..WINDOW);
    let dup = rng.random::<f64>() < plan.dup_prob;
    let kill_roll = rng.random::<f64>() < plan.kill_prob;
    let kill_at = rng.random_range(0..WINDOW);
    WindowFault {
        flip: flip_roll.then_some((flip_at, flip_bit)),
        split: split_roll.then_some(split_at),
        stall: stall_roll.then_some(stall_at),
        dup,
        kill: kill_roll.then_some(kill_at),
    }
}

/// Counts of faults actually applied (a probability only counts once
/// its window carried bytes).
#[derive(Debug, Default)]
pub struct ProxyCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Windows written in two parts.
    pub splits: AtomicU64,
    /// Mid-window stalls.
    pub stalls: AtomicU64,
    /// Single-bit flips.
    pub flips: AtomicU64,
    /// Duplicated windows.
    pub dups: AtomicU64,
    /// Connections killed mid-stream.
    pub kills: AtomicU64,
}

/// A point-in-time copy of [`ProxyCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxySnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Windows written in two parts.
    pub splits: u64,
    /// Mid-window stalls.
    pub stalls: u64,
    /// Single-bit flips.
    pub flips: u64,
    /// Duplicated windows.
    pub dups: u64,
    /// Connections killed mid-stream.
    pub kills: u64,
}

impl ProxySnapshot {
    /// Total faults applied across all kinds.
    pub fn total_faults(&self) -> u64 {
        self.splits + self.stalls + self.flips + self.dups + self.kills
    }
}

/// The running proxy: accepts on its own port, pumps to `upstream`
/// through the fault plan. Stops (and joins its acceptor) on drop.
pub struct ByteProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ProxyCounters>,
    acceptor: Option<JoinHandle<()>>,
}

impl ByteProxy {
    /// Binds a fresh port on 127.0.0.1 and starts proxying to
    /// `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: ByteFaultPlan) -> io::Result<ByteProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ProxyCounters::default());
        let stop = Arc::clone(&shutdown);
        let ctr = Arc::clone(&counters);
        let acceptor = thread::Builder::new()
            .name("byteproxy-accept".into())
            .spawn(move || {
                let mut conn_id: u64 = 0;
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            ctr.connections.fetch_add(1, Ordering::Relaxed);
                            let id = conn_id;
                            conn_id += 1;
                            if let Err(e) = spawn_pumps(client, upstream, &plan, id, &stop, &ctr) {
                                eprintln!("[byteproxy] conn {id}: {e}");
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => {
                            eprintln!("[byteproxy] accept: {e}");
                            break;
                        }
                    }
                }
            })
            .expect("spawn byteproxy acceptor");
        Ok(ByteProxy {
            addr,
            shutdown,
            counters,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the fault counters.
    pub fn counters(&self) -> ProxySnapshot {
        ProxySnapshot {
            connections: self.counters.connections.load(Ordering::Relaxed),
            splits: self.counters.splits.load(Ordering::Relaxed),
            stalls: self.counters.stalls.load(Ordering::Relaxed),
            flips: self.counters.flips.load(Ordering::Relaxed),
            dups: self.counters.dups.load(Ordering::Relaxed),
            kills: self.counters.kills.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the acceptor. Pump threads notice the
    /// flag within their read timeout and exit on their own.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ByteProxy {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn spawn_pumps(
    client: TcpStream,
    upstream: SocketAddr,
    plan: &ByteFaultPlan,
    conn: u64,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ProxyCounters>,
) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    // Short read timeouts keep the pumps responsive to shutdown without
    // busy-waiting; WouldBlock/TimedOut just re-checks the flag.
    let timeout = Some(Duration::from_millis(20));
    client.set_read_timeout(timeout)?;
    server.set_read_timeout(timeout)?;
    for (dir, src, dst) in [
        (0u64, client.try_clone()?, server.try_clone()?),
        (1u64, server, client),
    ] {
        let faulted = match dir {
            0 => plan.fault_upstream,
            _ => plan.fault_downstream,
        };
        let plan = plan.clone();
        let stop = Arc::clone(stop);
        let counters = Arc::clone(counters);
        thread::Builder::new()
            .name(format!("byteproxy-{conn}-{dir}"))
            .spawn(move || {
                pump(src, dst, &plan, conn, dir, faulted, &stop, &counters);
            })
            .expect("spawn byteproxy pump");
    }
    Ok(())
}

/// Pumps `src` to `dst`, applying the windowed fault plan. Reads never
/// cross a window boundary, so each chunk lives in exactly one window
/// and the decision for it is position-deterministic.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: &ByteFaultPlan,
    conn: u64,
    dir: u64,
    faulted: bool,
    stop: &AtomicBool,
    counters: &ProxyCounters,
) {
    let mut offset: usize = 0;
    let mut buf = [0u8; WINDOW];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let win = offset / WINDOW;
        let win_start = win * WINDOW;
        let room = WINDOW - (offset - win_start);
        let n = match src.read(&mut buf[..room]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let fault = if faulted {
            window_fault(plan, conn, dir, win as u64)
        } else {
            WindowFault::NONE
        };
        let rel = offset - win_start; // chunk's start inside the window
        let chunk = &mut buf[..n];
        if let Some((at, bit)) = fault.flip {
            if at >= rel && at < rel + n {
                chunk[at - rel] ^= 1 << bit;
                counters.flips.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(at) = fault.kill {
            if at >= rel && at < rel + n {
                // Deliver the prefix, then tear the whole connection
                // down: the peer sees a truncated stream.
                let _ = dst.write_all(&chunk[..at - rel]);
                let _ = dst.flush();
                counters.kills.fetch_add(1, Ordering::Relaxed);
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        }
        // Where (relative to the chunk) to pause: a stall or a split
        // point that lands inside this chunk.
        let mut pause_at: Option<(usize, Duration)> = None;
        if let Some(at) = fault.stall {
            if at >= rel && at < rel + n {
                pause_at = Some((at - rel, plan.stall));
                counters.stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
        if pause_at.is_none() {
            if let Some(at) = fault.split {
                if at > rel && at < rel + n {
                    pause_at = Some((at - rel, Duration::from_millis(1)));
                    counters.splits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let write_ok = match pause_at {
            Some((k, pause)) => dst
                .write_all(&chunk[..k])
                .and_then(|_| dst.flush())
                .map(|_| {
                    thread::sleep(pause);
                })
                .and_then(|_| dst.write_all(&chunk[k..])),
            None => dst.write_all(chunk),
        }
        .and_then(|_| dst.flush())
        .is_ok();
        if write_ok && fault.dup {
            counters.dups.fetch_add(1, Ordering::Relaxed);
            if dst.write_all(chunk).and_then(|_| dst.flush()).is_err() {
                break;
            }
        }
        if !write_ok {
            break;
        }
        offset += n;
    }
    // Propagate EOF so the peer's read returns 0 instead of timing out.
    let _ = dst.shutdown(Shutdown::Write);
    let _ = src.shutdown(Shutdown::Read);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_decisions_are_deterministic_and_seed_sensitive() {
        let plan = ByteFaultPlan {
            seed: 42,
            split_prob: 0.5,
            stall_prob: 0.3,
            flip_prob: 0.4,
            dup_prob: 0.2,
            kill_prob: 0.1,
            ..ByteFaultPlan::default()
        };
        let a: Vec<WindowFault> = (0..64).map(|w| window_fault(&plan, 3, 0, w)).collect();
        let b: Vec<WindowFault> = (0..64).map(|w| window_fault(&plan, 3, 0, w)).collect();
        assert_eq!(a, b, "same coordinates, same decisions");
        let other_seed = ByteFaultPlan {
            seed: 43,
            ..plan.clone()
        };
        let c: Vec<WindowFault> = (0..64)
            .map(|w| window_fault(&other_seed, 3, 0, w))
            .collect();
        assert_ne!(a, c, "seed must matter");
        let other_dir: Vec<WindowFault> = (0..64).map(|w| window_fault(&plan, 3, 1, w)).collect();
        assert_ne!(a, other_dir, "directions draw independent streams");
    }

    #[test]
    fn zero_probability_plan_is_a_clean_pipe() {
        let plan = ByteFaultPlan::default();
        for w in 0..128 {
            assert_eq!(window_fault(&plan, 0, 0, w), WindowFault::NONE);
        }
    }

    #[test]
    fn proxy_with_clean_plan_passes_bytes_through() {
        // An echo upstream: whatever arrives is written back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let proxy = ByteProxy::start(up_addr, ByteFaultPlan::default()).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payload: Vec<u8> = (0..2000u32).flat_map(|x| x.to_le_bytes()).collect();
        c.write_all(&payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        c.read_exact(&mut back).unwrap();
        assert_eq!(back, payload, "clean plan must not alter the stream");
        assert_eq!(proxy.counters().total_faults(), 0);
        drop(c);
        proxy.stop();
        echo.join().unwrap();
    }
}
