//! Poison-tolerant locking.
//!
//! A worker panic (injected by the chaos suite or caused by a real
//! defect) may unwind while holding a stats, cache-shard, or registry
//! mutex. The data under every such lock is a plain counter table or an
//! LRU list whose invariants hold between individual field writes, so a
//! poisoned guard is still structurally sound — recovering it keeps the
//! rest of the server serving instead of turning one panic into a
//! process-wide cascade of `PoisonError` panics.

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(41);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(result.is_err());
        assert!(m.lock().is_err(), "mutex is poisoned");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
    }
}
