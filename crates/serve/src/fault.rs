//! Deterministic fault injection for chaos testing the server.
//!
//! A [`FaultInjector`] is handed to [`ServerConfig`](crate::ServerConfig)
//! by tests; the worker consults it once per decoded request and acts on
//! the resulting [`FaultAction`]: sleep (artificial backend latency),
//! drop the connection without responding (a mid-request crash as seen
//! by the client), panic inside the request path (exercising the
//! worker-supervision `catch_unwind`), or a combination. All randomness
//! flows from one seeded [`StdRng`], so a chaos run replays identically
//! for a fixed seed — a failure is a test case, not a flake.
//!
//! The injector also offers pure helpers ([`FaultInjector::corrupt`],
//! [`FaultInjector::truncate`]) that tests use to mangle request frames
//! and index files deterministically. Those faults are injected at the
//! *input* boundary on purpose: the server must reject garbage, never
//! absorb it — an OK response always carries a genuinely computed
//! answer, which is what lets the chaos suite oracle-check every
//! success.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Probabilities and magnitudes of the injected faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the injector's private PRNG.
    pub seed: u64,
    /// Probability that a request is served only after [`FaultPlan::latency`].
    pub latency_prob: f64,
    /// The artificial service latency.
    pub latency: Duration,
    /// Probability that the connection is dropped instead of answered.
    pub drop_prob: f64,
    /// Probability that the worker panics while serving the request —
    /// a stand-in for a defect in a backend's query code.
    pub panic_prob: f64,
    /// The first this many accepted connections are treated as if
    /// `accept` had returned `EMFILE`: the server must answer a typed
    /// BUSY and close, exactly as on a real fd-exhausted box. Counted,
    /// not random, so tests can pin "connection N is refused, N+1
    /// serves" without probability tuning.
    pub emfile_accepts: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xC4A05,
            latency_prob: 0.0,
            latency: Duration::from_millis(10),
            drop_prob: 0.0,
            panic_prob: 0.0,
            emfile_accepts: 0,
        }
    }
}

/// What the worker should do to the current request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// Sleep this long before serving (None: no injected latency).
    pub delay: Option<Duration>,
    /// Close the connection without writing a response.
    pub drop_connection: bool,
    /// Panic mid-request; the supervision layer must contain it to
    /// this one connection.
    pub panic: bool,
}

impl FaultAction {
    /// The no-fault action.
    pub const NONE: FaultAction = FaultAction {
        delay: None,
        drop_connection: false,
        panic: false,
    };
}

/// A shared, seeded fault source. One per server; workers call
/// [`FaultInjector::on_request`] under an internal lock (the chaos
/// path is not the hot path, so a mutex is fine).
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    delays: AtomicU64,
    drops: AtomicU64,
    panics: AtomicU64,
    accepts: AtomicU64,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("delays", &self.delays.load(Ordering::Relaxed))
            .field("drops", &self.drops.load(Ordering::Relaxed))
            .field("panics", &self.panics.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultInjector {
    /// Creates an injector following `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng: Mutex::new(rng),
            delays: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
        }
    }

    /// Consulted once per accepted connection; `true` means the
    /// acceptor must behave as if `accept` returned `EMFILE` (shed the
    /// peer with a typed BUSY and close). Fires on the plan's first
    /// `emfile_accepts` connections.
    pub fn on_accept(&self) -> bool {
        if self.plan.emfile_accepts == 0 {
            return false;
        }
        self.accepts.fetch_add(1, Ordering::Relaxed) < self.plan.emfile_accepts as u64
    }

    /// Draws the fault action for one request.
    pub fn on_request(&self) -> FaultAction {
        // Poison-tolerant: the injector's own panics unwind through
        // the worker while this lock is *not* held, but a defensive
        // recovery keeps the chaos plan running either way.
        let mut rng = crate::sync::lock_unpoisoned(&self.rng);
        let delay = if rng.random::<f64>() < self.plan.latency_prob {
            self.delays.fetch_add(1, Ordering::Relaxed);
            Some(self.plan.latency)
        } else {
            None
        };
        let drop_connection = rng.random::<f64>() < self.plan.drop_prob;
        if drop_connection {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        let panic = rng.random::<f64>() < self.plan.panic_prob;
        if panic {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction {
            delay,
            drop_connection,
            panic,
        }
    }

    /// Injected latency events so far.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Injected connection drops so far.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Injected worker panics so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Deterministically flips one bit of `data` (chosen by `seed`).
    /// Empty inputs are returned unchanged.
    pub fn corrupt(data: &[u8], seed: u64) -> Vec<u8> {
        let mut out = data.to_vec();
        if !out.is_empty() {
            let mut rng = StdRng::seed_from_u64(seed);
            let byte = rng.random_range(0..out.len());
            let bit = rng.random_range(0u32..8);
            out[byte] ^= 1 << bit;
        }
        out
    }

    /// Deterministically truncates `data` to a strict prefix (chosen by
    /// `seed`; empty inputs stay empty).
    pub fn truncate(data: &[u8], seed: u64) -> Vec<u8> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let keep = rng.random_range(0..data.len());
        data[..keep].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan {
            seed: 77,
            latency_prob: 0.3,
            latency: Duration::from_millis(1),
            drop_prob: 0.2,
            panic_prob: 0.1,
            emfile_accepts: 0,
        };
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let seq_a: Vec<FaultAction> = (0..200).map(|_| a.on_request()).collect();
        let seq_b: Vec<FaultAction> = (0..200).map(|_| b.on_request()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.delays(), b.delays());
        assert_eq!(a.drops(), b.drops());
        assert_eq!(a.panics(), b.panics());
        assert!(a.delays() > 0, "0.3 over 200 draws must fire");
        assert!(a.drops() > 0, "0.2 over 200 draws must fire");
        assert!(a.panics() > 0, "0.1 over 200 draws must fire");
    }

    #[test]
    fn zero_probabilities_never_fault() {
        let injector = FaultInjector::new(FaultPlan::default());
        for _ in 0..100 {
            assert_eq!(injector.on_request(), FaultAction::NONE);
        }
        assert_eq!(
            (injector.delays(), injector.drops(), injector.panics()),
            (0, 0, 0)
        );
    }

    #[test]
    fn emfile_injection_is_count_based_and_exact() {
        let injector = FaultInjector::new(FaultPlan {
            emfile_accepts: 3,
            ..FaultPlan::default()
        });
        let fired: Vec<bool> = (0..6).map(|_| injector.on_accept()).collect();
        assert_eq!(fired, [true, true, true, false, false, false]);
        // Zero means the accept path is never touched.
        let clean = FaultInjector::new(FaultPlan::default());
        assert!((0..10).all(|_| !clean.on_accept()));
    }

    #[test]
    fn corrupt_flips_exactly_one_bit_deterministically() {
        let data = vec![0u8; 64];
        let a = FaultInjector::corrupt(&data, 9);
        let b = FaultInjector::corrupt(&data, 9);
        assert_eq!(a, b);
        let flipped: u32 = data.iter().zip(&a).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(flipped, 1);
        assert!(FaultInjector::corrupt(&[], 9).is_empty());
    }

    #[test]
    fn truncate_returns_a_strict_prefix() {
        let data: Vec<u8> = (0..=255).collect();
        let t = FaultInjector::truncate(&data, 4);
        assert!(t.len() < data.len());
        assert_eq!(&data[..t.len()], &t[..]);
        assert_eq!(t, FaultInjector::truncate(&data, 4));
    }
}
