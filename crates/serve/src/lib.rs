//! `spq-serve` — the concurrent query-serving subsystem.
//!
//! The paper (§4) measures its five techniques with single-threaded
//! latency loops; this crate turns the same indexes into a service that
//! answers many clients at once, the first step toward the ROADMAP's
//! "heavy traffic" north star:
//!
//! * [`Engine`] — the five paper indexes (plus ALT and optionally arc
//!   flags) built over one road network, each behind the unified
//!   [`spq_graph::backend::Backend`] trait, with a differential
//!   self-check against the Dijkstra baseline gating startup.
//! * [`server`] — a TCP service speaking the [`protocol`] wire format:
//!   a fixed worker pool where every worker owns one reusable query
//!   workspace per backend (hot paths stay allocation-free), request
//!   batching that routes dense distance batches to CH's bucket-based
//!   many-to-many, and graceful shutdown on SIGTERM or a protocol
//!   command.
//! * [`cache`] — a sharded LRU distance cache keyed by
//!   `(backend, s, t)` with hit/miss accounting.
//! * [`stats`] — atomic counters and log2 latency histograms per
//!   backend and per op, served by the `STATS` command and dumped at
//!   shutdown.
//! * [`loadgen`] — replays the paper's Q1–Q10 query sets at
//!   configurable concurrency, producing `results/serve_throughput.csv`
//!   (QPS, p50/p99 per backend) and verifying sampled answers against
//!   the Dijkstra oracle.
//!
//! Everything is `std`-only: `std::net` sockets, `std::thread` workers,
//! no external dependencies.

pub mod cache;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;

use std::time::{Duration, Instant};

use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::ContractionHierarchy;
use spq_dijkstra::{Baseline, Dijkstra};
use spq_graph::backend::Backend;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_pcpd::Pcpd;
use spq_silc::Silc;
use spq_tnr::{Tnr, TnrParams};

pub use cache::{CacheStats, DistanceCache};
pub use client::{ClientError, ServeClient};
pub use loadgen::{LoadgenOptions, ThroughputRow};
pub use server::{Server, ServerConfig};
pub use stats::ServerStats;

/// The servable index techniques and their wire ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Bidirectional Dijkstra — index-free baseline (wire id 0).
    Dijkstra,
    /// Contraction Hierarchies (wire id 1).
    Ch,
    /// Transit Node Routing (wire id 2).
    Tnr,
    /// SILC (wire id 3).
    Silc,
    /// PCPD (wire id 4).
    Pcpd,
    /// ALT / landmark A* (wire id 5).
    Alt,
    /// Arc flags (wire id 6).
    ArcFlags,
}

impl BackendKind {
    /// Every servable backend.
    pub const ALL: [BackendKind; 7] = [
        BackendKind::Dijkstra,
        BackendKind::Ch,
        BackendKind::Tnr,
        BackendKind::Silc,
        BackendKind::Pcpd,
        BackendKind::Alt,
        BackendKind::ArcFlags,
    ];

    /// The default serving set: the paper's five techniques plus ALT.
    pub const DEFAULT: [BackendKind; 6] = [
        BackendKind::Dijkstra,
        BackendKind::Ch,
        BackendKind::Tnr,
        BackendKind::Silc,
        BackendKind::Pcpd,
        BackendKind::Alt,
    ];

    /// Stable protocol id.
    pub fn wire_id(self) -> u8 {
        match self {
            BackendKind::Dijkstra => 0,
            BackendKind::Ch => 1,
            BackendKind::Tnr => 2,
            BackendKind::Silc => 3,
            BackendKind::Pcpd => 4,
            BackendKind::Alt => 5,
            BackendKind::ArcFlags => 6,
        }
    }

    /// Inverse of [`BackendKind::wire_id`].
    pub fn from_wire(id: u8) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.wire_id() == id)
    }

    /// CLI name (lowercase).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dijkstra => "dijkstra",
            BackendKind::Ch => "ch",
            BackendKind::Tnr => "tnr",
            BackendKind::Silc => "silc",
            BackendKind::Pcpd => "pcpd",
            BackendKind::Alt => "alt",
            BackendKind::ArcFlags => "arcflags",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Parses a comma-separated backend list ("ch,tnr,alt"); "all"
    /// yields the default set.
    pub fn parse_list(csv: &str) -> Result<Vec<BackendKind>, String> {
        if csv.eq_ignore_ascii_case("all") {
            return Ok(BackendKind::DEFAULT.to_vec());
        }
        let mut out = Vec::new();
        for part in csv.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let kind =
                BackendKind::parse(part).ok_or_else(|| format!("unknown backend '{part}'"))?;
            if !out.contains(&kind) {
                out.push(kind);
            }
        }
        if out.is_empty() {
            return Err("empty backend list".into());
        }
        Ok(out)
    }

    /// Whether preprocessing needs all-pairs shortest paths (confines
    /// the technique to small networks, §4.3).
    pub fn needs_all_pairs(self) -> bool {
        matches!(self, BackendKind::Silc | BackendKind::Pcpd)
    }
}

/// One built backend inside an [`Engine`].
pub struct EngineBackend {
    /// Which technique this is.
    pub kind: BackendKind,
    /// The index behind the unified trait.
    pub backend: Box<dyn Backend>,
    /// Wall-clock preprocessing time.
    pub build_time: Duration,
}

/// The set of indexes a server instance answers from: one road network
/// plus any mix of built backends.
pub struct Engine {
    net: RoadNetwork,
    backends: Vec<EngineBackend>,
}

impl Engine {
    /// Builds the requested indexes over `net` (announcing each build on
    /// stderr, since the all-pairs techniques can take a while).
    pub fn build(net: RoadNetwork, kinds: &[BackendKind]) -> Engine {
        let mut engine = Engine {
            net,
            backends: Vec::new(),
        };
        for &kind in kinds {
            let start = Instant::now();
            let backend: Box<dyn Backend> = match kind {
                BackendKind::Dijkstra => Box::new(Baseline),
                BackendKind::Ch => Box::new(ContractionHierarchy::build(&engine.net)),
                BackendKind::Tnr => Box::new(Tnr::build(&engine.net, &TnrParams::default())),
                BackendKind::Silc => Box::new(Silc::build(&engine.net)),
                BackendKind::Pcpd => Box::new(Pcpd::build(&engine.net)),
                BackendKind::Alt => Box::new(Alt::build(
                    &engine.net,
                    &AltParams {
                        num_landmarks: 16.min(engine.net.num_nodes()),
                        ..AltParams::default()
                    },
                )),
                BackendKind::ArcFlags => {
                    Box::new(ArcFlags::build(&engine.net, &ArcFlagsParams::default()))
                }
            };
            let build_time = start.elapsed();
            eprintln!("[engine] built {} in {build_time:.2?}", kind.name());
            engine.backends.push(EngineBackend {
                kind,
                backend,
                build_time,
            });
        }
        engine
    }

    /// Adds a pre-built (possibly custom) backend; used by tests to
    /// inject deliberately wrong implementations against the self-check.
    pub fn with_backend(mut self, kind: BackendKind, backend: Box<dyn Backend>) -> Engine {
        self.backends.push(EngineBackend {
            kind,
            backend,
            build_time: Duration::ZERO,
        });
        self
    }

    /// The network every backend answers over.
    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    /// The built backends, in serving order.
    pub fn backends(&self) -> &[EngineBackend] {
        &self.backends
    }

    /// Engine position of the backend with the given wire id.
    pub fn position_of_wire(&self, wire_id: u8) -> Option<usize> {
        self.backends
            .iter()
            .position(|b| b.kind.wire_id() == wire_id)
    }

    /// Display names in serving order (for stats rendering).
    pub fn backend_names(&self) -> Vec<&str> {
        self.backends
            .iter()
            .map(|b| b.backend.backend_name())
            .collect()
    }

    /// The startup self-check: every backend must agree with the
    /// Dijkstra oracle on `samples` random distance and path queries.
    ///
    /// Serving wrong answers fast is worse than not serving — the paper
    /// itself hinges on this point (a faulty TNR implementation
    /// invalidated previously published results, §1) — so callers treat
    /// any `Err` as fatal and exit non-zero before accepting traffic.
    pub fn self_check(&self, samples: usize, seed: u64) -> Result<(), String> {
        let n = self.net.num_nodes() as u64;
        let mut reference = Dijkstra::new(self.net.num_nodes());
        let mut defects = Vec::new();
        for eb in &self.backends {
            let mut session = eb.backend.session(&self.net);
            let mut state = seed ^ 0x5eed_5e1f_c4ec_ba5e;
            for _ in 0..samples {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let s = ((state >> 33) % n) as NodeId;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let t = ((state >> 33) % n) as NodeId;
                reference.run_to_target(&self.net, s, t);
                let expected = reference.distance(t);
                let got = session.distance(s, t);
                if got != expected {
                    defects.push(format!(
                        "{}: distance({s}, {t}) = {got:?}, oracle says {expected:?}",
                        eb.backend.backend_name()
                    ));
                } else if let Some((d, path)) = session.shortest_path(s, t) {
                    if Some(d) != expected || self.net.path_length(&path) != expected {
                        defects.push(format!(
                            "{}: path({s}, {t}) invalid (claimed {d}, oracle {expected:?})",
                            eb.backend.backend_name()
                        ));
                    }
                } else if expected.is_some() {
                    defects.push(format!(
                        "{}: no path returned for connected pair ({s}, {t})",
                        eb.backend.backend_name()
                    ));
                }
                if defects.len() >= 8 {
                    break;
                }
            }
        }
        if defects.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "self-check found {} defect(s):\n  {}",
                defects.len(),
                defects.join("\n  ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::backend::Session;
    use spq_graph::types::Dist;
    use spq_synth::SynthParams;

    #[test]
    fn wire_ids_roundtrip_and_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_wire(kind.wire_id()), Some(kind));
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_wire(200), None);
        assert_eq!(
            BackendKind::parse_list("ch, tnr,ch").unwrap(),
            vec![BackendKind::Ch, BackendKind::Tnr]
        );
        assert_eq!(
            BackendKind::parse_list("all").unwrap(),
            BackendKind::DEFAULT.to_vec()
        );
        assert!(BackendKind::parse_list("bogus").is_err());
        assert!(BackendKind::parse_list("").is_err());
    }

    #[test]
    fn clean_engine_passes_self_check() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(
            spq_synth::test_vertices(300),
            11,
        ));
        let engine = Engine::build(net, &BackendKind::DEFAULT);
        engine.self_check(20, 7).expect("clean engine");
        assert_eq!(engine.backends().len(), BackendKind::DEFAULT.len());
        for eb in engine.backends() {
            assert!(engine.position_of_wire(eb.kind.wire_id()).is_some());
        }
    }

    /// A backend that claims every distance is 1 — the self-check must
    /// reject it, which is what guarantees a corrupt index can never
    /// reach serving.
    struct Lying;
    struct LyingSession;

    impl Backend for Lying {
        fn backend_name(&self) -> &'static str {
            "Lying"
        }
        fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
            Box::new(LyingSession)
        }
    }

    impl Session for LyingSession {
        fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
            Some(1)
        }
        fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
            Some((1, vec![s, t]))
        }
    }

    #[test]
    fn self_check_rejects_a_lying_backend() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(64, 12));
        let engine = Engine::build(net, &[BackendKind::Dijkstra])
            .with_backend(BackendKind::Ch, Box::new(Lying));
        let err = engine.self_check(40, 3).unwrap_err();
        assert!(err.contains("Lying"), "{err}");
    }
}
