//! `spq-serve` — the concurrent query-serving subsystem.
//!
//! The paper (§4) measures its five techniques with single-threaded
//! latency loops; this crate turns the same indexes into a service that
//! answers many clients at once, the first step toward the ROADMAP's
//! "heavy traffic" north star:
//!
//! * [`Engine`] — the five paper indexes (plus ALT and optionally arc
//!   flags) built over one road network, each behind the unified
//!   [`spq_graph::backend::Backend`] trait, with a differential
//!   self-check against the Dijkstra baseline gating startup.
//! * [`server`] — a TCP service speaking the [`protocol`] wire format:
//!   a fixed worker pool where every worker owns one reusable query
//!   workspace per backend (hot paths stay allocation-free), request
//!   batching that routes dense distance batches to CH's bucket-based
//!   many-to-many, and graceful shutdown on SIGTERM or a protocol
//!   command.
//! * [`cache`] — a sharded LRU distance cache keyed by
//!   `(backend, s, t)` with hit/miss accounting.
//! * [`stats`] — atomic counters and log2 latency histograms per
//!   backend and per op, served by the `STATS` command and dumped at
//!   shutdown.
//! * [`loadgen`] — replays the paper's Q1–Q10 query sets at
//!   configurable concurrency, producing `results/serve_throughput.csv`
//!   (QPS, p50/p99 per backend) and verifying sampled answers against
//!   the Dijkstra oracle.
//! * [`epoch`] — epoch-based hot index swap: a RELOAD frame (or a
//!   watched reload file, or SIGHUP) builds and self-checks a fresh
//!   [`Engine`] off-thread and atomically publishes it; in-flight
//!   requests finish on their pinned epoch and the distance cache is
//!   epoch-keyed so a swap can never serve a stale answer.
//! * [`audit`] — a background auditor replays a seeded trickle of
//!   queries against the Dijkstra oracle while the server runs;
//!   repeated mismatches quarantine the offending backend and fail its
//!   wire id over to a healthy one.
//!
//! Everything is `std`-only: `std::net` sockets, `std::thread` workers,
//! no external dependencies.

pub mod audit;
pub mod byteproxy;
pub mod cache;
pub mod client;
pub mod epoch;
pub mod eventloop;
pub mod fault;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod sync;
pub mod torture;

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::ContractionHierarchy;
use spq_dijkstra::{Baseline, Dijkstra};
use spq_graph::atomic_io;
use spq_graph::backend::Backend;
use spq_graph::sample::PairSampler;
use spq_graph::RoadNetwork;
use spq_hl::Hl;
use spq_many::{ManyBackend, PoiEntry, PoiIndex, PoiSet, PoiTable};
use spq_pcpd::Pcpd;
use spq_silc::Silc;
use spq_tnr::{Tnr, TnrParams};

pub use audit::AuditConfig;
pub use byteproxy::{ByteFaultPlan, ByteProxy};
pub use cache::{CacheStats, DistanceCache};
pub use client::{ClientError, RetryPolicy, RetryingClient, ServeClient};
pub use epoch::{EpochRegistry, EpochState, ReloadFactory, ReloadSpec};
pub use fault::{FaultAction, FaultInjector, FaultPlan};
pub use loadgen::{LoadgenOptions, LoadgenReport, OpMix, ThroughputRow};
pub use server::{Server, ServerConfig};
pub use stats::ServerStats;

/// The servable index techniques and their wire ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Bidirectional Dijkstra — index-free baseline (wire id 0).
    Dijkstra,
    /// Contraction Hierarchies (wire id 1).
    Ch,
    /// Transit Node Routing (wire id 2).
    Tnr,
    /// SILC (wire id 3).
    Silc,
    /// PCPD (wire id 4).
    Pcpd,
    /// ALT / landmark A* (wire id 5).
    Alt,
    /// Arc flags (wire id 6).
    ArcFlags,
    /// Hub labeling — CH-based 2-hop labels (wire id 7).
    Hl,
}

impl BackendKind {
    /// Every servable backend.
    pub const ALL: [BackendKind; 8] = [
        BackendKind::Dijkstra,
        BackendKind::Ch,
        BackendKind::Tnr,
        BackendKind::Silc,
        BackendKind::Pcpd,
        BackendKind::Alt,
        BackendKind::ArcFlags,
        BackendKind::Hl,
    ];

    /// The default serving set: the paper's five techniques plus ALT
    /// and hub labeling.
    pub const DEFAULT: [BackendKind; 7] = [
        BackendKind::Dijkstra,
        BackendKind::Ch,
        BackendKind::Tnr,
        BackendKind::Silc,
        BackendKind::Pcpd,
        BackendKind::Alt,
        BackendKind::Hl,
    ];

    /// Stable protocol id.
    pub fn wire_id(self) -> u8 {
        match self {
            BackendKind::Dijkstra => 0,
            BackendKind::Ch => 1,
            BackendKind::Tnr => 2,
            BackendKind::Silc => 3,
            BackendKind::Pcpd => 4,
            BackendKind::Alt => 5,
            BackendKind::ArcFlags => 6,
            BackendKind::Hl => 7,
        }
    }

    /// Inverse of [`BackendKind::wire_id`].
    pub fn from_wire(id: u8) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.wire_id() == id)
    }

    /// CLI name (lowercase).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dijkstra => "dijkstra",
            BackendKind::Ch => "ch",
            BackendKind::Tnr => "tnr",
            BackendKind::Silc => "silc",
            BackendKind::Pcpd => "pcpd",
            BackendKind::Alt => "alt",
            BackendKind::ArcFlags => "arcflags",
            BackendKind::Hl => "hl",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Parses a comma-separated backend list ("ch,tnr,alt"); "all"
    /// yields the default set.
    pub fn parse_list(csv: &str) -> Result<Vec<BackendKind>, String> {
        if csv.eq_ignore_ascii_case("all") {
            return Ok(BackendKind::DEFAULT.to_vec());
        }
        let mut out = Vec::new();
        for part in csv.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let kind =
                BackendKind::parse(part).ok_or_else(|| format!("unknown backend '{part}'"))?;
            if !out.contains(&kind) {
                out.push(kind);
            }
        }
        if out.is_empty() {
            return Err("empty backend list".into());
        }
        Ok(out)
    }

    /// Whether preprocessing needs all-pairs shortest paths (confines
    /// the technique to small networks, §4.3).
    pub fn needs_all_pairs(self) -> bool {
        matches!(self, BackendKind::Silc | BackendKind::Pcpd)
    }
}

/// One built backend inside an [`Engine`].
pub struct EngineBackend {
    /// Which technique this is.
    pub kind: BackendKind,
    /// The index behind the unified trait.
    pub backend: Box<dyn Backend>,
    /// Wall-clock preprocessing time.
    pub build_time: Duration,
    /// Extra wire ids this backend answers for (degraded techniques
    /// whose own index failed validation).
    pub aliases: Vec<u8>,
}

/// One serving slot requested from [`Engine::build_with_indexes`]:
/// either build the index in memory or load a persisted one.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Which technique to serve.
    pub kind: BackendKind,
    /// Persisted index to load instead of building (`None`: build).
    pub index: Option<PathBuf>,
}

impl BackendSpec {
    /// A slot built in memory.
    pub fn built(kind: BackendKind) -> BackendSpec {
        BackendSpec { kind, index: None }
    }

    /// A slot loaded from a persisted index file.
    pub fn from_file(kind: BackendKind, path: impl Into<PathBuf>) -> BackendSpec {
        BackendSpec {
            kind,
            index: Some(path.into()),
        }
    }

    /// Parses the CLI form `kind=path` (e.g. `tnr=idx/usa.tnr`).
    pub fn parse(s: &str) -> Result<BackendSpec, String> {
        let (name, path) = s
            .split_once('=')
            .ok_or_else(|| format!("--index wants kind=path, got '{s}'"))?;
        let kind = BackendKind::parse(name.trim())
            .ok_or_else(|| format!("unknown backend '{}' in --index", name.trim()))?;
        if path.trim().is_empty() {
            return Err(format!("--index {name}= has an empty path"));
        }
        Ok(BackendSpec::from_file(kind, path.trim()))
    }
}

/// Logs a recovery scan's outcome in the greppable `[recovery]` form
/// the RUNBOOK documents. Called by the engine builder and by the
/// reload path before POI loads.
pub fn log_recovery(report: &atomic_io::RecoveryReport) {
    for q in &report.quarantined {
        eprintln!(
            "[recovery] quarantined {} -> {}: {}",
            q.original.display(),
            q.quarantined_to.display(),
            q.reason
        );
    }
    if report.scanned > 0 {
        eprintln!(
            "[recovery] scanned {} file(s): {} verified container(s), {} quarantined",
            report.scanned,
            report.verified,
            report.quarantined.len()
        );
    }
}

/// A recorded startup downgrade: `requested` failed index validation
/// and its wire id is being answered by `served_by` instead.
#[derive(Debug, Clone)]
pub struct Degradation {
    /// The technique whose index failed to load.
    pub requested: BackendKind,
    /// The technique now answering its wire id.
    pub served_by: BackendKind,
    /// The (typed, rendered) load error that caused the downgrade.
    pub reason: String,
}

/// The set of indexes a server instance answers from: one road network
/// plus any mix of built backends.
pub struct Engine {
    net: RoadNetwork,
    backends: Vec<EngineBackend>,
    degradations: Vec<Degradation>,
    /// The hierarchy behind the CH serving slot, kept so POI sets can
    /// be indexed against exactly the structure that serves queries.
    ch: Option<Arc<ContractionHierarchy>>,
    /// Registered POI sets and their bucket-CH indexes (installed once
    /// per engine via [`Engine::register_pois`]; empty until then).
    pois: Arc<PoiTable>,
}

impl Engine {
    /// Builds the requested indexes over `net` (announcing each build on
    /// stderr, since the all-pairs techniques can take a while).
    pub fn build(net: RoadNetwork, kinds: &[BackendKind]) -> Engine {
        let specs: Vec<BackendSpec> = kinds.iter().map(|&k| BackendSpec::built(k)).collect();
        Engine::build_with_indexes(net, &specs, true).expect("in-memory builds cannot fail")
    }

    /// Builds one backend in memory. CH is handled by the caller (its
    /// hierarchy is shared with the POI machinery).
    fn build_one(net: &RoadNetwork, kind: BackendKind) -> Box<dyn Backend> {
        match kind {
            BackendKind::Dijkstra => Box::new(Baseline),
            BackendKind::Ch => unreachable!("CH slots are built by build_with_indexes"),
            BackendKind::Tnr => Box::new(Tnr::build(net, &TnrParams::default())),
            BackendKind::Silc => Box::new(Silc::build(net)),
            BackendKind::Pcpd => Box::new(Pcpd::build(net)),
            BackendKind::Alt => Box::new(Alt::build(
                net,
                &AltParams {
                    num_landmarks: 16.min(net.num_nodes()),
                    ..AltParams::default()
                },
            )),
            BackendKind::ArcFlags => Box::new(ArcFlags::build(net, &ArcFlagsParams::default())),
            BackendKind::Hl => Box::new(Hl::build(net)),
        }
    }

    /// Loads a persisted index. The error is the rendered
    /// [`spq_graph::binio::IndexLoadError`] (magic / version / checksum /
    /// truncation all produce distinct, typed failures at the persist
    /// layer) or a node-count mismatch against `net`.
    pub fn load_backend(
        kind: BackendKind,
        path: &Path,
        net: &RoadNetwork,
    ) -> Result<Box<dyn Backend>, String> {
        let shown = path.display();
        let check_nodes = |index_nodes: usize| -> Result<(), String> {
            if index_nodes == net.num_nodes() {
                Ok(())
            } else {
                Err(format!(
                    "{shown}: index covers {index_nodes} vertices but the network has {}",
                    net.num_nodes()
                ))
            }
        };
        let f = File::open(path).map_err(|e| format!("{shown}: {e}"))?;
        let mut r = BufReader::new(f);
        match kind {
            BackendKind::Dijkstra => Err("dijkstra is index-free; nothing to load".into()),
            BackendKind::Pcpd => Err("PCPD has no on-disk index format".into()),
            BackendKind::Ch => {
                let ch = ContractionHierarchy::read_binary(&mut r)
                    .map_err(|e| format!("{shown}: {e}"))?;
                check_nodes(ch.num_nodes())?;
                Ok(Box::new(ch))
            }
            BackendKind::Alt => {
                let alt = Alt::read_binary(&mut r).map_err(|e| format!("{shown}: {e}"))?;
                check_nodes(alt.num_nodes())?;
                Ok(Box::new(alt))
            }
            BackendKind::Silc => {
                let silc = Silc::read_binary(&mut r).map_err(|e| format!("{shown}: {e}"))?;
                check_nodes(silc.num_nodes())?;
                Ok(Box::new(silc))
            }
            BackendKind::Tnr => {
                let tnr = Tnr::read_binary(net, &mut r).map_err(|e| format!("{shown}: {e}"))?;
                Ok(Box::new(tnr))
            }
            BackendKind::ArcFlags => {
                let af = ArcFlags::read_binary(net, &mut r).map_err(|e| format!("{shown}: {e}"))?;
                Ok(Box::new(af))
            }
            BackendKind::Hl => {
                let hl = Hl::read_binary(&mut r).map_err(|e| format!("{shown}: {e}"))?;
                check_nodes(hl.num_nodes())?;
                Ok(Box::new(hl))
            }
        }
    }

    /// Loads a persisted CH, keeping the hierarchy shareable with the
    /// POI machinery.
    fn load_ch(path: &Path, net: &RoadNetwork) -> Result<Arc<ContractionHierarchy>, String> {
        let shown = path.display();
        let f = File::open(path).map_err(|e| format!("{shown}: {e}"))?;
        let mut r = BufReader::new(f);
        let ch = ContractionHierarchy::read_binary(&mut r).map_err(|e| format!("{shown}: {e}"))?;
        if ch.num_nodes() != net.num_nodes() {
            return Err(format!(
                "{shown}: index covers {} vertices but the network has {}",
                ch.num_nodes(),
                net.num_nodes()
            ));
        }
        Ok(Arc::new(ch))
    }

    /// Builds or loads the requested serving slots, degrading failed
    /// index loads down the chain (anything → CH → Dijkstra) when
    /// `degrade` is true. With `degrade` false the first load failure is
    /// fatal — the operator asked for exactly these indexes.
    ///
    /// A degraded wire id keeps answering (correctly, via the fallback
    /// backend); the downgrade is logged, recorded in
    /// [`Engine::degradations`], and surfaced in the server's STATS
    /// text. In-memory builds cannot fail, so a spec without an index
    /// path never degrades.
    pub fn build_with_indexes(
        net: RoadNetwork,
        specs: &[BackendSpec],
        degrade: bool,
    ) -> Result<Engine, String> {
        let mut engine = Engine {
            net,
            backends: Vec::new(),
            degradations: Vec::new(),
            ch: None,
            pois: PoiTable::empty(),
        };
        // Recovery scan: before touching any persisted index, sweep the
        // directories they live in for crash debris (orphaned `*.tmp`
        // files, torn or bit-rotted containers) and quarantine it. A
        // quarantined index then fails its load below with the precise
        // scan reason attached, feeding the degradation chain — or, in
        // strict (reload) mode, failing the build with a typed message.
        let index_paths: Vec<&Path> = specs.iter().filter_map(|s| s.index.as_deref()).collect();
        let recovery = if index_paths.is_empty() {
            atomic_io::RecoveryReport::default()
        } else {
            match atomic_io::recover_dirs_of(index_paths.iter().copied()) {
                Ok(r) => r,
                Err(e) => {
                    // A scan failure (permissions, disk) must not take
                    // down startup on its own; the loads below will hit
                    // the same wall and report it.
                    eprintln!("[recovery] scan failed: {e}");
                    atomic_io::RecoveryReport::default()
                }
            }
        };
        log_recovery(&recovery);
        let annotate = |reason: String, path: &Path| -> String {
            match recovery.reason_for(path) {
                Some(q) => format!(
                    "{reason} (quarantined by recovery scan: {}; moved to {})",
                    q.reason,
                    q.quarantined_to.display()
                ),
                None => reason,
            }
        };
        let mut failed: Vec<(BackendKind, String)> = Vec::new();
        for spec in specs {
            let start = Instant::now();
            // The CH slot is served by ManyBackend (point queries plus
            // the one-to-many / kNN / range capabilities), which shares
            // its hierarchy with POI registration — so it is built here
            // rather than in `build_one`.
            let backend: Box<dyn Backend> = if spec.kind == BackendKind::Ch {
                let loaded = match &spec.index {
                    None => Ok(Arc::new(ContractionHierarchy::build(&engine.net))),
                    Some(path) => Self::load_ch(path, &engine.net),
                };
                match loaded {
                    Ok(ch) => {
                        engine.ch = Some(Arc::clone(&ch));
                        Box::new(ManyBackend::new(ch, Arc::clone(&engine.pois)))
                    }
                    Err(reason) => {
                        let reason = match &spec.index {
                            Some(path) => annotate(reason, path),
                            None => reason,
                        };
                        if !degrade {
                            return Err(format!("cannot load ch index: {reason}"));
                        }
                        failed.push((spec.kind, reason));
                        continue;
                    }
                }
            } else {
                match &spec.index {
                    None => Self::build_one(&engine.net, spec.kind),
                    Some(path) => match Self::load_backend(spec.kind, path, &engine.net) {
                        Ok(b) => b,
                        Err(reason) => {
                            let reason = annotate(reason, path);
                            if !degrade {
                                return Err(format!(
                                    "cannot load {} index: {reason}",
                                    spec.kind.name()
                                ));
                            }
                            failed.push((spec.kind, reason));
                            continue;
                        }
                    },
                }
            };
            let build_time = start.elapsed();
            eprintln!(
                "[engine] {} {} in {build_time:.2?}",
                if spec.index.is_some() {
                    "loaded"
                } else {
                    "built"
                },
                spec.kind.name()
            );
            engine.backends.push(EngineBackend {
                kind: spec.kind,
                backend,
                build_time,
                aliases: Vec::new(),
            });
        }
        for (kind, reason) in failed {
            // The chain: a failed index is answered by CH when CH is
            // being served (and itself loaded cleanly), else by the
            // index-free Dijkstra baseline — appended on demand so the
            // wire id never goes dark.
            let fallback = if kind != BackendKind::Ch {
                engine.position_of_wire(BackendKind::Ch.wire_id())
            } else {
                None
            };
            let (pos, served_by) = match fallback {
                Some(pos) => (pos, BackendKind::Ch),
                None => {
                    let pos = match engine.position_of_wire(BackendKind::Dijkstra.wire_id()) {
                        Some(pos) => pos,
                        None => {
                            engine.backends.push(EngineBackend {
                                kind: BackendKind::Dijkstra,
                                backend: Box::new(Baseline),
                                build_time: Duration::ZERO,
                                aliases: Vec::new(),
                            });
                            engine.backends.len() - 1
                        }
                    };
                    (pos, BackendKind::Dijkstra)
                }
            };
            engine.backends[pos].aliases.push(kind.wire_id());
            eprintln!(
                "[engine] DEGRADED {} -> {}: {reason}",
                kind.name(),
                served_by.name()
            );
            engine.degradations.push(Degradation {
                requested: kind,
                served_by,
                reason,
            });
        }
        Ok(engine)
    }

    /// Startup downgrades recorded by [`Engine::build_with_indexes`].
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// Registers POI sets for kNN serving: validates each against the
    /// network, builds its bucket-CH index against this engine's own
    /// hierarchy, and installs the table. Callable at most once per
    /// engine (the table is immutable once serving; a reload publishes
    /// a new engine with freshly indexed sets).
    pub fn register_pois(&self, sets: Vec<PoiSet>) -> Result<(), String> {
        if sets.is_empty() {
            return Ok(());
        }
        let ch = self
            .ch
            .as_ref()
            .ok_or("POI registration needs a CH slot in the serving set")?;
        let mut entries: Vec<PoiEntry> = Vec::with_capacity(sets.len());
        for set in sets {
            set.validate_for(self.net.num_nodes())
                .map_err(|e| format!("POI set '{}': {e}", set.name()))?;
            if entries.iter().any(|e| e.set.name() == set.name()) {
                return Err(format!("POI set '{}' registered twice", set.name()));
            }
            let index =
                PoiIndex::build(ch, &set).map_err(|e| format!("POI set '{}': {e}", set.name()))?;
            entries.push(PoiEntry { set, index });
        }
        self.pois.install(entries)
    }

    /// The registered POI sets (empty until [`Engine::register_pois`]).
    pub fn poi_sets(&self) -> &[PoiEntry] {
        self.pois.entries()
    }

    /// Looks up one registered POI set by name.
    pub fn poi_set(&self, name: &str) -> Option<&PoiEntry> {
        self.pois.get(name)
    }

    /// Adds a pre-built (possibly custom) backend; used by tests to
    /// inject deliberately wrong implementations against the self-check.
    pub fn with_backend(mut self, kind: BackendKind, backend: Box<dyn Backend>) -> Engine {
        self.backends.push(EngineBackend {
            kind,
            backend,
            build_time: Duration::ZERO,
            aliases: Vec::new(),
        });
        self
    }

    /// The network every backend answers over.
    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    /// The built backends, in serving order.
    pub fn backends(&self) -> &[EngineBackend] {
        &self.backends
    }

    /// Engine position of the backend answering the given wire id —
    /// its own, or one it inherited through a startup degradation.
    pub fn position_of_wire(&self, wire_id: u8) -> Option<usize> {
        self.backends
            .iter()
            .position(|b| b.kind.wire_id() == wire_id)
            .or_else(|| {
                self.backends
                    .iter()
                    .position(|b| b.aliases.contains(&wire_id))
            })
    }

    /// Display names in serving order (for stats rendering).
    pub fn backend_names(&self) -> Vec<&str> {
        self.backends
            .iter()
            .map(|b| b.backend.backend_name())
            .collect()
    }

    /// The startup self-check: every backend must agree with the
    /// Dijkstra oracle on `samples` random distance and path queries.
    ///
    /// Serving wrong answers fast is worse than not serving — the paper
    /// itself hinges on this point (a faulty TNR implementation
    /// invalidated previously published results, §1) — so callers treat
    /// any `Err` as fatal and exit non-zero before accepting traffic.
    pub fn self_check(&self, samples: usize, seed: u64) -> Result<(), String> {
        let mut reference = Dijkstra::new(self.net.num_nodes());
        let mut defects = Vec::new();
        for eb in &self.backends {
            let mut session = eb.backend.session(&self.net);
            let sampler = PairSampler::new(self.net.num_nodes(), seed);
            for (s, t) in sampler.take(samples) {
                reference.run_to_target(&self.net, s, t);
                let expected = reference.distance(t);
                let got = session.distance(s, t);
                if got != expected {
                    defects.push(format!(
                        "{}: distance({s}, {t}) = {got:?}, oracle says {expected:?}",
                        eb.backend.backend_name()
                    ));
                } else if let Some((d, path)) = session.shortest_path(s, t) {
                    if Some(d) != expected || self.net.path_length(&path) != expected {
                        defects.push(format!(
                            "{}: path({s}, {t}) invalid (claimed {d}, oracle {expected:?})",
                            eb.backend.backend_name()
                        ));
                    }
                } else if expected.is_some() {
                    defects.push(format!(
                        "{}: no path returned for connected pair ({s}, {t})",
                        eb.backend.backend_name()
                    ));
                }
                if defects.len() >= 8 {
                    break;
                }
            }
        }
        if defects.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "self-check found {} defect(s):\n  {}",
                defects.len(),
                defects.join("\n  ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::backend::Session;
    use spq_graph::types::{Dist, NodeId};
    use spq_synth::SynthParams;

    #[test]
    fn wire_ids_roundtrip_and_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_wire(kind.wire_id()), Some(kind));
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_wire(200), None);
        assert_eq!(
            BackendKind::parse_list("ch, tnr,ch").unwrap(),
            vec![BackendKind::Ch, BackendKind::Tnr]
        );
        assert_eq!(
            BackendKind::parse_list("all").unwrap(),
            BackendKind::DEFAULT.to_vec()
        );
        assert!(BackendKind::parse_list("bogus").is_err());
        assert!(BackendKind::parse_list("").is_err());
    }

    #[test]
    fn clean_engine_passes_self_check() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(
            spq_synth::test_vertices(300),
            11,
        ));
        let engine = Engine::build(net, &BackendKind::DEFAULT);
        engine.self_check(20, 7).expect("clean engine");
        assert_eq!(engine.backends().len(), BackendKind::DEFAULT.len());
        for eb in engine.backends() {
            assert!(engine.position_of_wire(eb.kind.wire_id()).is_some());
        }
    }

    /// A backend that claims every distance is 1 — the self-check must
    /// reject it, which is what guarantees a corrupt index can never
    /// reach serving.
    struct Lying;
    struct LyingSession;

    impl Backend for Lying {
        fn backend_name(&self) -> &'static str {
            "Lying"
        }
        fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
            Box::new(LyingSession)
        }
    }

    impl Session for LyingSession {
        fn distance(&mut self, _s: NodeId, _t: NodeId) -> Option<Dist> {
            Some(1)
        }
        fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
            Some((1, vec![s, t]))
        }
    }

    #[test]
    fn backend_specs_parse_the_cli_form() {
        let spec = BackendSpec::parse("tnr=idx/usa.tnr").unwrap();
        assert_eq!(spec.kind, BackendKind::Tnr);
        assert_eq!(
            spec.index.as_deref(),
            Some(std::path::Path::new("idx/usa.tnr"))
        );
        assert!(BackendSpec::parse("tnr").is_err());
        assert!(BackendSpec::parse("bogus=x").is_err());
        assert!(BackendSpec::parse("ch=").is_err());
    }

    #[test]
    fn failed_index_loads_degrade_down_the_chain() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(64, 13));
        // TNR's file is missing → served by CH; CH is clean (built).
        let specs = [
            BackendSpec::built(BackendKind::Ch),
            BackendSpec::from_file(BackendKind::Tnr, "/nonexistent/usa.tnr"),
        ];
        let engine = Engine::build_with_indexes(net.clone(), &specs, true).unwrap();
        let pos = engine
            .position_of_wire(BackendKind::Tnr.wire_id())
            .expect("degraded wire id keeps answering");
        assert_eq!(engine.backends()[pos].kind, BackendKind::Ch);
        assert_eq!(engine.degradations().len(), 1);
        assert_eq!(engine.degradations()[0].requested, BackendKind::Tnr);
        assert_eq!(engine.degradations()[0].served_by, BackendKind::Ch);

        // CH itself failing, with no Dijkstra requested, appends the
        // index-free baseline as the end of the chain.
        let specs = [BackendSpec::from_file(
            BackendKind::Ch,
            "/nonexistent/usa.ch",
        )];
        let engine = Engine::build_with_indexes(net.clone(), &specs, true).unwrap();
        let pos = engine
            .position_of_wire(BackendKind::Ch.wire_id())
            .expect("CH wire id degrades to dijkstra");
        assert_eq!(engine.backends()[pos].kind, BackendKind::Dijkstra);

        // --no-degrade semantics: the load failure is fatal.
        let err = Engine::build_with_indexes(
            net,
            &[BackendSpec::from_file(
                BackendKind::Ch,
                "/nonexistent/usa.ch",
            )],
            false,
        )
        .err()
        .expect("strict mode fails the build");
        assert!(err.contains("cannot load ch index"), "{err}");
    }

    #[test]
    fn self_check_rejects_a_lying_backend() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(64, 12));
        let engine = Engine::build(net, &[BackendKind::Dijkstra])
            .with_backend(BackendKind::Ch, Box::new(Lying));
        let err = engine.self_check(40, 3).unwrap_err();
        assert!(err.contains("Lying"), "{err}");
    }
}
