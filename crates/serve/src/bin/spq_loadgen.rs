//! Standalone load-generator binary: spins up an in-process server over
//! a synthetic or DIMACS network, sweeps every requested backend across
//! the requested concurrency levels, and writes
//! `results/serve_throughput.csv`.
//!
//! Exits non-zero when the startup self-check fails, when any verified
//! answer disagrees with the Dijkstra oracle, when a run completes zero
//! requests, or when the server dies mid-run — in which case the
//! partial rows collected so far are still written and printed, clearly
//! marked as incomplete.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use spq_graph::RoadNetwork;
use spq_serve::loadgen::{run_in_process, write_csv, LoadgenOptions, LoadgenReport, ThroughputRow};
use spq_serve::BackendKind;
use spq_synth::SynthParams;

const USAGE: &str = "\
spq_loadgen — throughput load generator for the spq-serve subsystem

USAGE:
    spq_loadgen [OPTIONS]

OPTIONS:
    --net <base>           DIMACS base path (reads <base>.gr and <base>.co);
                           mutually exclusive with --target
    --target <n>           synthesise a network with ~n vertices (default 2000)
    --seed <u64>           workload + synthesis seed (default 42)
    --backends <list>      comma-separated backends, or 'all'
                           (dijkstra,ch,tnr,silc,pcpd,alt,arcflags; default 'all')
    --concurrency <list>   comma-separated client-thread counts (default '1,4')
    --connections <n>      open connections per run; when larger than the
                           thread count each thread rotates over
                           n/concurrency connections round-robin
                           (default 0: one connection per thread)
    --churn-every <n>      tear down and re-establish a connection every n
                           requests per thread (default 0: never); the
                           'reconnects' CSV column counts the teardowns
    --duration <secs>      steady-state seconds per timed run, fractions allowed
                           (default 3)
    --warmup-ms <n>        warm-up window before each timed run; connection
                           setup and cold-start requests are excluded from
                           the reported QPS (default 250)
    --per-set <n>          query pairs drawn per Q-set (default 200)
    --deadline-ms <n>      per-request deadline in milliseconds (default 0: none)
    --mix <weights>        op:weight list drawn round-robin by each client,
                           e.g. 'distance:8,o2m:2,knn:1,range:1'
                           (default 'distance:1'; a knn weight samples and
                           registers a POI set automatically)
    --retries <n>          client retries for BUSY/connection loss (default 3)
    --reload-every <secs>  issue a RELOAD on this cadence during every timed
                           run (chaos-lite: the sweep fails unless at least
                           one hot swap completes; fractions allowed)
    --slow-readers <n>     park n antagonist connections per run that pipeline
                           large batches and never (or barely) read responses;
                           the server must force-close them while the measured
                           clients stay correct — the 'force_closed' CSV
                           column counts the reclaims (default 0)
    --slow-reader-rate <bps>
                           bytes/second each slow reader drains (default 0:
                           read nothing at all)
    --out <path>           CSV output path (default results/serve_throughput.csv)
    --help                 print this help
";

fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse '{s}'"))
}

fn build_network(args: &[String]) -> Result<RoadNetwork, String> {
    let seed: u64 = match opt(args, "--seed") {
        Some(s) => parse(&s, "--seed")?,
        None => 42,
    };
    if let Some(base) = opt(args, "--net") {
        if opt(args, "--target").is_some() {
            return Err("--net and --target are mutually exclusive".into());
        }
        let gr =
            File::open(format!("{base}.gr")).map_err(|e| format!("cannot open {base}.gr: {e}"))?;
        let co =
            File::open(format!("{base}.co")).map_err(|e| format!("cannot open {base}.co: {e}"))?;
        return spq_graph::dimacs::read(BufReader::new(gr), BufReader::new(co))
            .map_err(|e| format!("cannot parse {base}: {e}"));
    }
    let target: usize = match opt(args, "--target") {
        Some(s) => parse(&s, "--target")?,
        None => 2000,
    };
    Ok(spq_synth::generate(&SynthParams::with_target_vertices(
        spq_synth::test_vertices(target),
        seed,
    )))
}

fn options(args: &[String]) -> Result<LoadgenOptions, String> {
    let mut opts = LoadgenOptions::default();
    if let Some(list) = opt(args, "--backends") {
        opts.backends = BackendKind::parse_list(&list)?;
    }
    if let Some(list) = opt(args, "--concurrency") {
        opts.concurrency = list
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| parse::<usize>(p, "--concurrency"))
            .collect::<Result<Vec<_>, _>>()?;
        if opts.concurrency.is_empty() || opts.concurrency.contains(&0) {
            return Err("--concurrency needs positive thread counts".into());
        }
    }
    if let Some(s) = opt(args, "--connections") {
        opts.connections = parse(&s, "--connections")?;
    }
    if let Some(s) = opt(args, "--churn-every") {
        opts.churn_every = parse(&s, "--churn-every")?;
    }
    if let Some(s) = opt(args, "--duration") {
        opts.duration = Duration::from_secs_f64(parse(&s, "--duration")?);
    }
    if let Some(s) = opt(args, "--warmup-ms") {
        opts.warmup = Duration::from_millis(parse(&s, "--warmup-ms")?);
    }
    if let Some(s) = opt(args, "--per-set") {
        opts.per_set = parse(&s, "--per-set")?;
    }
    if let Some(s) = opt(args, "--seed") {
        opts.seed = parse(&s, "--seed")?;
    }
    if let Some(s) = opt(args, "--deadline-ms") {
        opts.deadline_ms = parse(&s, "--deadline-ms")?;
    }
    if let Some(s) = opt(args, "--mix") {
        opts.mix = spq_serve::loadgen::OpMix::parse(&s)?;
    }
    if let Some(s) = opt(args, "--retries") {
        opts.retry.max_retries = parse(&s, "--retries")?;
    }
    if let Some(s) = opt(args, "--reload-every") {
        let secs: f64 = parse(&s, "--reload-every")?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err("--reload-every needs a positive number of seconds".into());
        }
        opts.reload_every = Some(Duration::from_secs_f64(secs));
    }
    if let Some(s) = opt(args, "--slow-readers") {
        opts.slow_readers = parse(&s, "--slow-readers")?;
    }
    if let Some(s) = opt(args, "--slow-reader-rate") {
        opts.slow_reader_rate = parse(&s, "--slow-reader-rate")?;
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<LoadgenReport, String> {
    let net = build_network(args)?;
    eprintln!(
        "[loadgen] network: {} vertices, {} edges",
        net.num_nodes(),
        net.num_edges()
    );
    let opts = options(args)?;
    let (report, stats) = run_in_process(net, &opts)?;
    eprintln!("--- final server stats ---\n{stats}");

    let out = opt(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/serve_throughput.csv"));
    write_csv(&report.rows, &out).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!("[loadgen] wrote {}", out.display());

    println!("{}", ThroughputRow::CSV_HEADER);
    for row in &report.rows {
        println!("{}", row.to_csv());
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(report) => {
            let mismatches = report.mismatches();
            let stalled = report.rows.iter().filter(|r| r.requests == 0).count();
            if let Some(e) = &report.error {
                eprintln!(
                    "[loadgen] FAILED (partial report, {} row(s)): {e}",
                    report.rows.len()
                );
                ExitCode::FAILURE
            } else if mismatches > 0 {
                eprintln!("[loadgen] FAILED: {mismatches} answer(s) disagreed with the oracle");
                ExitCode::FAILURE
            } else if stalled > 0 {
                eprintln!("[loadgen] FAILED: {stalled} run(s) completed zero requests");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("[loadgen] error: {e}");
            ExitCode::FAILURE
        }
    }
}
